//! Process-wide tier telemetry: every tiered memory in the process reports
//! its paging traffic here, and the observability layer (`cwsp_obs::tier`)
//! publishes a snapshot into the metrics registry.
//!
//! Counters are monotonic; `resident_pages`/`spilled_pages` are gauges
//! (current totals across live memories), and `resident_peak_per_instance`
//! is the high-water resident-page count of any *single* memory — the value
//! the `fig_beyond_ram` storage smoke asserts never exceeds
//! `CWSP_MEM_BUDGET`.

use std::sync::atomic::{AtomicU64, Ordering};

static FAULTS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static WRITEBACKS: AtomicU64 = AtomicU64::new(0);
static WRITEBACK_BATCHES: AtomicU64 = AtomicU64::new(0);
static WRITEBACK_NS: AtomicU64 = AtomicU64::new(0);
static SPILLED_LOADS: AtomicU64 = AtomicU64::new(0);
static RESIDENT_HITS: AtomicU64 = AtomicU64::new(0);
static ZERO_DROPS: AtomicU64 = AtomicU64::new(0);
static SPILL_BYTES: AtomicU64 = AtomicU64::new(0);
static RESIDENT_PAGES: AtomicU64 = AtomicU64::new(0);
static RESIDENT_PEAK: AtomicU64 = AtomicU64::new(0);
static RESIDENT_PEAK_PER_INSTANCE: AtomicU64 = AtomicU64::new(0);
static SPILLED_PAGES: AtomicU64 = AtomicU64::new(0);

/// A page was faulted from the spill tier (or the writeback buffer) back
/// into the resident set.
pub fn record_fault() {
    FAULTS.fetch_add(1, Ordering::Relaxed);
}

/// A resident page was chosen by the clock hand and left the resident set.
pub fn record_eviction() {
    EVICTIONS.fetch_add(1, Ordering::Relaxed);
}

/// `pages` dirty pages were appended to the spill file in one batch taking
/// `ns` nanoseconds.
pub fn record_writeback_batch(pages: u64, ns: u64) {
    WRITEBACKS.fetch_add(pages, Ordering::Relaxed);
    WRITEBACK_BATCHES.fetch_add(1, Ordering::Relaxed);
    WRITEBACK_NS.fetch_add(ns, Ordering::Relaxed);
}

/// A load was served straight from the spill tier (no promotion).
pub fn record_spilled_load() {
    SPILLED_LOADS.fetch_add(1, Ordering::Relaxed);
}

/// Accesses served by resident pages, reported in bulk (the hot path counts
/// locally and flushes on drop to keep atomics off simulated loads/stores).
pub fn record_resident_hits(n: u64) {
    if n > 0 {
        RESIDENT_HITS.fetch_add(n, Ordering::Relaxed);
    }
}

/// An all-zero page was dropped at eviction instead of being spilled
/// (zero-store sparsity reclaims it exactly like the in-RAM tier).
pub fn record_zero_drop() {
    ZERO_DROPS.fetch_add(1, Ordering::Relaxed);
}

/// Bytes appended to the spill file.
pub fn record_spill_bytes(n: u64) {
    SPILL_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// The resident set of some memory grew by one page; `instance_resident` is
/// that memory's new resident count (for the per-instance peak gauge).
pub fn resident_add(instance_resident: u64) {
    let now = RESIDENT_PAGES.fetch_add(1, Ordering::Relaxed) + 1;
    RESIDENT_PEAK.fetch_max(now, Ordering::Relaxed);
    RESIDENT_PEAK_PER_INSTANCE.fetch_max(instance_resident, Ordering::Relaxed);
}

/// The resident set of some memory shrank by `n` pages.
pub fn resident_sub(n: u64) {
    RESIDENT_PAGES.fetch_sub(n, Ordering::Relaxed);
}

/// The spilled set grew (+1) or shrank (-1 on fault-back / zero drop).
pub fn spilled_delta(d: i64) {
    if d >= 0 {
        SPILLED_PAGES.fetch_add(d as u64, Ordering::Relaxed);
    } else {
        SPILLED_PAGES.fetch_sub((-d) as u64, Ordering::Relaxed);
    }
}

/// Immutable snapshot of all tier telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Pages faulted back into the resident set.
    pub faults: u64,
    /// Pages evicted by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back to the spill file.
    pub writebacks: u64,
    /// Writeback batches flushed.
    pub writeback_batches: u64,
    /// Nanoseconds spent flushing writeback batches.
    pub writeback_ns: u64,
    /// Loads served straight from the spill tier.
    pub spilled_loads: u64,
    /// Accesses served by resident pages (bulk-reported).
    pub resident_hits: u64,
    /// All-zero pages dropped at eviction instead of spilled.
    pub zero_drops: u64,
    /// Bytes appended to the spill file.
    pub spill_bytes: u64,
    /// Current resident pages across all live tiered memories.
    pub resident_pages: u64,
    /// Peak of `resident_pages`.
    pub resident_peak: u64,
    /// Peak resident pages of any single memory — compare against
    /// `CWSP_MEM_BUDGET`.
    pub resident_peak_per_instance: u64,
    /// Current spilled pages across all live tiered memories.
    pub spilled_pages: u64,
}

/// Snapshot every counter and gauge.
pub fn snapshot() -> TierSnapshot {
    TierSnapshot {
        faults: FAULTS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        writebacks: WRITEBACKS.load(Ordering::Relaxed),
        writeback_batches: WRITEBACK_BATCHES.load(Ordering::Relaxed),
        writeback_ns: WRITEBACK_NS.load(Ordering::Relaxed),
        spilled_loads: SPILLED_LOADS.load(Ordering::Relaxed),
        resident_hits: RESIDENT_HITS.load(Ordering::Relaxed),
        zero_drops: ZERO_DROPS.load(Ordering::Relaxed),
        spill_bytes: SPILL_BYTES.load(Ordering::Relaxed),
        resident_pages: RESIDENT_PAGES.load(Ordering::Relaxed),
        resident_peak: RESIDENT_PEAK.load(Ordering::Relaxed),
        resident_peak_per_instance: RESIDENT_PEAK_PER_INSTANCE.load(Ordering::Relaxed),
        spilled_pages: SPILLED_PAGES.load(Ordering::Relaxed),
    }
}

impl TierSnapshot {
    /// Serialize as a flat JSON object (hand-rolled: this crate is
    /// dependency-free and sits below the workspace JSON helpers).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                " \"faults\": {},\n",
                " \"evictions\": {},\n",
                " \"writebacks\": {},\n",
                " \"writeback_batches\": {},\n",
                " \"writeback_ns\": {},\n",
                " \"spilled_loads\": {},\n",
                " \"resident_hits\": {},\n",
                " \"zero_drops\": {},\n",
                " \"spill_bytes\": {},\n",
                " \"resident_pages\": {},\n",
                " \"resident_peak\": {},\n",
                " \"resident_peak_per_instance\": {},\n",
                " \"spilled_pages\": {}\n",
                "}}"
            ),
            self.faults,
            self.evictions,
            self.writebacks,
            self.writeback_batches,
            self.writeback_ns,
            self.spilled_loads,
            self.resident_hits,
            self.zero_drops,
            self.spill_bytes,
            self.resident_pages,
            self.resident_peak,
            self.resident_peak_per_instance,
            self.spilled_pages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let before = snapshot();
        record_fault();
        record_eviction();
        record_writeback_batch(3, 1000);
        record_spilled_load();
        record_resident_hits(10);
        record_zero_drop();
        resident_add(1);
        resident_sub(1);
        spilled_delta(2);
        spilled_delta(-2);
        let after = snapshot();
        assert!(after.faults > before.faults);
        assert!(after.evictions > before.evictions);
        assert!(after.writebacks >= before.writebacks + 3);
        assert!(after.writeback_batches > before.writeback_batches);
        assert!(after.spilled_loads > before.spilled_loads);
        assert!(after.resident_hits >= before.resident_hits + 10);
        assert!(after.zero_drops > before.zero_drops);
        assert!(after.resident_peak >= 1);
    }

    #[test]
    fn snapshot_serializes_as_json() {
        let j = snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"resident_peak_per_instance\""));
        // Balanced quotes, one key per line.
        assert_eq!(j.matches(':').count(), 13);
    }
}
