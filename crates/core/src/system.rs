//! [`CwspSystem`] — the one-stop API: compile a module, simulate it under any
//! scheme, inject power failures, and recover.

use crate::recovery::{recover, recover_with_write_log, RecoveredRun, RecoveryError};
use cwsp_compiler::pipeline::{CompileOptions, Compiled, CwspCompiler};
use cwsp_ir::interp::{InterpError, Outcome};
use cwsp_ir::module::Module;
use cwsp_obs::forensics::ForensicReport;
use cwsp_sim::config::SimConfig;
use cwsp_sim::machine::{Machine, RunEnd, RunResult};
use cwsp_sim::scheme::Scheme;
use cwsp_sim::stats::SimStats;
use std::path::PathBuf;

/// A fully compiled cWSP program plus the machine configuration to run it on.
#[derive(Debug, Clone)]
pub struct CwspSystem {
    /// The compiled program (module + recovery slices + static stats).
    pub compiled: Compiled,
    /// Machine configuration (defaults to the paper's §IX parameters).
    pub config: SimConfig,
}

/// Result of a completed (non-crashing) simulated run.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// How the run ended.
    pub end: RunEnd,
    /// Timing statistics.
    pub stats: SimStats,
    /// Released output.
    pub output: Vec<cwsp_ir::types::Word>,
    /// Core 0's return value, if it halted via `Ret`.
    pub return_value: Option<cwsp_ir::types::Word>,
}

impl CwspSystem {
    /// Compile `module` with default options and the paper's default machine.
    pub fn compile(module: &Module) -> Self {
        Self::compile_with(module, CompileOptions::default(), SimConfig::default())
    }

    /// Compile with explicit compiler options and machine configuration.
    pub fn compile_with(module: &Module, opts: CompileOptions, config: SimConfig) -> Self {
        CwspSystem {
            compiled: CwspCompiler::new(opts).compile(module),
            config,
        }
    }

    /// Run the *compiled* program in the reference interpreter (the oracle).
    ///
    /// # Errors
    /// Propagates interpreter traps and step-limit overruns.
    pub fn oracle(&self, max_steps: u64) -> Result<Outcome, InterpError> {
        cwsp_ir::interp::run(&self.compiled.module, max_steps)
    }

    /// Simulate under `scheme` for up to `max_insts` instructions.
    ///
    /// # Errors
    /// Propagates interpreter traps.
    pub fn simulate(&self, scheme: Scheme, max_insts: u64) -> Result<SystemRun, InterpError> {
        let mut machine = Machine::new(&self.compiled.module, &self.config, scheme);
        let RunResult { end, stats } = machine.run(max_insts, None)?;
        Ok(SystemRun {
            end,
            stats,
            output: machine.output().to_vec(),
            return_value: machine.return_value(0),
        })
    }

    /// Simulate under full cWSP, cut power at `crash_cycle`, then run the
    /// recovery protocol to completion. If the program finished before the
    /// crash cycle, the completed run is returned as a (trivially) recovered
    /// run.
    ///
    /// # Errors
    /// Interpreter traps during simulation, or [`RecoveryError`] afterwards.
    pub fn run_with_crash(
        &self,
        crash_cycle: u64,
        max_steps: u64,
    ) -> Result<RecoveredRun, RecoveryError> {
        let mut machine = Machine::new(&self.compiled.module, &self.config, Scheme::cwsp());
        let result = machine
            .run(u64::MAX, Some(crash_cycle))
            .map_err(|e| RecoveryError::Trap(e.to_string()))?;
        if result.end == RunEnd::Completed {
            let rv = machine.return_value(0);
            let output = machine.output().to_vec();
            return Ok(RecoveredRun {
                memory: machine.arch_mem().clone(),
                output,
                return_value: rv,
                replayed_steps: 0,
                reverted_records: 0,
            });
        }
        let image = machine.into_crash_image();
        recover(&self.compiled, image, 0, max_steps)
    }

    /// Run with the flight recorder attached, cut power at `crash_cycle`,
    /// reconstruct the forensic crash report from the journal + frontier,
    /// and cross-check its predicted replay set against the write log of an
    /// instrumented recovery, per core.
    ///
    /// Returns `completed: true` (and no report) when the program finished
    /// before the kill cycle — there is no crash to investigate.
    ///
    /// # Errors
    /// Journal creation failures surface as [`RecoveryError::BadImage`];
    /// simulation traps and recovery failures as in [`recover`].
    pub fn investigate_crash(
        &self,
        crash_cycle: u64,
        max_steps: u64,
    ) -> Result<CrashInvestigation, RecoveryError> {
        let mut machine = Machine::new(&self.compiled.module, &self.config, Scheme::cwsp());
        machine
            .enable_flight()
            .map_err(|e| RecoveryError::BadImage(format!("flight journal: {e}")))?;
        let result = machine
            .run(u64::MAX, Some(crash_cycle))
            .map_err(|e| RecoveryError::Trap(e.to_string()))?;
        let journal_path = machine
            .flight()
            .and_then(|f| f.path().map(std::path::Path::to_path_buf));
        if result.end != RunEnd::PowerFailure {
            return Ok(CrashInvestigation {
                completed: true,
                report: None,
                journal_path,
                replayed_steps: 0,
                stats: result.stats,
            });
        }
        let records = machine.flight_records();
        let frontier = machine.frontier();
        let ncores = frontier.cores.len();
        let image = machine.into_crash_image();
        let mut report = ForensicReport::reconstruct(&records, frontier);
        report.set_func_names(
            self.compiled
                .module
                .iter_functions()
                .map(|(_, f)| f.name.clone())
                .collect(),
        );
        // Cross-check every core against an instrumented recovery replay.
        // Each core replays over its own copy of the image so the checks
        // observe independent executions.
        let mut replayed_steps = 0;
        for core in 0..ncores {
            let cap = report.predicted_replay(core).len();
            let (run, log) =
                recover_with_write_log(&self.compiled, image.clone(), core, max_steps, cap)?;
            replayed_steps += run.replayed_steps;
            report.cross_check_core(core, &log.writes);
        }
        Ok(CrashInvestigation {
            completed: false,
            report: Some(report),
            journal_path,
            replayed_steps,
            stats: result.stats,
        })
    }
}

/// Outcome of [`CwspSystem::investigate_crash`].
#[derive(Debug, Clone)]
pub struct CrashInvestigation {
    /// The program completed before the kill cycle (no crash happened).
    pub completed: bool,
    /// The reconstructed forensic report, with cross-checks recorded.
    pub report: Option<ForensicReport>,
    /// On-disk journal path, when `CWSP_FLIGHT_DIR` names one.
    pub journal_path: Option<PathBuf>,
    /// Total instructions replayed across all per-core recoveries.
    pub replayed_steps: u64,
    /// Pre-crash simulation statistics.
    pub stats: SimStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};

    fn module() -> Module {
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(30), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn simulate_all_schemes() {
        let sys = CwspSystem::compile(&module());
        let oracle = sys.oracle(100_000).unwrap();
        for scheme in [
            Scheme::Baseline,
            Scheme::cwsp(),
            Scheme::Capri,
            Scheme::ReplayCache,
        ] {
            let run = sys.simulate(scheme, u64::MAX).unwrap();
            assert_eq!(run.end, RunEnd::Completed, "{scheme:?}");
            assert_eq!(run.return_value, oracle.return_value, "{scheme:?}");
        }
    }

    #[test]
    fn crash_after_completion_returns_completed_run() {
        let sys = CwspSystem::compile(&module());
        let oracle = sys.oracle(100_000).unwrap();
        let rec = sys.run_with_crash(u64::MAX - 1, 1_000_000).unwrap();
        assert_eq!(rec.return_value, oracle.return_value);
        assert_eq!(rec.replayed_steps, 0);
    }

    #[test]
    fn forensic_frontier_matches_recovery_replay() {
        let sys = CwspSystem::compile(&module());
        let mut checked = 0;
        for crash in [120u64, 300, 700, 1500, 2500] {
            let inv = sys.investigate_crash(crash, 1_000_000).unwrap();
            if inv.completed {
                continue;
            }
            let rep = inv.report.unwrap();
            assert!(
                rep.all_matched(),
                "crash@{crash}: cross-check diverged: {:?}",
                rep.cross_checks
            );
            checked += 1;
        }
        assert!(checked > 0, "no crash point actually hit mid-run");
    }

    #[test]
    fn crash_mid_run_recovers() {
        let sys = CwspSystem::compile(&module());
        let oracle = sys.oracle(100_000).unwrap();
        let rec = sys.run_with_crash(300, 1_000_000).unwrap();
        assert_eq!(rec.return_value, oracle.return_value);
        assert_eq!(rec.output, oracle.output);
    }
}
