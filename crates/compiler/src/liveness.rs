//! Backward liveness analysis.
//!
//! cWSP uses liveness twice: to compute the live-across-call save sets
//! ([`crate::callsave`]) and to find the live-out registers each region must
//! checkpoint (§IV-B, [`crate::checkpoint`]).

use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::Inst;
use cwsp_ir::types::Reg;

/// A dense register bit set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    /// An empty set sized for `nregs` registers.
    pub fn new(nregs: usize) -> Self {
        RegSet {
            bits: vec![0; nregs.div_ceil(64)],
        }
    }

    /// Insert `r`; returns whether the set changed.
    #[inline]
    pub fn insert(&mut self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        let old = self.bits[w];
        self.bits[w] |= 1 << b;
        self.bits[w] != old
    }

    /// Remove `r`.
    #[inline]
    pub fn remove(&mut self, r: Reg) {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.bits[w] &= !(1 << b);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, r: Reg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.bits[w] >> b & 1 == 1
    }

    /// Union `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Iterate members in ascending register order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits >> b & 1 == 1)
                .map(move |b| Reg((w * 64 + b) as u32))
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }
}

/// All registers an instruction defines. Unlike [`Inst::def`], a `Call` also
/// defines its `save_regs` — the restore phase reloads them from the frame
/// (see `cwsp-ir` call semantics), which is a definition as far as dataflow
/// is concerned.
pub fn defs(inst: &Inst) -> Vec<Reg> {
    let mut d: Vec<Reg> = inst.def().into_iter().collect();
    if let Inst::Call { save_regs, .. } = inst {
        d.extend(save_regs.iter().copied());
    }
    d
}

/// Per-function liveness result: live-in sets at each block entry.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]` = registers live at the entry of block `b`.
    pub live_in: Vec<RegSet>,
    nregs: usize,
}

impl Liveness {
    /// Compute liveness for `f` with the classic backward worklist algorithm.
    pub fn compute(f: &Function) -> Self {
        let nregs = f.reg_count as usize;
        let nblocks = f.blocks.len();
        let mut live_in = vec![RegSet::new(nregs); nblocks];
        let preds = cfg::predecessors(f);
        // Iterate blocks in reverse RPO until fixpoint.
        let order: Vec<BlockId> = {
            let mut rpo = cfg::reverse_post_order(f);
            rpo.reverse();
            rpo
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                // live-out = union of successors' live-in
                let mut live = RegSet::new(nregs);
                for s in cfg::successors(f, b) {
                    live.union_with(&live_in[s.index()]);
                }
                // transfer backward through the block
                for inst in f.block(b).insts.iter().rev() {
                    for d in defs(inst) {
                        live.remove(d);
                    }
                    for u in inst.uses() {
                        live.insert(u);
                    }
                }
                if live != live_in[b.index()] {
                    live_in[b.index()] = live;
                    changed = true;
                    // Touch predecessors on next sweep (the full-resweep
                    // worklist is simple and fast enough at our sizes).
                    let _ = &preds;
                }
            }
        }
        Liveness { live_in, nregs }
    }

    /// Registers live immediately *before* instruction `idx` of block `b`.
    ///
    /// Recomputed by a backward scan of the block suffix — O(block length),
    /// which is fine for the pass workloads here.
    pub fn live_before(&self, f: &Function, b: BlockId, idx: usize) -> RegSet {
        let mut live = RegSet::new(self.nregs);
        for s in cfg::successors(f, b) {
            live.union_with(&self.live_in[s.index()]);
        }
        let insts = &f.block(b).insts;
        for i in (idx..insts.len()).rev() {
            for d in defs(&insts[i]) {
                live.remove(d);
            }
            for u in insts[i].uses() {
                live.insert(u);
            }
        }
        live
    }

    /// Registers live immediately *after* instruction `idx` of block `b`.
    pub fn live_after(&self, f: &Function, b: BlockId, idx: usize) -> RegSet {
        self.live_before(f, b, idx + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, MemRef, Operand};
    use cwsp_ir::module::FuncId;

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(Reg(0)));
        assert!(s.insert(Reg(129)));
        assert!(!s.insert(Reg(129)), "reinsertion reports no change");
        assert!(s.contains(Reg(129)));
        assert_eq!(s.len(), 2);
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![Reg(0), Reg(129)]);
        s.remove(Reg(0));
        assert!(!s.contains(Reg(0)));

        let mut t = RegSet::new(130);
        t.insert(Reg(5));
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s), "second union is a no-op");
        assert!(t.contains(Reg(129)) && t.contains(Reg(5)));
    }

    #[test]
    fn straight_line_liveness() {
        // r0 = 1; r1 = r0 + 2; store r1; halt
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(1));
        let r1 = b.bin(e, BinOp::Add, r0.into(), Operand::imm(2));
        b.store(e, r1.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let f = b.build();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in[0].is_empty(), "nothing live at entry");
        // before the add, r0 is live; r1 is not
        let before_add = lv.live_before(&f, e, 1);
        assert!(before_add.contains(r0));
        assert!(!before_add.contains(r1));
        // after the add, r1 is live, r0 dead
        let after_add = lv.live_after(&f, e, 1);
        assert!(after_add.contains(r1));
        assert!(!after_add.contains(r0));
    }

    #[test]
    fn loop_carried_register_is_live_at_header() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let (header, exit) = build_counted_loop(&mut b, e, Operand::imm(4), |_, _, _| {});
        b.push(exit, Inst::Halt);
        let f = b.build();
        let lv = Liveness::compute(&f);
        // the induction variable is live at the loop header
        assert!(!lv.live_in[header.index()].is_empty());
    }

    #[test]
    fn call_save_regs_count_as_defs() {
        let call = Inst::Call {
            func: FuncId(0),
            args: vec![],
            ret: Some(Reg(2)),
            save_regs: vec![Reg(5)],
        };
        let d = defs(&call);
        assert!(d.contains(&Reg(2)) && d.contains(&Reg(5)));
    }

    #[test]
    fn branch_merges_liveness_from_both_arms() {
        // entry: r0=1; condbr r0 ? bb1 : bb2 ; bb1 uses r1; bb2 uses r2
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let bb1 = b.block();
        let bb2 = b.block();
        let r0 = b.mov(e, Operand::imm(1));
        let r1 = b.vreg();
        let r2 = b.vreg();
        b.push(
            e,
            Inst::CondBr {
                cond: r0.into(),
                if_true: bb1,
                if_false: bb2,
            },
        );
        b.push(
            bb1,
            Inst::Ret {
                val: Some(r1.into()),
            },
        );
        b.push(
            bb2,
            Inst::Ret {
                val: Some(r2.into()),
            },
        );
        let f = b.build();
        let lv = Liveness::compute(&f);
        let at_entry = &lv.live_in[0];
        assert!(at_entry.contains(r1) && at_entry.contains(r2));
        assert!(!at_entry.contains(r0), "r0 defined in entry");
    }
}
