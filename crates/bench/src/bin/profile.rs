//! The cycle-attribution profiler: run workloads with the machine's exact
//! per-cycle profiler and event ring enabled, then write — per (workload,
//! scheme) pair, under `results/profiles/` —
//!
//! * `<app>_<scheme>.profile.txt`  — the flat profile report,
//! * `<app>_<scheme>.profile.json` — the same rows as JSON,
//! * `<app>_<scheme>.trace.json`   — the Chrome trace-event timeline
//!   (load it in Perfetto / `chrome://tracing`; cores and memory
//!   controllers appear as separate tracks).
//!
//! Attribution is exact by construction — one charge per core per cycle —
//! so the summary's coverage column reports the fraction of cycles at
//! resolvable program sites (the rest are `<halted>` drain or pre-frame
//! `<machine>` cycles).
//!
//! ```sh
//! cargo run --release -p cwsp-bench --bin profile            # default apps
//! cargo run --release -p cwsp-bench --bin profile -- namd c  # chosen apps
//! ```
//!
//! Output directory override: `CWSP_PROFILE_DIR`.

use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp_sim::config::SimConfig;
use cwsp_sim::machine::Machine;
use cwsp_sim::scheme::Scheme;
use std::path::PathBuf;

/// Compute-dense, write-heavy, and transactional — three distinct shapes.
const DEFAULT_APPS: [&str; 3] = ["namd", "lbm", "tatp"];

/// Event-ring capacity: big enough that short workloads keep their whole
/// timeline, bounded so long ones stay bounded.
const TRACE_CAP: usize = 65_536;

fn main() {
    cwsp_bench::harness_main("profile", run);
}

fn out_dir() -> PathBuf {
    match std::env::var("CWSP_PROFILE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/profiles"),
    }
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        DEFAULT_APPS.iter().map(|s| (*s).to_string()).collect()
    } else {
        args
    };
    let dir = out_dir();
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let cfg = SimConfig::default();

    println!("\n=== cycle-attribution profiles ===");
    println!(
        "   {:<10} {:<10} {:>12} {:>9}  top site",
        "app", "scheme", "cycles", "coverage"
    );
    for name in &names {
        let w = cwsp_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown workload {name:?} (see list_workloads)"));
        // Both schemes run the *compiled* binary, so profiles are
        // line-up-able: same sites, different persist machinery.
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
        for scheme in [Scheme::cwsp(), Scheme::Baseline] {
            let mut machine = Machine::new(&compiled.module, &cfg, scheme);
            machine.enable_profiler();
            machine.enable_trace(TRACE_CAP);
            let r = machine
                .run(u64::MAX, None)
                .unwrap_or_else(|e| panic!("{name} {}: {e}", scheme.name()));
            let flat = machine.flat_profile().expect("profiler was enabled");
            let chrome = machine.chrome_trace().expect("tracing was enabled");

            let stem = format!("{}_{}", w.name, scheme.name());
            let title = format!(
                "{} under {} ({} cycles)",
                w.name,
                scheme.name(),
                r.stats.cycles
            );
            write(
                &dir,
                &format!("{stem}.profile.txt"),
                &flat.render_text(&title, 20),
            );
            write(&dir, &format!("{stem}.profile.json"), &flat.to_json());
            write(&dir, &format!("{stem}.trace.json"), &chrome.to_json());

            let top = flat
                .sorted_rows()
                .into_iter()
                .find(|row| !row.is_synthetic())
                .map(|row| format!("{} ({})", row.site_label(), row.cause))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "   {:<10} {:<10} {:>12} {:>8.1}%  {top}",
                w.name,
                scheme.name(),
                r.stats.cycles,
                flat.coverage() * 100.0,
            );
        }
    }
    println!(
        "--\n   wrote {} files to {}",
        names.len() * 6,
        dir.display()
    );
}

fn write(dir: &std::path::Path, file: &str, text: &str) {
    let path = dir.join(file);
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}
