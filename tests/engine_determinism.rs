//! The experiment engine must be a pure performance layer: results obtained
//! through the parallel, memoizing engine (and through its disk cache) must
//! be bit-identical to a direct serial `run_to_completion` — for every stats
//! field, not just cycles. Figures printed from memoized runs are otherwise
//! silently wrong.

use cwsp_bench::engine::{par_map, Engine};
use cwsp_bench::run_to_completion;
use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;
use cwsp_sim::stats::SimStats;

/// Sample (workload, config, scheme) triples spanning the figure space:
/// default machine, bandwidth-starved machine, tiny queues, and each scheme.
fn sample_triples() -> Vec<(&'static str, SimConfig, Scheme)> {
    let starved = SimConfig {
        persist_path_gbps: 1.0,
        ..SimConfig::default()
    };
    let tiny = SimConfig {
        rbt_entries: 4,
        wpq_entries: 4,
        ..SimConfig::default()
    };
    vec![
        ("lbm", SimConfig::default(), Scheme::cwsp()),
        ("xz", starved, Scheme::cwsp()),
        ("radix", tiny, Scheme::cwsp()),
        ("kmeans", SimConfig::default(), Scheme::Capri),
        ("tatp", SimConfig::default(), Scheme::ReplayCache),
    ]
}

fn serial_stats(name: &str, cfg: &SimConfig, scheme: Scheme) -> (SimStats, SimStats) {
    let w = cwsp_workloads::by_name(name).unwrap();
    let base = run_to_completion(&w.module, cfg, Scheme::Baseline).unwrap();
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
    let s = run_to_completion(&compiled.module, cfg, scheme).unwrap();
    (base, s)
}

#[test]
fn engine_results_are_bit_identical_to_serial_runs() {
    let engine = Engine::new(None);
    let triples = sample_triples();
    // Drive the engine the way figure binaries do: in parallel, twice (the
    // second sweep exercises the memo), then compare against direct serial
    // runs field-for-field.
    for _round in 0..2 {
        let engine_results: Vec<(SimStats, SimStats)> = par_map(&triples, |(name, cfg, scheme)| {
            let w = cwsp_workloads::by_name(name).unwrap();
            let base = engine.stats(name, &w.module, cfg, Scheme::Baseline);
            let compiled = engine.compiled(&w.module, CompileOptions::default());
            let s = engine.stats(name, &compiled.module, cfg, *scheme);
            (base, s)
        });
        for ((name, cfg, scheme), (ebase, es)) in triples.iter().zip(&engine_results) {
            let (base, s) = serial_stats(name, cfg, *scheme);
            assert_eq!(
                *ebase, base,
                "{name}: baseline stats diverged from serial run"
            );
            assert_eq!(
                *es,
                s,
                "{name}/{}: scheme stats diverged from serial run",
                scheme.name()
            );
        }
    }
    let c = engine.counters();
    assert_eq!(
        c.jobs, 20,
        "two rounds x five triples x (baseline + scheme)"
    );
    assert_eq!(c.memo_hits, 10, "entire second round memoized");
}

#[test]
fn disk_cached_results_are_bit_identical_too() {
    let dir = std::env::temp_dir().join(format!("cwsp-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (name, cfg, scheme) = ("lu-cg", SimConfig::default(), Scheme::cwsp());
    let w = cwsp_workloads::by_name(name).unwrap();
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);

    let writer = Engine::new(Some(dir.clone()));
    let first = writer.stats(name, &compiled.module, &cfg, scheme);
    // A fresh engine must reconstruct the exact stats from the JSON file.
    let reader = Engine::new(Some(dir.clone()));
    let from_disk = reader.stats(name, &compiled.module, &cfg, scheme);
    assert_eq!(
        reader.counters().disk_hits,
        1,
        "second engine read the cache file"
    );
    assert_eq!(from_disk, first);
    assert_eq!(
        from_disk,
        run_to_completion(&compiled.module, &cfg, scheme).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slowdowns_printed_by_figures_match_serial_to_full_precision() {
    // The figure binaries print slowdowns with {:.3}; require bit-equality of
    // the f64 itself, which is strictly stronger.
    let cfg = SimConfig::default();
    let engine = Engine::new(None);
    for name in ["lbm", "raytrace", "vacation"] {
        let w = cwsp_workloads::by_name(name).unwrap();
        let (base, s) = serial_stats(name, &cfg, Scheme::cwsp());
        let serial_slowdown = s.cycles as f64 / base.cycles as f64;
        let ebase = engine.stats(name, &w.module, &cfg, Scheme::Baseline);
        let ec = engine.compiled(&w.module, CompileOptions::default());
        let es = engine.stats(name, &ec.module, &cfg, Scheme::cwsp());
        let engine_slowdown = es.cycles as f64 / ebase.cycles as f64;
        assert_eq!(
            serial_slowdown.to_bits(),
            engine_slowdown.to_bits(),
            "{name}: slowdown diverged"
        );
    }
}
