//! Checkpoint pruning and recovery-slice generation (§IV-C).
//!
//! "Many checkpoints are unnecessary if they can be reconstructed using
//! immediate values and/or the remaining checkpoints at recovery time." We
//! implement the sound constant-rematerialization subset of Penny's optimal
//! pruning: for each region boundary and live-in register, if the register has
//! a *single* reaching definition whose value constant-folds, the recovery
//! slice materializes the constant and the checkpoint slot is never read;
//! checkpoints whose definition site no boundary slot-loads are deleted.
//!
//! Two rematerialization tiers are implemented: (1) compile-time constants,
//! and (2) expressions over immediates and the *remaining* checkpoints
//! (Fig 4's `r3 = shl(slot_r3_of_Rg0, 1)` case) — a register whose single
//! reaching definition derives from other slot-backed live-ins is rebuilt by
//! re-applying the defining operations at recovery time, and its own
//! checkpoint is deleted.

use crate::liveness::{defs, Liveness};
use crate::reaching::{DefSite, ReachingDefs};
use crate::slice::{RecoverySlice, RematExpr, RsSource, SliceTable};
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::{Inst, Operand};
use cwsp_ir::module::Module;
use cwsp_ir::types::{Reg, Word};
use std::collections::{HashMap, HashSet};

/// Caps on rematerialization expressions.
const MAX_EXPR_NODES: usize = 12;
const MAX_EXPR_DEPTH: usize = 6;

/// Result of the pruning pass.
#[derive(Debug, Clone, Default)]
pub struct PruneInfo {
    /// Checkpoints deleted because no recovery slice reads their slot.
    pub ckpts_pruned: usize,
    /// Live-in restores resolved as compile-time constants.
    pub const_restores: usize,
    /// Live-in restores that load checkpoint slots.
    pub slot_restores: usize,
    /// Live-in restores rematerialized as expressions over other slots.
    pub expr_restores: usize,
}

/// Generate recovery slices for every explicit region boundary and, when
/// `prune` is set, delete checkpoints that no slice slot-loads.
pub fn prune_and_build_slices(
    module: &mut Module,
    prune: bool,
    expr_remat: bool,
) -> (SliceTable, PruneInfo) {
    let mut table = SliceTable::new();
    let mut info = PruneInfo::default();
    for fid in 0..module.function_count() {
        let fid = cwsp_ir::module::FuncId(fid as u32);
        let f = module.function(fid).clone();
        let lv = Liveness::compute(&f);
        let rd = ReachingDefs::compute(&f);
        let mut memo: HashMap<(DefSite, Reg), Option<Word>> = HashMap::new();

        // Round 1: per boundary, resolve constants; everything else is
        // tentatively slot-backed. Collect the optimistic slot-needed set.
        struct Boundary {
            id: cwsp_ir::types::RegionId,
            bid: BlockId,
            idx: usize,
            consts: Vec<(Reg, Word)>,
            tentative: Vec<Reg>,
        }
        let mut boundaries: Vec<Boundary> = Vec::new();
        let mut slot_all: HashSet<(DefSite, Reg)> = HashSet::new();
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let Inst::Boundary { id } = inst else {
                    continue;
                };
                let live = lv.live_after(&f, bid, i);
                let mut consts = Vec::new();
                let mut tentative = Vec::new();
                for r in live.iter() {
                    let sites = rd.at(&f, bid, i, r);
                    let constv = if prune && sites.len() == 1 {
                        let site = *sites.iter().next().unwrap();
                        const_value(&f, &rd, &mut memo, site, r, 0)
                    } else {
                        None
                    };
                    match constv {
                        Some(c) => consts.push((r, c)),
                        None => {
                            for s in sites {
                                slot_all.insert((s, r));
                            }
                            tentative.push(r);
                        }
                    }
                }
                boundaries.push(Boundary {
                    id: *id,
                    bid,
                    idx: i,
                    consts,
                    tentative,
                });
            }
        }

        // Round 2: optimistic expression upgrades — a leaf `slot_s` is usable
        // when every reaching definition of `s` at the read point is in the
        // (current) slot-needed set and `s` is not redefined on the way to
        // the boundary. Record each expression's leaf dependencies.
        #[derive(Clone)]
        enum Res {
            Slot,
            Expr(RematExpr, Vec<(Reg, HashSet<(DefSite, Reg)>)>),
        }
        let mut resolutions: Vec<Vec<(Reg, Res)>> = Vec::new();
        for b in &boundaries {
            // Registers the region *starting at this boundary* may define:
            // their checkpoint slots can be overwritten in place while the
            // region is the (unlogged) head, so no expression leaf may read
            // them (the bug class the crash property tests hunt for).
            let region_defs = region_defined_regs(&f, b.bid, b.idx);
            let mut per = Vec::new();
            for &r in &b.tentative {
                let res = if prune && expr_remat {
                    build_expr(&f, &rd, &memo, b.bid, b.idx, r, &slot_all, &region_defs)
                        .map(|(e, deps)| Res::Expr(e, deps))
                        .unwrap_or(Res::Slot)
                } else {
                    Res::Slot
                };
                per.push((r, res));
            }
            resolutions.push(per);
        }

        // Fixpoint: recompute the keep-set from the current resolutions and
        // demote any expression whose leaves lost their backing.
        loop {
            let mut keep: HashSet<(DefSite, Reg)> = HashSet::new();
            for (b, per) in boundaries.iter().zip(&resolutions) {
                for (r, res) in per {
                    if matches!(res, Res::Slot) {
                        for s in rd.at(&f, b.bid, b.idx, *r) {
                            keep.insert((s, *r));
                        }
                    }
                }
            }
            let mut changed = false;
            for per in &mut resolutions {
                for (_, res) in per.iter_mut() {
                    if let Res::Expr(_, deps) = res {
                        let ok = deps
                            .iter()
                            .all(|(_, sites)| sites.iter().all(|sr| keep.contains(sr)));
                        if !ok {
                            *res = Res::Slot;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                // Final keep-set decides checkpoint deletion.
                if prune {
                    info.ckpts_pruned += delete_unneeded_ckpts(module.function_mut(fid), &keep);
                }
                break;
            }
        }

        // Emit slices.
        for (b, per) in boundaries.iter().zip(&resolutions) {
            let mut slice = RecoverySlice::default();
            for &(r, c) in &b.consts {
                info.const_restores += 1;
                slice.restores.push((r, RsSource::Const(c)));
            }
            for (r, res) in per {
                match res {
                    Res::Slot => {
                        info.slot_restores += 1;
                        slice.restores.push((*r, RsSource::Slot));
                    }
                    Res::Expr(e, _) => {
                        info.expr_restores += 1;
                        slice.restores.push((*r, RsSource::Expr(e.clone())));
                    }
                }
            }
            table.insert(b.id, slice);
        }
    }
    (table, info)
}

/// A rematerialization expression plus, per slot leaf, the definition sites
/// whose checkpoints the expression depends on.
type ExprWithDeps = (RematExpr, Vec<(Reg, HashSet<(DefSite, Reg)>)>);

/// Try to build a rematerialization expression for `r` at boundary point
/// `(b, i)`. Returns the expression plus, per slot leaf, the definition sites
/// whose checkpoints the expression depends on.
#[allow(clippy::too_many_arguments)]
fn build_expr(
    f: &Function,
    rd: &ReachingDefs,
    memo: &HashMap<(DefSite, Reg), Option<Word>>,
    b: BlockId,
    i: usize,
    r: Reg,
    slot_all: &HashSet<(DefSite, Reg)>,
    region_defs: &HashSet<Reg>,
) -> Option<ExprWithDeps> {
    let sites = rd.at(f, b, i, r);
    if sites.len() != 1 {
        return None;
    }
    let site = *sites.iter().next().unwrap();
    let mut deps = Vec::new();
    let expr = expr_for_site(
        f,
        rd,
        memo,
        b,
        i,
        site,
        r,
        slot_all,
        region_defs,
        &mut deps,
        0,
    )?;
    if expr.size() > MAX_EXPR_NODES || matches!(expr, RematExpr::Slot(_)) {
        return None;
    }
    let mut leaves = Vec::new();
    expr.slot_leaves(&mut leaves);
    if leaves.contains(&r) {
        return None;
    }
    Some((expr, deps))
}

#[allow(clippy::too_many_arguments)]
fn expr_for_site(
    f: &Function,
    rd: &ReachingDefs,
    memo: &HashMap<(DefSite, Reg), Option<Word>>,
    bb: BlockId,
    bi: usize,
    site: DefSite,
    r: Reg,
    slot_all: &HashSet<(DefSite, Reg)>,
    region_defs: &HashSet<Reg>,
    deps: &mut Vec<(Reg, HashSet<(DefSite, Reg)>)>,
    depth: usize,
) -> Option<RematExpr> {
    if depth > MAX_EXPR_DEPTH {
        return None;
    }
    if let Some(Some(c)) = memo.get(&(site, r)) {
        return Some(RematExpr::Const(*c));
    }
    let DefSite::Inst(db, di) = site else {
        return None;
    };
    match &f.block(db).insts[di] {
        Inst::Mov { dst, src } if *dst == r => operand_expr(
            f,
            rd,
            memo,
            bb,
            bi,
            *src,
            db,
            di,
            slot_all,
            region_defs,
            deps,
            depth,
        ),
        Inst::Binary { op, dst, lhs, rhs } if *dst == r => {
            let l = operand_expr(
                f,
                rd,
                memo,
                bb,
                bi,
                *lhs,
                db,
                di,
                slot_all,
                region_defs,
                deps,
                depth,
            )?;
            let rr = operand_expr(
                f,
                rd,
                memo,
                bb,
                bi,
                *rhs,
                db,
                di,
                slot_all,
                region_defs,
                deps,
                depth,
            )?;
            Some(RematExpr::Bin(*op, Box::new(l), Box::new(rr)))
        }
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn operand_expr(
    f: &Function,
    rd: &ReachingDefs,
    memo: &HashMap<(DefSite, Reg), Option<Word>>,
    bb: BlockId,
    bi: usize,
    op: Operand,
    db: BlockId,
    di: usize,
    slot_all: &HashSet<(DefSite, Reg)>,
    region_defs: &HashSet<Reg>,
    deps: &mut Vec<(Reg, HashSet<(DefSite, Reg)>)>,
    depth: usize,
) -> Option<RematExpr> {
    match op {
        Operand::Imm(v) => {
            if cwsp_ir::layout::is_tagged_global(v) {
                None
            } else {
                Some(RematExpr::Const(v))
            }
        }
        Operand::Reg(s) => {
            let sites_here = rd.at(f, db, di, s);
            // Slot leaf: every reaching definition of `s` here is
            // checkpoint-backed, `s` is not redefined between this read point
            // and the boundary (identical reaching-def sets), and — crucially
            // — the boundary's own region never defines `s` (it would
            // overwrite `s`'s slot in place while the region is the unlogged
            // head, corrupting this expression at recovery).
            let backed = sites_here.iter().all(|d| slot_all.contains(&(*d, s)));
            if backed && !region_defs.contains(&s) {
                let sites_at_boundary = rd.at(f, bb, bi, s);
                if sites_at_boundary == sites_here {
                    deps.push((s, sites_here.iter().map(|d| (*d, s)).collect()));
                    return Some(RematExpr::Slot(s));
                }
            }
            if sites_here.len() != 1 {
                return None;
            }
            let site = *sites_here.iter().next().unwrap();
            expr_for_site(
                f,
                rd,
                memo,
                bb,
                bi,
                site,
                s,
                slot_all,
                region_defs,
                deps,
                depth + 1,
            )
        }
    }
}

/// Constant-fold the value produced by `site` for register `r`, if possible.
fn const_value(
    f: &Function,
    rd: &ReachingDefs,
    memo: &mut HashMap<(DefSite, Reg), Option<Word>>,
    site: DefSite,
    r: Reg,
    depth: usize,
) -> Option<Word> {
    if depth > 16 {
        return None;
    }
    if let Some(v) = memo.get(&(site, r)) {
        return *v;
    }
    // Seed the memo with None to break cycles through loops.
    memo.insert((site, r), None);
    let v = match site {
        DefSite::Entry => {
            // Parameters are runtime values; all other registers start at 0.
            if r.0 < f.param_count {
                None
            } else {
                Some(0)
            }
        }
        DefSite::Inst(b, i) => {
            let inst = &f.block(b).insts[i];
            match inst {
                Inst::Mov { dst, src } if *dst == r => {
                    operand_const(f, rd, memo, *src, b, i, depth)
                }
                Inst::Binary { op, dst, lhs, rhs } if *dst == r => {
                    let l = operand_const(f, rd, memo, *lhs, b, i, depth)?;
                    let rr = operand_const(f, rd, memo, *rhs, b, i, depth)?;
                    Some(op.eval(l, rr))
                }
                _ => None,
            }
        }
    };
    memo.insert((site, r), v);
    v
}

fn operand_const(
    f: &Function,
    rd: &ReachingDefs,
    memo: &mut HashMap<(DefSite, Reg), Option<Word>>,
    op: Operand,
    b: BlockId,
    i: usize,
    depth: usize,
) -> Option<Word> {
    match op {
        Operand::Imm(v) => {
            // Tagged global addresses are runtime-resolved; treating them as
            // constants would be fine (the tag is unique), but recovery
            // slices materialize *resolved* values, so keep it simple and
            // refuse.
            if cwsp_ir::layout::is_tagged_global(v) {
                None
            } else {
                Some(v)
            }
        }
        Operand::Reg(s) => {
            let sites = rd.at(f, b, i, s);
            if sites.len() != 1 {
                return None;
            }
            const_value(f, rd, memo, *sites.iter().next().unwrap(), s, depth + 1)
        }
    }
}

/// Registers possibly defined by the region that starts at boundary
/// `(b, i)`: a bounded walk from the instruction after the boundary until the
/// next region break (boundary, call, return, halt) on every path.
fn region_defined_regs(f: &Function, b: BlockId, i: usize) -> HashSet<Reg> {
    let mut out = HashSet::new();
    let mut work: Vec<(BlockId, usize)> = vec![(b, i + 1)];
    let mut visited: HashSet<(u32, usize)> = HashSet::new();
    while let Some((bid, mut idx)) = work.pop() {
        if !visited.insert((bid.0, idx)) || visited.len() > 4096 {
            continue;
        }
        while let Some(inst) = f.block(bid).insts.get(idx) {
            match inst {
                Inst::Boundary { .. } | Inst::Call { .. } | Inst::Ret { .. } | Inst::Halt => {
                    break;
                }
                Inst::Br { target } => {
                    work.push((*target, 0));
                    break;
                }
                Inst::CondBr {
                    if_true, if_false, ..
                } => {
                    work.push((*if_true, 0));
                    work.push((*if_false, 0));
                    break;
                }
                other => {
                    out.extend(defs(other));
                    idx += 1;
                }
            }
        }
    }
    out
}

/// Delete `Ckpt` instructions whose definition site is not slot-needed.
fn delete_unneeded_ckpts(f: &mut Function, slot_needed: &HashSet<(DefSite, Reg)>) -> usize {
    let mut deletions: Vec<(usize, usize)> = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for (i, inst) in block.insts.iter().enumerate() {
            let Inst::Ckpt { reg } = inst else { continue };
            let site = owning_def_site(block, BlockId(bi as u32), i, *reg);
            if !slot_needed.contains(&(site, *reg)) {
                deletions.push((bi, i));
            }
        }
    }
    let n = deletions.len();
    for (bi, i) in deletions.into_iter().rev() {
        f.blocks[bi].insts.remove(i);
    }
    n
}

/// The definition site a checkpoint instruction belongs to: the nearest
/// preceding definition of `reg` in the same block, or the function-entry
/// pseudo-site for entry-top checkpoints.
fn owning_def_site(
    block: &cwsp_ir::function::Block,
    bid: BlockId,
    ckpt_idx: usize,
    reg: Reg,
) -> DefSite {
    for j in (0..ckpt_idx).rev() {
        if defs(&block.insts[j]).contains(&reg) {
            return DefSite::Inst(bid, j);
        }
    }
    DefSite::Entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{insert_checkpoints, CkptMode};
    use crate::region::form_regions;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, MemRef};
    use cwsp_ir::types::RegionId;

    fn count_ckpts(m: &Module) -> usize {
        m.iter_functions()
            .flat_map(|(_, f)| f.blocks.iter())
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Ckpt { .. }))
            .count()
    }

    #[test]
    fn constant_live_in_is_rematerialized_and_ckpt_pruned() {
        // r = 100; boundary; store r (r is live-in, value constant 100)
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(100));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        insert_checkpoints(&mut m, CkptMode::DefSite);
        assert_eq!(count_ckpts(&m), 1);
        let (table, info) = prune_and_build_slices(&mut m, true, true);
        assert_eq!(info.ckpts_pruned, 1);
        assert_eq!(info.const_restores, 1);
        assert_eq!(count_ckpts(&m), 0);
        let slice = table.get(RegionId(0)).unwrap();
        assert_eq!(slice.restores, vec![(r, RsSource::Const(100))]);
    }

    #[test]
    fn derived_constant_chain_folds() {
        // r0 = 100; r1 = r0 << 1; boundary; store r1  -> Const(200)
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(100));
        let r1 = b.bin(e, BinOp::Shl, r0.into(), Operand::imm(1));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, r1.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        insert_checkpoints(&mut m, CkptMode::DefSite);
        let (table, _) = prune_and_build_slices(&mut m, true, true);
        let slice = table.get(RegionId(0)).unwrap();
        assert_eq!(slice.restores, vec![(r1, RsSource::Const(200))]);
        assert_eq!(count_ckpts(&m), 0);
    }

    #[test]
    fn runtime_value_keeps_slot_and_ckpt() {
        // r = load [64]; boundary; store r  -> slot load, ckpt kept
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.load(e, MemRef::abs(64));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, r.into(), MemRef::abs(72));
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        insert_checkpoints(&mut m, CkptMode::DefSite);
        let (table, info) = prune_and_build_slices(&mut m, true, true);
        assert_eq!(info.ckpts_pruned, 0);
        assert_eq!(count_ckpts(&m), 1);
        assert_eq!(
            table.get(RegionId(0)).unwrap().restores,
            vec![(r, RsSource::Slot)]
        );
    }

    #[test]
    fn multi_def_merge_keeps_slot() {
        // two consts merging at a join: not a singleton reaching def -> Slot.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let ba = b.block();
        let bb = b.block();
        let join = b.block();
        let r = b.vreg();
        let c = b.load(e, MemRef::abs(64));
        b.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: ba,
                if_false: bb,
            },
        );
        b.push(
            ba,
            Inst::Mov {
                dst: r,
                src: Operand::imm(1),
            },
        );
        b.push(ba, Inst::Br { target: join });
        b.push(
            bb,
            Inst::Mov {
                dst: r,
                src: Operand::imm(2),
            },
        );
        b.push(bb, Inst::Br { target: join });
        b.store(join, r.into(), MemRef::abs(72));
        b.push(join, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        form_regions(&mut m); // join gets a boundary
        insert_checkpoints(&mut m, CkptMode::DefSite);
        let before = count_ckpts(&m);
        assert_eq!(before, 2, "one per branch arm");
        let (_, info) = prune_and_build_slices(&mut m, true, true);
        assert_eq!(info.ckpts_pruned, 0, "merged value must stay slot-backed");
    }

    #[test]
    fn loop_induction_variable_stays_slot_backed() {
        use cwsp_ir::builder::build_counted_loop;
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(10), |b, bb, i| {
            b.store(bb, i.into(), MemRef::global(g, 0));
        });
        b.push(exit, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        form_regions(&mut m);
        insert_checkpoints(&mut m, CkptMode::DefSite);
        let (table, _) = prune_and_build_slices(&mut m, true, true);
        // Some region has the induction variable as a Slot restore.
        let any_slot = table.iter().any(|(_, s)| {
            s.restores
                .iter()
                .any(|(_, src)| matches!(src, RsSource::Slot))
        });
        assert!(any_slot);
    }

    #[test]
    fn unpruned_mode_generates_all_slot_slices() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(100));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        insert_checkpoints(&mut m, CkptMode::PerBoundary);
        let n = count_ckpts(&m);
        let (table, info) = prune_and_build_slices(&mut m, false, true);
        assert_eq!(count_ckpts(&m), n, "nothing deleted");
        assert_eq!(info.const_restores, 0);
        assert!(matches!(
            table.get(RegionId(0)).unwrap().restores[..],
            [(_, RsSource::Slot)]
        ));
    }
}
