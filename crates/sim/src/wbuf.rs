//! The L1D write buffer (WB) and cWSP's stale-read fix (§V-A1).
//!
//! Dirty L1D evictions park in the WB before draining to the shared L2. cWSP
//! delays the drain of the head entry while the persist buffer still holds a
//! store to the same cacheline — the cheap, coherence-agnostic guarantee that
//! a load missing the LLC can never observe NVM state older than what the
//! caches would have supplied (the "stale read issue" of §II-A).

use std::collections::VecDeque;

/// The per-core write buffer.
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    cap: usize,
    /// Line-aligned addresses of parked dirty evictions (FIFO).
    lines: VecDeque<u64>,
    /// Earliest cycle the next drain may happen.
    next_drain_at: u64,
    /// Cycle interval between drains.
    drain_interval: u64,
}

impl WriteBuffer {
    /// A WB with `cap` entries draining one line per `drain_interval` cycles.
    pub fn new(cap: usize, drain_interval: u64) -> Self {
        WriteBuffer {
            cap,
            lines: VecDeque::new(),
            next_drain_at: 0,
            drain_interval,
        }
    }

    /// Whether a new dirty eviction can be parked.
    pub fn has_space(&self) -> bool {
        self.lines.len() < self.cap
    }

    /// Occupancy (Fig 6's metric).
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// Parked line addresses in FIFO order — the write-buffer slice of the
    /// crash forensics dirty-in-cache frontier.
    pub fn parked_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines.iter().copied()
    }

    /// Earliest cycle the next drain attempt can succeed, or `None` when
    /// empty (rate limit: a parked head drains no earlier than this).
    pub fn next_drain_cycle(&self) -> Option<u64> {
        if self.lines.is_empty() {
            None
        } else {
            Some(self.next_drain_at)
        }
    }

    /// Park a dirty eviction.
    ///
    /// # Panics
    /// Panics when full — the core must stall instead.
    pub fn push(&mut self, line: u64) {
        assert!(self.has_space(), "WB overflow — core must stall");
        self.lines.push_back(line);
    }

    /// Attempt one drain at `cycle`. `delayed(line)` implements the cWSP PB
    /// CAM check: while it returns true the head is held (§V-A1). Returns the
    /// drained line, or `None` (empty, rate-limited, or delayed — the latter
    /// is reported through `was_delayed`).
    pub fn try_drain(
        &mut self,
        cycle: u64,
        mut delayed: impl FnMut(u64) -> bool,
        was_delayed: &mut bool,
    ) -> Option<u64> {
        *was_delayed = false;
        if cycle < self.next_drain_at {
            return None;
        }
        let head = *self.lines.front()?;
        if delayed(head) {
            *was_delayed = true;
            return None;
        }
        self.next_drain_at = cycle + self.drain_interval;
        self.lines.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_drain_with_rate_limit() {
        let mut wb = WriteBuffer::new(4, 10);
        wb.push(0x1000);
        wb.push(0x2000);
        let mut d = false;
        assert_eq!(wb.try_drain(0, |_| false, &mut d), Some(0x1000));
        assert_eq!(wb.try_drain(5, |_| false, &mut d), None, "rate limited");
        assert_eq!(wb.try_drain(10, |_| false, &mut d), Some(0x2000));
        assert_eq!(wb.occupancy(), 0);
    }

    #[test]
    fn pb_match_holds_head() {
        let mut wb = WriteBuffer::new(4, 1);
        wb.push(0x1000);
        let mut d = false;
        assert_eq!(wb.try_drain(0, |l| l == 0x1000, &mut d), None);
        assert!(d, "delay reported");
        assert_eq!(wb.occupancy(), 1, "entry still parked");
        assert_eq!(wb.try_drain(1, |_| false, &mut d), Some(0x1000));
        assert!(!d);
    }

    #[test]
    #[should_panic(expected = "WB overflow")]
    fn overflow_panics() {
        let mut wb = WriteBuffer::new(1, 1);
        wb.push(0);
        wb.push(64);
    }

    #[test]
    fn empty_drain_is_none() {
        let mut wb = WriteBuffer::new(1, 1);
        let mut d = false;
        assert_eq!(wb.try_drain(0, |_| false, &mut d), None);
        assert!(!d);
    }
}
