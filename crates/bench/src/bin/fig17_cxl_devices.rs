//! Figure 17: cWSP slowdown on the four CXL devices of Table I (paper: ≈ 4%
//! average; slightly *higher* overhead on faster devices because the baseline
//! benefits more from the speedup).

use cwsp_bench::{measure_all, print_results, slowdown};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::{MainMemory, SimConfig, CXL_DEVICES};
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig17_cxl_devices", run);
}

fn run() {
    let apps = cwsp_workloads::memory_intensive();
    for dev in CXL_DEVICES {
        let cfg = SimConfig {
            main_memory: MainMemory::Cxl(dev),
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        print_results(
            &format!("Fig 17 [{}]: cWSP slowdown", dev.name),
            "x",
            &results,
        );
    }
}
