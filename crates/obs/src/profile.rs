//! Flat cycle-attribution profiles.
//!
//! The simulator attributes every core-cycle to a *site* — a function,
//! optionally narrowed to a static region — and a *cause* (`exec`, or a
//! stall cause like `stall_pb`). This module holds the aggregated result
//! and renders it as the classic flat-profile views: top-N sites by total
//! cycles, and top-N sites per stall cause.
//!
//! Synthetic sites (function names wrapped in angle brackets, e.g.
//! `<halted>`, `<drain>`) account for cycles no program code is
//! responsible for; they are listed but excluded from the coverage
//! numerator, so `coverage()` reports the fraction of cycles attributed to
//! real functions/regions + causes.

use std::fmt::Write as _;

/// One aggregated (site, cause) row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Function name, or a `<synthetic>` site.
    pub func: String,
    /// Static region id within the function, if the cycle was inside one.
    pub region: Option<u64>,
    /// Attribution cause: `exec`, `stall_pb`, `stall_rbt`, ...
    pub cause: String,
    /// Cycles attributed to this row.
    pub cycles: u64,
}

impl ProfileRow {
    /// Whether this row is a synthetic (non-program) site.
    pub fn is_synthetic(&self) -> bool {
        self.func.starts_with('<')
    }

    /// `func#rN` when the row is region-scoped, bare `func` otherwise.
    pub fn site_label(&self) -> String {
        match self.region {
            Some(r) => format!("{}#r{}", self.func, r),
            None => self.func.clone(),
        }
    }
}

/// A complete flat profile for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatProfile {
    /// Total simulated core-cycles in the run (the denominator).
    pub total_cycles: u64,
    /// Aggregated rows, in no particular order until rendered.
    pub rows: Vec<ProfileRow>,
}

impl FlatProfile {
    /// An empty profile over `total_cycles` core-cycles.
    pub fn new(total_cycles: u64) -> Self {
        FlatProfile {
            total_cycles,
            rows: Vec::new(),
        }
    }

    /// Add cycles to a (site, cause) row, merging with an existing row.
    pub fn add(&mut self, func: &str, region: Option<u64>, cause: &str, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if let Some(row) = self
            .rows
            .iter_mut()
            .find(|r| r.func == func && r.region == region && r.cause == cause)
        {
            row.cycles += cycles;
        } else {
            self.rows.push(ProfileRow {
                func: func.to_string(),
                region,
                cause: cause.to_string(),
                cycles,
            });
        }
    }

    /// Sum of all attributed cycles (every row, synthetic included).
    pub fn accounted_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Cycles attributed to real program sites (synthetics excluded).
    pub fn attributed_cycles(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| !r.is_synthetic())
            .map(|r| r.cycles)
            .sum()
    }

    /// Fraction of total cycles attributed to real program sites, in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_cycles == 0 {
            return 1.0;
        }
        self.attributed_cycles() as f64 / self.total_cycles as f64
    }

    /// Rows sorted by descending cycles (ties broken by site name for
    /// deterministic output).
    pub fn sorted_rows(&self) -> Vec<&ProfileRow> {
        let mut rows: Vec<&ProfileRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then_with(|| a.func.cmp(&b.func))
                .then_with(|| a.region.cmp(&b.region))
                .then_with(|| a.cause.cmp(&b.cause))
        });
        rows
    }

    /// Top `n` rows for one cause, by descending cycles.
    pub fn top_by_cause(&self, cause: &str, n: usize) -> Vec<&ProfileRow> {
        let mut rows: Vec<&ProfileRow> = self.rows.iter().filter(|r| r.cause == cause).collect();
        rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.func.cmp(&b.func)));
        rows.truncate(n);
        rows
    }

    /// Total cycles per cause, sorted by descending cycles.
    pub fn by_cause(&self) -> Vec<(String, u64)> {
        let mut totals: Vec<(String, u64)> = Vec::new();
        for r in &self.rows {
            match totals.iter_mut().find(|(c, _)| *c == r.cause) {
                Some((_, n)) => *n += r.cycles,
                None => totals.push((r.cause.clone(), r.cycles)),
            }
        }
        totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        totals
    }

    /// Causes present in the profile that look like stall causes.
    fn stall_causes(&self) -> Vec<String> {
        self.by_cause()
            .into_iter()
            .map(|(c, _)| c)
            .filter(|c| c.starts_with("stall_"))
            .collect()
    }

    /// Render the human-readable report: a header with totals and coverage,
    /// a flat top-`n` table, and per-stall-cause top tables.
    pub fn render_text(&self, title: &str, n: usize) -> String {
        let mut out = String::new();
        let pct = |c: u64| {
            if self.total_cycles == 0 {
                0.0
            } else {
                100.0 * c as f64 / self.total_cycles as f64
            }
        };
        let _ = writeln!(out, "cycle-attribution profile: {title}");
        let _ = writeln!(
            out,
            "total core-cycles {}  attributed {} ({:.1}%)",
            self.total_cycles,
            self.attributed_cycles(),
            100.0 * self.coverage()
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "cycles by cause:");
        for (cause, cycles) in self.by_cause() {
            let _ = writeln!(out, "  {cause:<14} {cycles:>12}  {:>5.1}%", pct(cycles));
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "top {n} sites by cycles:");
        let _ = writeln!(out, "        CYCLES      %  CAUSE          SITE");
        for row in self.sorted_rows().into_iter().take(n) {
            let _ = writeln!(
                out,
                "  {:>12} {:>5.1}%  {:<14} {}",
                row.cycles,
                pct(row.cycles),
                row.cause,
                row.site_label()
            );
        }
        for cause in self.stall_causes() {
            let top = self.top_by_cause(&cause, n);
            if top.is_empty() {
                continue;
            }
            let _ = writeln!(out);
            let _ = writeln!(out, "top {n} sites by {cause}:");
            for row in top {
                let _ = writeln!(
                    out,
                    "  {:>12} {:>5.1}%  {}",
                    row.cycles,
                    pct(row.cycles),
                    row.site_label()
                );
            }
        }
        out
    }

    /// Serialize the profile as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"total_cycles\": {},", self.total_cycles);
        let _ = writeln!(
            out,
            "  \"attributed_cycles\": {},",
            self.attributed_cycles()
        );
        out.push_str("  \"coverage\": ");
        crate::json_f64(&mut out, self.coverage());
        out.push_str(",\n  \"by_cause\": {");
        for (i, (cause, cycles)) in self.by_cause().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            crate::json_escape(&mut out, cause);
            let _ = write!(out, ": {cycles}");
        }
        out.push_str("},\n  \"rows\": [\n");
        let rows = self.sorted_rows();
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    {\"func\": ");
            crate::json_escape(&mut out, &row.func);
            out.push_str(", \"region\": ");
            match row.region {
                Some(r) => {
                    let _ = write!(out, "{r}");
                }
                None => out.push_str("null"),
            }
            out.push_str(", \"cause\": ");
            crate::json_escape(&mut out, &row.cause);
            let _ = write!(out, ", \"cycles\": {}}}", row.cycles);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlatProfile {
        let mut p = FlatProfile::new(100);
        p.add("main", Some(0), "exec", 40);
        p.add("main", Some(0), "stall_pb", 20);
        p.add("helper", None, "exec", 25);
        p.add("<halted>", None, "halted", 15);
        p
    }

    #[test]
    fn add_merges_rows_and_skips_zero() {
        let mut p = FlatProfile::new(10);
        p.add("f", None, "exec", 3);
        p.add("f", None, "exec", 4);
        p.add("f", None, "exec", 0);
        assert_eq!(p.rows.len(), 1);
        assert_eq!(p.rows[0].cycles, 7);
    }

    #[test]
    fn coverage_excludes_synthetic_sites() {
        let p = sample();
        assert_eq!(p.accounted_cycles(), 100);
        assert_eq!(p.attributed_cycles(), 85);
        assert!((p.coverage() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn sorted_and_filtered_views() {
        let p = sample();
        let rows = p.sorted_rows();
        assert_eq!(rows[0].func, "main");
        assert_eq!(rows[0].cycles, 40);
        let stalls = p.top_by_cause("stall_pb", 5);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cycles, 20);
        let by_cause = p.by_cause();
        assert_eq!(by_cause[0], ("exec".to_string(), 65));
    }

    #[test]
    fn text_report_mentions_coverage_and_causes() {
        let txt = sample().render_text("tatp/cwsp", 10);
        assert!(txt.contains("cycle-attribution profile: tatp/cwsp"));
        assert!(txt.contains("attributed 85 (85.0%)"));
        assert!(txt.contains("stall_pb"));
        assert!(txt.contains("main#r0"));
    }

    #[test]
    fn json_report_is_balanced_and_typed() {
        let j = sample().to_json();
        assert!(j.contains("\"total_cycles\": 100"));
        assert!(j.contains("\"region\": null"));
        assert!(j.contains("\"region\": 0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
