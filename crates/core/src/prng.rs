//! A small, self-contained PRNG for deterministic program generation.
//!
//! The repository must build with zero external crates (offline CI, vendored
//! containers), so [`genprog`](crate::genprog) cannot depend on `rand`. This
//! module provides the three primitives it needs — uniform integers in a
//! range, booleans with a probability, and seeded determinism — on top of
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), whose 64-bit output passes
//! BigCrush and whose whole state is one word.
//!
//! Not cryptographic; not for statistics. For sweeping structured program
//! shapes it is exactly as good as `StdRng` was, and the sequence is stable
//! across platforms and Rust versions (unlike `StdRng`, which documents no
//! such guarantee).

/// SplitMix64: one `u64` of state, one multiply-xor-shift chain per draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds yield equal sequences forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)` via Lemire's multiply-shift reduction
    /// (debiased by rejection).
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Rejection zone: the lowest `2^64 mod span` multiples are biased.
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_incl_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        self.range_u64(lo, hi + 1)
    }

    /// Uniform index in `[0, len)` — the `choose`-an-element helper.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.range_u64(0, len as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        // 53 mantissa bits of the draw give a uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_divergence() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0 from the published SplitMix64 reference.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.range_u64(0, 8);
            assert!(v < 8);
            seen[v as usize] = true;
            let w = r.range_incl_u64(1, 3);
            assert!((1..=3).contains(&w));
            let i = r.index(5);
            assert!(i < 5);
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn chance_respects_probability_roughly() {
        let mut r = SplitMix64::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.chance(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).range_u64(3, 3);
    }
}
