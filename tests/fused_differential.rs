//! Fused-execution differential suite: superblock-fused interpretation vs.
//! the reference interpreter, in lockstep, over generated programs.
//!
//! The fusion pass (`cwsp_ir::decoded`) groups straight-line runs into
//! superblocks and the interpreter dispatches them as bursts
//! (`Interp::step_run` / `Interp::step_simple_run`). This suite is the
//! safety net for that fast path:
//!
//! * **Lockstep sweep** — ≥200 generated modules (raw and compiled) run
//!   fused against [`RefInterp`], with *randomized burst budgets* so bursts
//!   are interrupted at arbitrary mid-superblock points and resumed; final
//!   memories, outputs, step counts, return values, and halt states must
//!   agree exactly.
//! * **Op-count exactness** — the fused path must report per-opcode counts
//!   byte-identical to pure `step_into` dispatch (the accounting the
//!   simulator's `op_mix` stat is built from).
//! * **Crash/resume** — compiled modules are cut at *every* region boundary
//!   and resumed fused-vs-reference from the persisted image.
//!
//! Two tiers share the properties (the `tests/proptest_crash.rs` pattern):
//! the offline tier always compiles; the proptest tier needs
//! `--features proptest` plus re-adding `proptest = "1"` (see README).

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::core::genprog::{generate, ProgramSpec};
use cwsp::core::prng::SplitMix64;
use cwsp::ir::interp::{Interp, InterpError};
use cwsp::ir::memory::Memory;
use cwsp::ir::module::Module;
use cwsp::ir::reference::RefInterp;
use cwsp::ir::types::Word;

const MAX_STEPS: u64 = 1_000_000;

fn sample_spec(r: &mut SplitMix64) -> ProgramSpec {
    ProgramSpec {
        globals: r.range_u64(1, 4) as usize,
        global_words: r.range_u64(4, 32),
        segments: r.range_u64(3, 12) as usize,
        max_trip: r.range_u64(2, 8),
        calls: r.chance(0.5),
    }
}

/// Drive `fused` with randomly sized burst budgets (interrupting superblocks
/// mid-run) and `refi` step-by-step, asserting the two converge on identical
/// architectural state. Returns steps executed.
fn fused_vs_ref(
    fused: &mut Interp<'_>,
    refi: &mut RefInterp<'_>,
    mem_f: &mut Memory,
    mem_r: &mut Memory,
    rng: &mut SplitMix64,
    label: &str,
) -> u64 {
    let mut out_f: Vec<Word> = Vec::new();
    let mut out_r: Vec<Word> = Vec::new();
    loop {
        if fused.is_halted() || fused.steps() >= MAX_STEPS {
            break;
        }
        let before = fused.steps();
        // 1..=16 instructions per burst: small budgets cut ALU runs and
        // load/op/store triples at every interior offset.
        let budget = rng.range_u64(1, 17);
        let mut ferr: Option<InterpError> = fused.step_simple_run(mem_f, budget, &mut out_f).err();
        if ferr.is_none() && fused.steps() == before && !fused.is_halted() {
            // Burst made no progress: the head is a call/ret/halt (or
            // another op the burst loop refuses) — take one plain step.
            match fused.step(mem_f) {
                Ok(e) => {
                    if let Some(w) = e.out {
                        out_f.push(w);
                    }
                }
                Err(e) => ferr = Some(e),
            }
        }
        // Both dispatchers count a trapping instruction before raising, so
        // `advanced` covers the reference replay in the trap case too.
        let advanced = fused.steps() - before;
        let mut rerr: Option<InterpError> = None;
        for _ in 0..advanced {
            match refi.step(mem_r) {
                Ok(e) => {
                    if let Some(w) = e.out {
                        out_r.push(w);
                    }
                }
                Err(e) => {
                    rerr = Some(e);
                    break;
                }
            }
        }
        if ferr.is_some() || rerr.is_some() {
            assert_eq!(ferr, rerr, "{label}: trap divergence");
            assert_eq!(out_f, out_r, "{label}: outputs at trap");
            return fused.steps();
        }
        assert!(
            advanced > 0 || fused.is_halted(),
            "{label}: no progress without halt"
        );
    }
    assert_eq!(fused.is_halted(), refi.is_halted(), "{label}: halt state");
    assert_eq!(fused.steps(), refi.steps(), "{label}: step counts");
    assert_eq!(
        fused.return_value(),
        refi.return_value(),
        "{label}: return value"
    );
    assert_eq!(out_f, out_r, "{label}: output streams");
    assert_eq!(mem_f, mem_r, "{label}: final memories");
    fused.steps()
}

fn assert_fused_lockstep(module: &Module, rng: &mut SplitMix64, label: &str) -> u64 {
    let mut mem_f = Memory::new();
    let mut mem_r = Memory::new();
    let mut fused =
        Interp::new(module, 0, &mut mem_f).unwrap_or_else(|e| panic!("{label}: fused init: {e}"));
    let mut refi = RefInterp::new(module, 0, &mut mem_r)
        .unwrap_or_else(|e| panic!("{label}: reference init: {e}"));
    fused_vs_ref(&mut fused, &mut refi, &mut mem_f, &mut mem_r, rng, label)
}

/// Fused bursts vs. pure `step_into` dispatch on a second `Interp`: the
/// per-opcode counters (the source of the simulator's `op_mix`) must be
/// byte-identical, not merely summing to the same total.
fn assert_opcounts_exact(module: &Module, rng: &mut SplitMix64, label: &str) {
    let mut mem_f = Memory::new();
    let mut mem_p = Memory::new();
    let mut fused =
        Interp::new(module, 0, &mut mem_f).unwrap_or_else(|e| panic!("{label}: fused init: {e}"));
    let mut plain =
        Interp::new(module, 0, &mut mem_p).unwrap_or_else(|e| panic!("{label}: plain init: {e}"));
    let mut out_f: Vec<Word> = Vec::new();
    while !fused.is_halted() && fused.steps() < MAX_STEPS {
        let before = fused.steps();
        let budget = rng.range_u64(1, 33);
        if fused
            .step_simple_run(&mut mem_f, budget, &mut out_f)
            .is_err()
        {
            break;
        }
        if fused.steps() == before && !fused.is_halted() && fused.step(&mut mem_f).is_err() {
            break;
        }
    }
    let mut out_p: Vec<Word> = Vec::new();
    while !plain.is_halted() && plain.steps() < fused.steps() {
        match plain.step(&mut mem_p) {
            Ok(e) => {
                if let Some(w) = e.out {
                    out_p.push(w);
                }
            }
            Err(_) => break,
        }
    }
    assert_eq!(fused.steps(), plain.steps(), "{label}: step counts");
    assert_eq!(
        fused.op_counts(),
        plain.op_counts(),
        "{label}: per-opcode counts"
    );
    assert_eq!(out_f, out_p, "{label}: outputs");
    assert_eq!(mem_f, mem_p, "{label}: memories");
}

/// Cut the run at every region boundary the module produces (capped) and
/// resume fused-vs-reference from the persisted image.
fn assert_resume_at_every_boundary(module: &Module, rng: &mut SplitMix64, label: &str) {
    // First pass: record every boundary's resume point + memory snapshot.
    let mut mem = Memory::new();
    let Ok(mut i) = Interp::new(module, 0, &mut mem) else {
        return;
    };
    let mut cuts = Vec::new();
    let mut steps = 0;
    while !i.is_halted() && steps < MAX_STEPS && cuts.len() < 32 {
        let Ok(eff) = i.step(&mut mem) else { return };
        steps += 1;
        if let Some(b) = eff.boundary {
            cuts.push((b.resume, mem.clone()));
        }
    }
    for (nth, (rp, snap)) in cuts.into_iter().enumerate() {
        let mut mem_f = snap.clone();
        let mut mem_r = snap;
        let fused = Interp::resume(module, 0, &mem_f, rp);
        let refi = RefInterp::resume(module, 0, &mem_r, rp);
        let (Ok(mut fused), Ok(mut refi)) = (fused, refi) else {
            panic!("{label}: boundary {nth}: resume constructibility differs");
        };
        fused_vs_ref(
            &mut fused,
            &mut refi,
            &mut mem_f,
            &mut mem_r,
            rng,
            &format!("{label}: boundary {nth}"),
        );
    }
}

#[test]
fn fused_execution_matches_reference_over_200_modules() {
    let mut r = SplitMix64::seed_from_u64(0xF05E_D1FF);
    let mut nontrivial = 0u32;
    for case in 0..200 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 1_000_000);
        let module = generate(&spec, seed);
        // Half the sweep runs the cWSP-compiled module, so boundaries,
        // checkpoints, and pruned frames flow through the burst dispatcher.
        let module = if case % 2 == 1 {
            let pruning = r.chance(0.5);
            CwspCompiler::new(CompileOptions {
                pruning,
                ..Default::default()
            })
            .compile(&module)
            .module
        } else {
            module
        };
        let steps = assert_fused_lockstep(&module, &mut r, &format!("case {case} seed {seed}"));
        if steps > 0 {
            nontrivial += 1;
        }
    }
    assert!(nontrivial >= 150, "sweep degenerated: {nontrivial}/200 ran");
}

#[test]
fn fused_op_counts_match_unfused_dispatch() {
    let mut r = SplitMix64::seed_from_u64(0x0C0_0137);
    for case in 0..24 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 1_000_000);
        let module = generate(&spec, seed);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&module);
        assert_opcounts_exact(&module, &mut r, &format!("case {case} raw"));
        assert_opcounts_exact(&compiled.module, &mut r, &format!("case {case} compiled"));
    }
}

#[test]
fn fused_resume_matches_reference_at_every_boundary() {
    let mut r = SplitMix64::seed_from_u64(0x0B0C_D2E5);
    for case in 0..12 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 1_000_000);
        let module = generate(&spec, seed);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&module);
        assert_resume_at_every_boundary(&compiled.module, &mut r, &format!("case {case}"));
    }
}

#[test]
fn single_step_bursts_match_reference() {
    // Budget 1 interrupts after every instruction — the extreme
    // mid-superblock preemption schedule.
    let mut r = SplitMix64::seed_from_u64(0x51_0613);
    for case in 0..8 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 1_000_000);
        let module = generate(&spec, seed);
        let mut mem_f = Memory::new();
        let mut mem_r = Memory::new();
        let mut fused = Interp::new(&module, 0, &mut mem_f).expect("fused init");
        let mut refi = RefInterp::new(&module, 0, &mut mem_r).expect("ref init");
        let mut out_f: Vec<Word> = Vec::new();
        while !fused.is_halted() && fused.steps() < MAX_STEPS {
            let before = fused.steps();
            if fused.step_simple_run(&mut mem_f, 1, &mut out_f).is_err() {
                break;
            }
            if fused.steps() == before && !fused.is_halted() {
                if let Ok(e) = fused.step(&mut mem_f) {
                    if let Some(w) = e.out {
                        out_f.push(w);
                    }
                } else {
                    break;
                }
            }
        }
        let mut out_r: Vec<Word> = Vec::new();
        while !refi.is_halted() && refi.steps() < fused.steps() {
            match refi.step(&mut mem_r) {
                Ok(e) => {
                    if let Some(w) = e.out {
                        out_r.push(w);
                    }
                }
                Err(_) => break,
            }
        }
        assert_eq!(fused.steps(), refi.steps(), "case {case}: steps");
        assert_eq!(out_f, out_r, "case {case}: outputs");
        assert_eq!(mem_f, mem_r, "case {case}: memories");
    }
}

#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use proptest::prelude::*;

    fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
        (1usize..4, 4u64..32, 3usize..12, 2u64..8, any::<bool>()).prop_map(
            |(globals, words, segments, trip, calls)| ProgramSpec {
                globals,
                global_words: words,
                segments,
                max_trip: trip,
                calls,
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn random_fused_runs_match_reference(
            spec in spec_strategy(),
            seed in 0u64..1_000_000,
            rng_seed in any::<u64>(),
            compile in any::<bool>(),
        ) {
            let module = generate(&spec, seed);
            let module = if compile {
                CwspCompiler::new(CompileOptions::default()).compile(&module).module
            } else {
                module
            };
            let mut r = SplitMix64::seed_from_u64(rng_seed);
            assert_fused_lockstep(&module, &mut r, &format!("seed {seed}"));
        }

        #[test]
        fn random_fused_op_counts_are_exact(
            spec in spec_strategy(),
            seed in 0u64..1_000_000,
            rng_seed in any::<u64>(),
        ) {
            let module = generate(&spec, seed);
            let mut r = SplitMix64::seed_from_u64(rng_seed);
            assert_opcounts_exact(&module, &mut r, &format!("seed {seed}"));
        }
    }
}
