//! Bounded event tracing for the persist machinery.
//!
//! Debugging crash-consistency issues requires seeing the interleaving of
//! region lifecycle events, persist traffic, and stalls around the failure
//! point. [`Trace`] is a fixed-capacity ring of [`Event`]s the machine can be
//! asked to record; the newest events — the ones leading up to a crash — are
//! always retained.
//!
//! Two consumers read the ring: [`Trace::post_mortem`] renders the greppable
//! text tail (with an explicit truncation banner when the ring dropped
//! events), and [`Trace::to_chrome`] converts the whole ring into Chrome
//! trace-event JSON (cores and memory controllers as named tracks,
//! region/stall lifetimes as complete spans) for `chrome://tracing` or
//! Perfetto.

use cwsp_ir::types::{DynRegionId, Word};
use cwsp_obs::chrome::{Arg, ChromeTrace};
use std::collections::VecDeque;
use std::fmt;

/// Why a core stalled (mirrors the `stall_*` counters in
/// [`crate::stats::SimStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Persist buffer full.
    Pb,
    /// Region boundary table full (or boundary drain without MC speculation).
    Rbt,
    /// Write buffer full.
    Wb,
    /// Draining at a synchronization point.
    Sync,
    /// Load delayed by a pending WPQ entry.
    Wpq,
    /// Scheme-specific persistence stall (Capri redo buffer, ReplayCache
    /// synchronous persist).
    Scheme,
}

impl StallKind {
    /// Short label ("pb", "rbt", ...) used in text output and profiles.
    pub fn as_str(self) -> &'static str {
        match self {
            StallKind::Pb => "pb",
            StallKind::Rbt => "rbt",
            StallKind::Wb => "wb",
            StallKind::Sync => "sync",
            StallKind::Wpq => "wpq",
            StallKind::Scheme => "scheme",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One traced machine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A dynamic region was opened on `core`.
    RegionOpen {
        cycle: u64,
        core: usize,
        region: DynRegionId,
    },
    /// A region fully persisted and retired from the RBT head.
    RegionRetire {
        cycle: u64,
        core: usize,
        region: DynRegionId,
    },
    /// A store entered the persist buffer.
    PersistIssue {
        cycle: u64,
        core: usize,
        region: DynRegionId,
        addr: Word,
    },
    /// A store reached a WPQ (and became persistent).
    PersistArrive {
        cycle: u64,
        mc: usize,
        region: DynRegionId,
        addr: Word,
    },
    /// An undo-log record was appended at an MC.
    UndoLogged {
        cycle: u64,
        mc: usize,
        region: DynRegionId,
        addr: Word,
    },
    /// A dirty line entered the write buffer.
    WbEnqueue { cycle: u64, core: usize, line: Word },
    /// A completed stall span: the core stalled for `cycles` consecutive
    /// cycles starting at `cycle`, while `region` (the oldest in-flight
    /// dynamic region, when one exists) was draining. Recorded when the
    /// span *ends*, stamped with its start cycle.
    Stall {
        cycle: u64,
        core: usize,
        kind: StallKind,
        region: Option<DynRegionId>,
        cycles: u64,
    },
    /// Power failed.
    PowerFailure { cycle: u64 },
    /// Recovery began on the crash image (`reverted` undo-log records were
    /// reversed in §VII step 1). `cycle` continues the crashed run's clock.
    RecoveryStart { cycle: u64, reverted: u64 },
    /// Recovery replayed `steps` instructions on `core` (§VII step 2).
    RecoveryReplay { cycle: u64, core: usize, steps: u64 },
}

impl Event {
    /// The cycle the event occurred at (start cycle for stall spans).
    pub fn cycle(&self) -> u64 {
        match self {
            Event::RegionOpen { cycle, .. }
            | Event::RegionRetire { cycle, .. }
            | Event::PersistIssue { cycle, .. }
            | Event::PersistArrive { cycle, .. }
            | Event::UndoLogged { cycle, .. }
            | Event::WbEnqueue { cycle, .. }
            | Event::Stall { cycle, .. }
            | Event::PowerFailure { cycle }
            | Event::RecoveryStart { cycle, .. }
            | Event::RecoveryReplay { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::RegionOpen {
                cycle,
                core,
                region,
            } => {
                write!(f, "[{cycle:>8}] core{core} open   {region}")
            }
            Event::RegionRetire {
                cycle,
                core,
                region,
            } => {
                write!(f, "[{cycle:>8}] core{core} retire {region}")
            }
            Event::PersistIssue {
                cycle,
                core,
                region,
                addr,
            } => {
                write!(f, "[{cycle:>8}] core{core} issue  {region} @{addr:#x}")
            }
            Event::PersistArrive {
                cycle,
                mc,
                region,
                addr,
            } => {
                write!(f, "[{cycle:>8}] mc{mc}   arrive {region} @{addr:#x}")
            }
            Event::UndoLogged {
                cycle,
                mc,
                region,
                addr,
            } => {
                write!(f, "[{cycle:>8}] mc{mc}   undo   {region} @{addr:#x}")
            }
            Event::WbEnqueue { cycle, core, line } => {
                write!(f, "[{cycle:>8}] core{core} wbenq  @{line:#x}")
            }
            Event::Stall {
                cycle,
                core,
                kind,
                region,
                cycles,
            } => {
                write!(f, "[{cycle:>8}] core{core} stall  ({kind})")?;
                if let Some(r) = region {
                    write!(f, " {r}")?;
                }
                write!(f, " x{cycles}")
            }
            Event::PowerFailure { cycle } => write!(f, "[{cycle:>8}] POWER FAILURE"),
            Event::RecoveryStart { cycle, reverted } => {
                write!(f, "[{cycle:>8}] RECOVERY start ({reverted} reverted)")
            }
            Event::RecoveryReplay { cycle, core, steps } => {
                write!(f, "[{cycle:>8}] core{core} replay {steps} steps")
            }
        }
    }
}

/// A fixed-capacity ring of machine events (newest kept).
#[derive(Debug, Clone)]
pub struct Trace {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Trace {
            cap: cap.max(1),
            events: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// Record an event (evicting the oldest when full).
    pub fn record(&mut self, e: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// Events in chronological order.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The last `n` events formatted one per line (crash post-mortems).
    pub fn tail(&self, n: usize) -> String {
        let skip = self.events.len().saturating_sub(n);
        self.events
            .iter()
            .skip(skip)
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The crash post-mortem: a header stating retention (and, crucially,
    /// how many events the ring silently evicted) followed by the last `n`
    /// events. Truncated traces are visibly truncated.
    pub fn post_mortem(&self, n: usize) -> String {
        let mut out = format!(
            "trace: {} events retained (ring capacity {})",
            self.len(),
            self.cap
        );
        if self.dropped > 0 {
            out.push_str(&format!(
                " — TRUNCATED, {} older events dropped",
                self.dropped
            ));
        }
        out.push('\n');
        out.push_str(&self.tail(n));
        out
    }

    /// Convert the ring into a Chrome trace: cores and MCs become named
    /// tracks, region lifetimes and stall spans become complete (`ph:"X"`)
    /// events, persist traffic becomes instants. `cores`/`mcs` size the
    /// track metadata.
    pub fn to_chrome(&self, cores: usize, mcs: usize) -> ChromeTrace {
        /// Track id for memory controller `m` (cores occupy tids from 0).
        const MC_TID: u64 = 1000;
        let mut t = ChromeTrace::new();
        t.process_name("cwsp-sim");
        for c in 0..cores {
            t.thread_name(c as u64, &format!("core {c}"));
        }
        for m in 0..mcs {
            t.thread_name(MC_TID + m as u64, &format!("mc {m}"));
        }
        let first_cycle = self.events.front().map(|e| e.cycle()).unwrap_or(0);
        let last_cycle = self.events.iter().map(|e| e.cycle()).max().unwrap_or(0);
        // (core, region) -> open cycle, for pairing opens with retires.
        let mut open: Vec<(usize, DynRegionId, u64)> = Vec::new();
        for e in self.events() {
            match *e {
                Event::RegionOpen {
                    cycle,
                    core,
                    region,
                } => open.push((core, region, cycle)),
                Event::RegionRetire {
                    cycle,
                    core,
                    region,
                } => {
                    // A retire without a matched open was opened before the
                    // ring's window; start it at the window edge.
                    let start = match open.iter().position(|&(c, r, _)| c == core && r == region) {
                        Some(i) => open.swap_remove(i).2,
                        None => first_cycle.min(cycle),
                    };
                    t.complete(
                        core as u64,
                        "region",
                        &region.to_string(),
                        start,
                        cycle.saturating_sub(start),
                        vec![],
                    );
                }
                Event::PersistIssue {
                    cycle,
                    core,
                    region,
                    addr,
                } => t.instant(
                    core as u64,
                    "persist",
                    "pb-issue",
                    cycle,
                    vec![
                        ("region".into(), Arg::Str(region.to_string())),
                        ("addr".into(), Arg::Int(addr)),
                    ],
                ),
                Event::PersistArrive {
                    cycle,
                    mc,
                    region,
                    addr,
                } => t.instant(
                    MC_TID + mc as u64,
                    "persist",
                    "wpq-arrive",
                    cycle,
                    vec![
                        ("region".into(), Arg::Str(region.to_string())),
                        ("addr".into(), Arg::Int(addr)),
                    ],
                ),
                Event::UndoLogged {
                    cycle,
                    mc,
                    region,
                    addr,
                } => t.instant(
                    MC_TID + mc as u64,
                    "log",
                    "undo-append",
                    cycle,
                    vec![
                        ("region".into(), Arg::Str(region.to_string())),
                        ("addr".into(), Arg::Int(addr)),
                    ],
                ),
                Event::WbEnqueue { cycle, core, line } => t.instant(
                    core as u64,
                    "wb",
                    "wb-enqueue",
                    cycle,
                    vec![("line".into(), Arg::Int(line))],
                ),
                Event::Stall {
                    cycle,
                    core,
                    kind,
                    region,
                    cycles,
                } => {
                    let mut args = Vec::new();
                    if let Some(r) = region {
                        args.push(("region".into(), Arg::Str(r.to_string())));
                    }
                    t.complete(
                        core as u64,
                        "stall",
                        &format!("stall:{kind}"),
                        cycle,
                        cycles,
                        args,
                    );
                }
                Event::PowerFailure { cycle } => {
                    t.instant(0, "power", "POWER FAILURE", cycle, vec![])
                }
                Event::RecoveryStart { cycle, reverted } => t.instant(
                    0,
                    "recovery",
                    "recovery-start",
                    cycle,
                    vec![("reverted".into(), Arg::Int(reverted))],
                ),
                Event::RecoveryReplay { cycle, core, steps } => t.instant(
                    core as u64,
                    "recovery",
                    "recovery-replay",
                    cycle,
                    vec![("steps".into(), Arg::Int(steps))],
                ),
            }
        }
        // Regions still in flight at the end of the window: truncated spans.
        for (core, region, start) in open {
            t.complete(
                core as u64,
                "region",
                &region.to_string(),
                start,
                last_cycle.saturating_sub(start),
                vec![("truncated".into(), Arg::Bool(true))],
            );
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest() {
        let mut t = Trace::new(3);
        for c in 0..5 {
            t.record(Event::PowerFailure { cycle: c });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn display_formats_are_greppable() {
        let e = Event::PersistArrive {
            cycle: 42,
            mc: 1,
            region: DynRegionId(7),
            addr: 0x1000,
        };
        let s = e.to_string();
        assert!(
            s.contains("mc1") && s.contains("dyn7") && s.contains("0x1000"),
            "{s}"
        );
        let open = Event::RegionOpen {
            cycle: 1,
            core: 0,
            region: DynRegionId(0),
        };
        assert!(open.to_string().contains("open"));
        let stall = Event::Stall {
            cycle: 9,
            core: 2,
            kind: StallKind::Pb,
            region: Some(DynRegionId(3)),
            cycles: 12,
        };
        let s = stall.to_string();
        assert!(
            s.contains("core2") && s.contains("(pb)") && s.contains("dyn3") && s.contains("x12"),
            "{s}"
        );
    }

    #[test]
    fn tail_returns_last_lines() {
        let mut t = Trace::new(10);
        for c in 0..6 {
            t.record(Event::Stall {
                cycle: c,
                core: 0,
                kind: StallKind::Pb,
                region: None,
                cycles: 1,
            });
        }
        let tail = t.tail(2);
        assert_eq!(tail.lines().count(), 2);
        assert!(tail.contains("[       5]"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(4);
        assert!(t.is_empty());
        assert_eq!(t.tail(3), "");
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    fn post_mortem_reports_truncation() {
        let mut t = Trace::new(2);
        assert!(!t.post_mortem(4).contains("TRUNCATED"));
        for c in 0..5 {
            t.record(Event::PowerFailure { cycle: c });
        }
        let pm = t.post_mortem(4);
        assert!(pm.contains("2 events retained (ring capacity 2)"), "{pm}");
        assert!(pm.contains("TRUNCATED, 3 older events dropped"), "{pm}");
        assert!(pm.contains("POWER FAILURE"));
    }

    #[test]
    fn overflow_drop_counts_are_exact_across_many_wraparounds() {
        // dropped() must equal recorded - capacity exactly, no matter how
        // many times the ring wraps — the post-mortem banner quotes it.
        let cap = 7;
        let mut t = Trace::new(cap);
        let recorded = cap as u64 * 13 + 5; // several full wraps + a partial
        for c in 0..recorded {
            t.record(Event::PowerFailure { cycle: c });
        }
        assert_eq!(t.len(), cap);
        assert_eq!(t.dropped(), recorded - cap as u64);
        // The retained window is the exact newest suffix.
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        let expect: Vec<u64> = (recorded - cap as u64..recorded).collect();
        assert_eq!(cycles, expect);
        let pm = t.post_mortem(cap);
        assert!(
            pm.contains(&format!(
                "TRUNCATED, {} older events dropped",
                recorded - cap as u64
            )),
            "{pm}"
        );
    }

    #[test]
    fn stall_region_ids_survive_ring_wraparound() {
        // Stall spans carry the draining region's id; eviction of older
        // events must not corrupt the ids of survivors, and the Chrome
        // export of the wrapped ring must still attribute them.
        let mut t = Trace::new(4);
        for i in 0..20u64 {
            t.record(Event::Stall {
                cycle: i * 10,
                core: (i % 2) as usize,
                kind: if i % 2 == 0 {
                    StallKind::Rbt
                } else {
                    StallKind::Wb
                },
                region: Some(DynRegionId(i)),
                cycles: i + 1,
            });
        }
        assert_eq!(t.dropped(), 16);
        // Survivors are stalls 16..20, each with its own region id intact.
        for (slot, e) in t.events().enumerate() {
            let i = 16 + slot as u64;
            match *e {
                Event::Stall {
                    cycle,
                    region,
                    cycles,
                    ..
                } => {
                    assert_eq!(cycle, i * 10);
                    assert_eq!(region, Some(DynRegionId(i)));
                    assert_eq!(cycles, i + 1);
                }
                ref other => panic!("expected a stall, got {other:?}"),
            }
        }
        // The wrapped ring's Chrome export keeps the attribution too.
        let ct = t.to_chrome(2, 1);
        let spans: Vec<_> = ct.events().iter().filter(|e| e.ph == 'X').collect();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().any(|e| e
            .args
            .iter()
            .any(|(k, v)| k == "region"
                && matches!(v, Arg::Str(s) if s == &DynRegionId(19).to_string()))));
        // And the post-mortem text tail still names the region.
        assert!(t.post_mortem(4).contains(&DynRegionId(19).to_string()));
    }

    #[test]
    fn chrome_export_pairs_regions_and_maps_tracks() {
        let mut t = Trace::new(64);
        t.record(Event::RegionOpen {
            cycle: 10,
            core: 0,
            region: DynRegionId(1),
        });
        t.record(Event::PersistIssue {
            cycle: 12,
            core: 0,
            region: DynRegionId(1),
            addr: 0x40,
        });
        t.record(Event::PersistArrive {
            cycle: 30,
            mc: 1,
            region: DynRegionId(1),
            addr: 0x40,
        });
        t.record(Event::Stall {
            cycle: 31,
            core: 0,
            kind: StallKind::Sync,
            region: Some(DynRegionId(1)),
            cycles: 5,
        });
        t.record(Event::RegionRetire {
            cycle: 40,
            core: 0,
            region: DynRegionId(1),
        });
        t.record(Event::RegionOpen {
            cycle: 41,
            core: 0,
            region: DynRegionId(2),
        });
        let ct = t.to_chrome(1, 2);
        // Two complete spans on the core track: the region and the stall,
        // plus the truncated still-open region.
        assert_eq!(ct.complete_spans_on(0), 3);
        let spans: Vec<_> = ct.events().iter().filter(|e| e.ph == 'X').collect();
        let region = spans.iter().find(|e| e.name == "dyn1").unwrap();
        assert_eq!((region.ts, region.dur), (10, Some(30)));
        let stall = spans.iter().find(|e| e.name == "stall:sync").unwrap();
        assert_eq!((stall.ts, stall.dur), (31, Some(5)));
        // The MC instant landed on the mc track.
        assert!(ct
            .events()
            .iter()
            .any(|e| e.ph == 'i' && e.tid == 1001 && e.name == "wpq-arrive"));
        // A retire with no matched open gets a window-edge span.
        let mut t2 = Trace::new(8);
        t2.record(Event::RegionRetire {
            cycle: 50,
            core: 0,
            region: DynRegionId(9),
        });
        let ct2 = t2.to_chrome(1, 1);
        assert_eq!(ct2.complete_spans_on(0), 1);
    }
}
