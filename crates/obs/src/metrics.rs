//! A named metrics registry: counters, gauges, labelled histograms.
//!
//! Producers register metrics by name (stable, dot-separated paths like
//! `sim.stall.pb` or `engine.memo_hits`) and update them by handle or by
//! name. Consumers snapshot the registry, diff two snapshots to get a
//! per-window delta, and serialize to JSON for `results/` artifacts.
//!
//! Determinism: metrics keep registration order, so serialized output is
//! stable for a fixed program — no hash-map iteration order leaks into
//! artifacts.

use std::fmt;

/// The value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing event count.
    Counter(u64),
    /// Last-write-wins measurement (occupancy, ratio, wall time).
    Gauge(f64),
    /// Labelled buckets (e.g. region-size distribution). Labels are fixed at
    /// registration; counts accumulate.
    Histogram(Vec<(String, u64)>),
}

/// Handle returned by registration; updates through a handle skip the name
/// lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// Why a fallible registry update was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserveError {
    /// The handle refers to a counter or gauge, not a histogram.
    NotHistogram,
    /// The bucket index is past the histogram's registered labels.
    BucketOutOfRange {
        /// Requested bucket index.
        bucket: usize,
        /// Number of buckets the histogram was registered with.
        len: usize,
    },
}

impl fmt::Display for ObserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObserveError::NotHistogram => write!(f, "observe on non-histogram metric"),
            ObserveError::BucketOutOfRange { bucket, len } => {
                write!(f, "bucket {bucket} out of range for {len}-bucket histogram")
            }
        }
    }
}

impl std::error::Error for ObserveError {}

/// An ordered, name-unique collection of metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: Vec<(String, MetricValue)>,
}

/// A point-in-time copy of a registry (used for deltas).
pub type Snapshot = Registry;

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn find(&self, name: &str) -> Option<usize> {
        self.metrics.iter().position(|(n, _)| n == name)
    }

    fn register(&mut self, name: &str, init: MetricValue) -> MetricId {
        match self.find(name) {
            Some(i) => MetricId(i),
            None => {
                self.metrics.push((name.to_string(), init));
                MetricId(self.metrics.len() - 1)
            }
        }
    }

    /// Register a counter (idempotent; an existing metric keeps its value).
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, MetricValue::Counter(0))
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, MetricValue::Gauge(0.0))
    }

    /// Register a histogram with fixed bucket labels.
    pub fn histogram(&mut self, name: &str, labels: &[&str]) -> MetricId {
        self.register(
            name,
            MetricValue::Histogram(labels.iter().map(|l| ((*l).to_string(), 0)).collect()),
        )
    }

    /// Add `n` to a counter by handle.
    ///
    /// # Panics
    /// Panics if the handle does not refer to a counter.
    pub fn add(&mut self, id: MetricId, n: u64) {
        match &mut self.metrics[id.0].1 {
            MetricValue::Counter(c) => *c += n,
            other => panic!("add on non-counter metric: {other:?}"),
        }
    }

    /// Set a gauge by handle.
    ///
    /// # Panics
    /// Panics if the handle does not refer to a gauge.
    pub fn set(&mut self, id: MetricId, v: f64) {
        match &mut self.metrics[id.0].1 {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("set on non-gauge metric: {other:?}"),
        }
    }

    /// Add `n` to histogram bucket `bucket` by handle.
    ///
    /// Unlike [`Registry::add`]/[`Registry::set`], this is fallible: the
    /// bucket index typically comes from runtime data (a measured latency or
    /// region size mapped onto labels), so a mismatch is an input problem,
    /// not a programming error, and callers get an [`ObserveError`] instead
    /// of a panic.
    pub fn observe(&mut self, id: MetricId, bucket: usize, n: u64) -> Result<(), ObserveError> {
        match &mut self.metrics[id.0].1 {
            MetricValue::Histogram(b) => match b.get_mut(bucket) {
                Some(slot) => {
                    slot.1 += n;
                    Ok(())
                }
                None => Err(ObserveError::BucketOutOfRange {
                    bucket,
                    len: b.len(),
                }),
            },
            _ => Err(ObserveError::NotHistogram),
        }
    }

    /// Register-and-add convenience for one-shot publishers.
    pub fn add_counter(&mut self, name: &str, n: u64) {
        let id = self.counter(name);
        self.add(id, n);
    }

    /// Register-and-set convenience for one-shot publishers.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        let id = self.gauge(name);
        self.set(id, v);
    }

    /// Register-and-fill a histogram in one call (labels and counts zipped).
    pub fn set_histogram(&mut self, name: &str, labels: &[&str], counts: &[u64]) {
        assert_eq!(labels.len(), counts.len(), "{name}: label/count mismatch");
        let id = self.histogram(name, labels);
        if let MetricValue::Histogram(b) = &mut self.metrics[id.0].1 {
            for (slot, &n) in b.iter_mut().zip(counts) {
                slot.1 += n;
            }
        }
    }

    /// Look up a metric's current value by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.find(name).map(|i| &self.metrics[i].1)
    }

    /// A counter's value by name (0-returning convenience for reports).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// A gauge's value by name.
    pub fn gauge_value(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(MetricValue::Gauge(g)) => *g,
            _ => 0.0,
        }
    }

    /// Iterate metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> Snapshot {
        self.clone()
    }

    /// The change since `earlier`: counters and histogram buckets subtract
    /// (saturating, so a restarted producer degrades to zeros rather than
    /// wrapping); gauges keep their latest value. Metrics absent from
    /// `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Registry {
        let mut out = Registry::new();
        for (name, v) in &self.metrics {
            let d = match (v, earlier.get(name)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                    MetricValue::Histogram(
                        now.iter()
                            .map(|(l, n)| {
                                let before = then
                                    .iter()
                                    .find(|(tl, _)| tl == l)
                                    .map(|(_, tn)| *tn)
                                    .unwrap_or(0);
                                (l.clone(), n.saturating_sub(before))
                            })
                            .collect(),
                    )
                }
                (v, _) => v.clone(),
            };
            out.metrics.push((name.clone(), d));
        }
        out
    }

    /// Merge `other` into `self`: counters and matching histogram buckets
    /// add, gauges take `other`'s value, unknown metrics append.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.metrics {
            match (self.find(name), v) {
                (Some(i), MetricValue::Counter(n)) => {
                    if let MetricValue::Counter(c) = &mut self.metrics[i].1 {
                        *c += n;
                    }
                }
                (Some(i), MetricValue::Gauge(g)) => {
                    if let MetricValue::Gauge(slot) = &mut self.metrics[i].1 {
                        *slot = *g;
                    }
                }
                (Some(i), MetricValue::Histogram(buckets)) => {
                    if let MetricValue::Histogram(mine) = &mut self.metrics[i].1 {
                        for (l, n) in buckets {
                            if let Some(slot) = mine.iter_mut().find(|(ml, _)| ml == l) {
                                slot.1 += n;
                            }
                        }
                    }
                }
                (None, v) => self.metrics.push((name.clone(), v.clone())),
            }
        }
    }

    /// Serialize as a JSON object in registration order:
    /// `{"name": 3, "gauge": 0.5, "hist": {"1-4": 2, ...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            crate::json_escape(&mut out, name);
            out.push_str(": ");
            match v {
                MetricValue::Counter(n) => {
                    use std::fmt::Write as _;
                    let _ = write!(out, "{n}");
                }
                MetricValue::Gauge(g) => crate::json_f64(&mut out, *g),
                MetricValue::Histogram(buckets) => {
                    out.push('{');
                    for (j, (l, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        crate::json_escape(&mut out, l);
                        use std::fmt::Write as _;
                        let _ = write!(out, ": {n}");
                    }
                    out.push('}');
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Render the registry in the OpenMetrics / Prometheus text exposition
    /// format, so harness metrics are scrapeable by standard tooling.
    ///
    /// Dotted metric names are sanitized to `[a-zA-Z0-9_:]` (dots become
    /// underscores). Counters get the conventional `_total` suffix, gauges
    /// are emitted verbatim, and labelled histograms — whose buckets are
    /// categorical, not cumulative `le` thresholds — are exposed as a
    /// counter family with a `bucket` label. Output ends with the mandatory
    /// `# EOF` terminator.
    pub fn render_openmetrics(&self) -> String {
        use std::fmt::Write as _;
        fn sanitize(name: &str) -> String {
            let mut s: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                s.insert(0, '_');
            }
            s
        }
        fn escape_label(out: &mut String, v: &str) {
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
        }
        let mut out = String::new();
        for (name, v) in &self.metrics {
            let n = sanitize(name);
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {n} counter");
                    let _ = writeln!(out, "{n}_total {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {n} gauge");
                    if g.is_finite() {
                        let _ = writeln!(out, "{n} {g}");
                    } else {
                        let _ = writeln!(out, "{n} 0");
                    }
                }
                MetricValue::Histogram(buckets) => {
                    let _ = writeln!(out, "# TYPE {n} counter");
                    for (label, count) in buckets {
                        let _ = write!(out, "{n}_total{{bucket=\"");
                        escape_label(&mut out, label);
                        let _ = writeln!(out, "\"}} {count}");
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

impl fmt::Display for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.metrics {
            match v {
                MetricValue::Counter(n) => writeln!(f, "{name:<40} {n}")?,
                MetricValue::Gauge(g) => writeln!(f, "{name:<40} {g:.4}")?,
                MetricValue::Histogram(b) => {
                    write!(f, "{name:<40}")?;
                    for (l, n) in b {
                        write!(f, " {l}:{n}")?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_and_update() {
        let mut r = Registry::new();
        let c = r.counter("sim.cycles");
        let g = r.gauge("sim.ipc");
        let h = r.histogram("sim.region_size", &["1-4", "5-8"]);
        r.add(c, 10);
        r.add(c, 5);
        r.set(g, 1.25);
        r.observe(h, 0, 2).unwrap();
        r.observe(h, 1, 1).unwrap();
        assert_eq!(r.counter_value("sim.cycles"), 15);
        assert_eq!(r.gauge_value("sim.ipc"), 1.25);
        assert_eq!(
            r.get("sim.region_size"),
            Some(&MetricValue::Histogram(vec![
                ("1-4".into(), 2),
                ("5-8".into(), 1)
            ]))
        );
    }

    #[test]
    fn registration_is_idempotent_and_keeps_values() {
        let mut r = Registry::new();
        let a = r.counter("x");
        r.add(a, 7);
        let b = r.counter("x");
        assert_eq!(a, b);
        assert_eq!(r.counter_value("x"), 7);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        let mut r = Registry::new();
        let c = r.counter("jobs");
        let g = r.gauge("util");
        let h = r.histogram("lat", &["lo", "hi"]);
        r.add(c, 3);
        r.set(g, 0.5);
        r.observe(h, 0, 2).unwrap();
        let snap = r.snapshot();
        r.add(c, 4);
        r.set(g, 0.9);
        r.observe(h, 1, 5).unwrap();
        let d = r.delta(&snap);
        assert_eq!(d.counter_value("jobs"), 4);
        assert_eq!(d.gauge_value("util"), 0.9);
        assert_eq!(
            d.get("lat"),
            Some(&MetricValue::Histogram(vec![
                ("lo".into(), 0),
                ("hi".into(), 5)
            ]))
        );
    }

    #[test]
    fn merge_adds_counters_and_appends_unknowns() {
        let mut a = Registry::new();
        a.add_counter("n", 1);
        let mut b = Registry::new();
        b.add_counter("n", 2);
        b.set_gauge("g", 3.0);
        a.merge(&b);
        assert_eq!(a.counter_value("n"), 3);
        assert_eq!(a.gauge_value("g"), 3.0);
    }

    #[test]
    fn json_output_is_ordered_and_escaped() {
        let mut r = Registry::new();
        r.add_counter("b.count", 2);
        r.set_gauge("a.gauge", 0.5);
        r.set_histogram("h", &["x\"y"], &[1]);
        let j = r.to_json();
        // Registration order, not alphabetical.
        assert!(j.find("b.count").unwrap() < j.find("a.gauge").unwrap());
        assert!(j.contains("\"x\\\"y\": 1"));
        assert!(j.contains("\"a.gauge\": 0.5"));
    }

    #[test]
    fn observe_rejects_bad_targets_instead_of_panicking() {
        let mut r = Registry::new();
        let c = r.counter("n");
        let h = r.histogram("h", &["a", "b"]);
        assert_eq!(r.observe(c, 0, 1), Err(ObserveError::NotHistogram));
        assert_eq!(
            r.observe(h, 2, 1),
            Err(ObserveError::BucketOutOfRange { bucket: 2, len: 2 })
        );
        // Failed observes leave the registry untouched.
        assert_eq!(r.counter_value("n"), 0);
        assert_eq!(
            r.get("h"),
            Some(&MetricValue::Histogram(vec![
                ("a".into(), 0),
                ("b".into(), 0)
            ]))
        );
        assert!(r.observe(h, 1, 3).is_ok());
    }

    #[test]
    fn openmetrics_exposition_format() {
        let mut r = Registry::new();
        r.add_counter("sim.cycles", 15);
        r.set_gauge("sim.ipc", 1.25);
        r.set_histogram("sim.region_size", &["1-4", "5-8"], &[2, 1]);
        let text = r.render_openmetrics();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# TYPE sim_cycles counter",
                "sim_cycles_total 15",
                "# TYPE sim_ipc gauge",
                "sim_ipc 1.25",
                "# TYPE sim_region_size counter",
                "sim_region_size_total{bucket=\"1-4\"} 2",
                "sim_region_size_total{bucket=\"5-8\"} 1",
                "# EOF",
            ]
        );
        // Exposition must end with the EOF terminator and a newline.
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn openmetrics_sanitizes_names_and_escapes_labels() {
        let mut r = Registry::new();
        r.add_counter("9lives.and-dashes", 1);
        r.set_histogram("h", &["a\"b\\c\nd"], &[4]);
        r.set_gauge("bad", f64::NAN);
        let text = r.render_openmetrics();
        assert!(text.contains("_9lives_and_dashes_total 1"));
        assert!(text.contains("h_total{bucket=\"a\\\"b\\\\c\\nd\"} 4"));
        // Non-finite gauges degrade to 0 rather than emitting NaN.
        assert!(text.contains("\nbad 0\n"));
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        let mut r = Registry::new();
        r.add_counter("n", 1);
        let mut later = Registry::new();
        later.add_counter("n", 5);
        // Diffing the *earlier* registry against the later snapshot.
        let d = r.delta(&later.snapshot());
        assert_eq!(d.counter_value("n"), 0);
    }
}
