//! Hierarchy probes: working-set-controlled variants of the memory-intensive
//! subset, used by the hierarchy-shape experiments (Figs 1 and 18).
//!
//! Those figures measure how much each additional cache level recovers of
//! NVM's latency disadvantage, which requires working sets positioned
//! *between* the capacities of adjacent levels and re-referenced enough to be
//! capturable. The paper gets this for free by fast-forwarding 5 B
//! instructions over full-size inputs; we instead scale the hierarchy down by
//! 2^[`SCALE_SHIFT`] (see `SimConfig::scaled`) and give each app a fixed
//! working set swept three times (one cold pass, two reuse passes).

use crate::kernels::rmw_sweep;
use crate::{app, arena, checksum, Suite, Workload};

/// Cache-capacity scale shift the probes are sized for (hierarchy ÷ 32:
/// L1 2 KB, L2 32 KB, L3 512 KB, L4 4 MB, DRAM cache 128 MB).
pub const SCALE_SHIFT: u32 = 5;

/// `(name, suite, working-set lines)` for the 12 memory-intensive apps. Line
/// counts ×64 B give working sets from 64 KB (L3-capturable) to 8 MB
/// (DRAM-cache-only), spanning every band of the scaled Fig 1 hierarchy.
const PROBES: [(&str, Suite, u64); 12] = [
    ("astar", Suite::Cpu2006, 1 << 15),    // 2 MB
    ("lbm", Suite::Cpu2006, 1 << 15),      // 2 MB
    ("libquan", Suite::Cpu2006, 1 << 13),  // 512 KB
    ("milc", Suite::Cpu2006, 1 << 16),     // 4 MB
    ("lulesh", Suite::MiniApps, 1 << 14),  // 1 MB
    ("xsbench", Suite::MiniApps, 1 << 17), // 8 MB
    ("p", Suite::Whisper, 1 << 12),        // 256 KB
    ("c", Suite::Whisper, 1 << 11),        // 128 KB
    ("rb", Suite::Whisper, 1 << 13),       // 512 KB
    ("sps", Suite::Whisper, 1 << 16),      // 4 MB
    ("tatp", Suite::Whisper, 1 << 10),     // 64 KB
    ("tpcc", Suite::Whisper, 1 << 17),     // 8 MB
];

/// Build the 12 hierarchy probes.
pub fn hierarchy_probes() -> Vec<Workload> {
    PROBES
        .iter()
        .map(|&(name, suite, lines)| {
            let words = lines * 8; // stride 8 → one line per element
            let iters = lines / 4; // UNROLL elements per iteration
            let module = app(name, |m, b, mut bb| {
                let base = arena(m, "ws", words);
                for _pass in 0..3 {
                    bb = rmw_sweep(b, bb, base, words, 8, iters);
                }
                checksum(b, bb, base);
                bb
            });
            Workload {
                name,
                suite,
                module,
                window: u64::MAX,
            }
        })
        .collect()
}

/// Pages (4 KB each) the [`beyond_ram`] probe's arena spans — 8 MB of
/// simulated memory, every page written. The `fig_beyond_ram` demo runs it
/// under `CWSP_MEM_BUDGET` far below this (CI uses 128 pages, a 16× ratio)
/// to prove the tiered store's spill/fault path is semantically invisible.
pub const BEYOND_RAM_PAGES: u64 = 2048;

/// A working set deliberately larger than any reasonable resident budget:
/// stride-4 KB RMW sweeps touch one word in each of [`BEYOND_RAM_PAGES`]
/// pages per pass (maximal paging pressure, zero cache reuse across pages),
/// three passes plus a checksum. Standalone probe — not part of `all()`.
pub fn beyond_ram() -> Workload {
    let words = BEYOND_RAM_PAGES * 512; // 512 words per 4 KB page
    let iters = BEYOND_RAM_PAGES / 4; // UNROLL elements per iteration
    let module = app("beyond_ram", |m, b, mut bb| {
        let base = arena(m, "tiered", words);
        for _pass in 0..3 {
            // Stride 512 words = one element per page → every iteration
            // faults a distinct page once the budget is exceeded.
            bb = rmw_sweep(b, bb, base, words, 512, iters);
        }
        checksum(b, bb, base);
        bb
    });
    Workload {
        name: "beyond_ram",
        suite: Suite::MiniApps,
        module,
        window: u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_build_and_halt() {
        for w in hierarchy_probes() {
            assert!(w.module.validate().is_ok(), "{}", w.name);
        }
        // Run only the smallest to keep the test fast.
        let tatp = hierarchy_probes()
            .into_iter()
            .find(|w| w.name == "tatp")
            .unwrap();
        let out = cwsp_ir::interp::run(&tatp.module, 30_000_000).unwrap();
        assert!(out.steps > 3 * 256 * 10, "three sweeps of 256 iterations");
    }

    #[test]
    fn beyond_ram_touches_every_page() {
        let w = beyond_ram();
        assert!(w.module.validate().is_ok());
        let out = cwsp_ir::interp::run(&w.module, 100_000_000).unwrap();
        assert!(out.steps > 3 * (BEYOND_RAM_PAGES / 4) * 10, "three sweeps");
        // One word written per page → the memory's nonzero footprint must
        // span all BEYOND_RAM_PAGES pages of the arena.
        let pages: std::collections::HashSet<u64> =
            out.memory.iter().map(|(addr, _)| addr >> 12).collect();
        assert!(
            pages.len() as u64 >= BEYOND_RAM_PAGES,
            "{} pages touched",
            pages.len()
        );
    }

    #[test]
    fn working_sets_span_the_scaled_hierarchy() {
        let lines: Vec<u64> = PROBES.iter().map(|p| p.2).collect();
        let bytes: Vec<u64> = lines.iter().map(|l| l * 64).collect();
        // At SCALE_SHIFT=5 the scaled Fig 1 hierarchy is 32 KB L2, 512 KB L3,
        // 4 MB L4, 128 MB DRAM cache — some probe must fall in each band.
        assert!(bytes.iter().any(|&b| b <= 512 << 10), "L3-capturable");
        assert!(
            bytes.iter().any(|&b| b > (512 << 10) && b <= 4 << 20),
            "L4 band"
        );
        assert!(bytes.iter().any(|&b| b > 4 << 20), "DRAM-cache band");
    }

    #[test]
    fn reuse_passes_hit_caches() {
        // The second sweep of the smallest probe must be cache-resident in a
        // scaled 5-level hierarchy: run it and check the L1+shared hit counts
        // dominate cold misses.
        use cwsp_sim::config::SimConfig;
        use cwsp_sim::machine::Machine;
        use cwsp_sim::scheme::Scheme;
        let w = hierarchy_probes()
            .into_iter()
            .find(|w| w.name == "tatp")
            .unwrap();
        let cfg = SimConfig::default().hierarchy_depth(5).scaled(SCALE_SHIFT);
        let mut machine = Machine::new(&w.module, &cfg, Scheme::Baseline);
        let r = machine.run(u64::MAX, None).unwrap();
        let (h, m) = r.stats.dram_cache;
        assert!(h + m > 0, "reaches the DRAM cache");
        assert!(
            r.stats.nvm_reads < 2 * 1024 + 64,
            "reuse passes stay in caches: {} NVM reads",
            r.stats.nvm_reads
        );
    }
}
