//! Print the workload registry: suite, name, behavioural sketch, and static
//! program size. Routed through the harness like every other figure binary
//! so the registry listing shows up in `BENCH_harness.json` (and its row
//! formatting fans out over the engine pool, recording `workers_achieved`).

fn main() {
    cwsp_bench::harness_main("list_workloads", run);
}

fn run() {
    println!("{:<10} {:<10} {:>6}  description", "suite", "app", "insts");
    let apps = cwsp_workloads::all();
    let rows = cwsp_bench::par_map(&apps, |w| {
        format!(
            "{:<10} {:<10} {:>6}  {}",
            w.suite.to_string(),
            w.name,
            w.module.inst_count(),
            w.description()
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nhierarchy probes (Figs 1/18): {} apps",
        cwsp_workloads::probes::hierarchy_probes().len()
    );
}
