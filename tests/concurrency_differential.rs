//! Differential soundness of the static concurrency analyzer.
//!
//! Contract under test: **static-race-clean ⇒ dynamic-race-clean on every
//! explored schedule**. The static detector (`cwsp_analyzer::races`) may
//! over-approximate — flagging a clean program costs a lint warning — but it
//! must never declare clean a program the vector-clock oracle
//! (`cwsp_sim::race`) can catch racing under *any* seeded interleaving.
//!
//! Three mutation classes close the loop in the other direction: each
//! injected concurrency bug must be caught *statically*, with a two-thread
//! interleaving witness:
//!
//! 1. **unsynchronized store** — a shared word written by every thread with
//!    no lock or ordering;
//! 2. **dropped release** — an atomic flag publication downgraded to a plain
//!    store (the classic message-passing bug);
//! 3. **boundary straddle** — a compiled module whose region boundary
//!    between a shared store and its publishing release atomic is removed
//!    (the persist-order / stale-read hazard, invariant I5).

use cwsp_analyzer::races::{check_concurrency, RaceOptions};
use cwsp_bench::engine::par_map;
use cwsp_core::genprog::{generate_concurrent, ConcSpec};
use cwsp_ir::inst::{AtomicOp, Inst, MemRef, Operand};
use cwsp_ir::module::Module;
use cwsp_sim::race::{check_module, OracleConfig};
use cwsp_workloads::multicore;

/// Schedules per module in the oracle sweep (the acceptance floor is 8).
const SCHEDULES: usize = 8;

/// Concurrent genprog corpus size (the acceptance floor is 200).
const CORPUS: u64 = 200;

fn static_races(m: &Module, cores: usize) -> Vec<String> {
    check_concurrency(
        m,
        &RaceOptions {
            cores,
            ..RaceOptions::default()
        },
    )
    .diagnostics
    .iter()
    .map(|d| d.to_string())
    .collect()
}

fn oracle_races(m: &Module, cores: usize) -> Vec<String> {
    check_module(
        m,
        &OracleConfig {
            cores,
            schedules: SCHEDULES,
            ..OracleConfig::default()
        },
    )
    .expect("oracle replay")
    .races
    .iter()
    .map(|r| r.to_string())
    .collect()
}

/// Assert the soundness direction for one module: static-clean, and then
/// (because it is static-clean) oracle-clean on every schedule.
fn assert_differentially_clean(name: &str, m: &Module, cores: usize) {
    let s = static_races(m, cores);
    assert!(s.is_empty(), "{name}: static analyzer flagged:\n{s:?}");
    let d = oracle_races(m, cores);
    assert!(
        d.is_empty(),
        "{name}: static-clean but the oracle found races:\n{d:?}"
    );
}

#[test]
fn shipped_multicore_workloads_are_differentially_clean() {
    let (m, _, _, _) = multicore::drf_partition_sum(4);
    assert_differentially_clean("drf_partition_sum", &m, 4);
    let (m, _, _) = multicore::spinlock_ledger(3);
    assert_differentially_clean("spinlock_ledger", &m, 3);
    let (m, _, _) = multicore::message_ring(3);
    assert_differentially_clean("message_ring", &m, 3);
}

#[test]
fn concurrent_genprog_corpus_is_differentially_clean() {
    let seeds: Vec<u64> = (0..CORPUS).collect();
    let failures: Vec<String> = par_map(&seeds, |&seed| {
        let spec = ConcSpec {
            cores: 2 + seed % 3,
            fences: seed % 2 == 0,
            ..ConcSpec::default()
        };
        let m = generate_concurrent(&spec, seed);
        let cores = spec.cores as usize;
        let s = static_races(&m, cores);
        if !s.is_empty() {
            return Some(format!("seed {seed}: static flagged {s:?}"));
        }
        let d = oracle_races(&m, cores);
        if !d.is_empty() {
            return Some(format!("seed {seed}: static-clean, oracle found {d:?}"));
        }
        None
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The diagnostic must carry a two-thread interleaving witness: steps from
/// both cores, prefixed by the context that produced them.
fn assert_two_thread_witness(m: &Module, cores: usize, code: &str) {
    let analysis = check_concurrency(
        m,
        &RaceOptions {
            cores,
            ..RaceOptions::default()
        },
    );
    let diag = analysis
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| {
            panic!(
                "expected a {code} diagnostic, got: {:?}",
                analysis
                    .diagnostics
                    .iter()
                    .map(|d| d.code)
                    .collect::<Vec<_>>()
            )
        });
    let w = diag.witness.as_ref().expect("interleaving witness");
    if code == "R-data-race" {
        let mentions = |t: &str| w.steps.iter().any(|s| s.note.starts_with(t));
        assert!(
            mentions("core 0:")
                && w.steps
                    .iter()
                    .any(|s| s.note.starts_with("core ") && !s.note.starts_with("core 0:")),
            "witness must interleave two cores: {w:?}"
        );
        let _ = mentions;
    } else {
        assert!(!w.steps.is_empty(), "witness must trace the escape: {w:?}");
    }
}

#[test]
fn mutation_unsynchronized_store_is_caught_statically() {
    // Every thread plain-stores the same data word with no synchronization.
    let (mut m, data_addr, _, _) = multicore::drf_partition_sum(3);
    let entry = m.entry().expect("entry");
    let blocks = &mut m.function_mut(entry).blocks;
    blocks[0]
        .insts
        .insert(0, Inst::store(Operand::imm(99), MemRef::abs(data_addr)));
    assert_two_thread_witness(&m, 3, "R-data-race");
}

#[test]
fn mutation_dropped_release_is_caught_statically() {
    // Downgrade message_ring's releasing Swap to a plain store: the mail
    // hand-off loses its happens-before edge.
    let (mut m, _, _) = multicore::message_ring(3);
    let entry = m.entry().expect("entry");
    let blocks = &mut m.function_mut(entry).blocks;
    let mut replaced = false;
    for block in blocks.iter_mut() {
        for inst in block.insts.iter_mut() {
            if let Inst::AtomicRmw {
                op: AtomicOp::Swap,
                addr,
                src,
                ..
            } = inst
            {
                *inst = Inst::store(*src, *addr);
                replaced = true;
                break;
            }
        }
        if replaced {
            break;
        }
    }
    assert!(replaced, "message_ring must contain a release Swap");
    assert_two_thread_witness(&m, 3, "R-data-race");
}

#[test]
fn mutation_boundary_straddle_is_caught_statically() {
    // Compile the spinlock ledger so the compiler places real region
    // boundaries, check it is I5-clean, then delete the boundary separating
    // the shared stores from the lock-releasing Swap.
    use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
    let (m, _, _) = multicore::spinlock_ledger(2);
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
    let mut m = compiled.module;
    let before = check_concurrency(
        &m,
        &RaceOptions {
            cores: 2,
            ..RaceOptions::default()
        },
    );
    assert!(
        before
            .diagnostics
            .iter()
            .all(|d| d.code != "I5-open-escape"),
        "compiled module must start I5-clean: {:?}",
        before.diagnostics
    );
    // Remove the *last* Boundary before a release Swap — the preceding
    // shared store now straddles into the publication point (earlier
    // boundaries in the block still close their own stores' regions).
    let entry = m.entry().expect("entry");
    let blocks = &mut m.function_mut(entry).blocks;
    let mut removed = false;
    'outer: for block in blocks.iter_mut() {
        let Some(swap_at) = block.insts.iter().position(|x| {
            matches!(
                x,
                Inst::AtomicRmw {
                    op: AtomicOp::Swap,
                    ..
                }
            )
        }) else {
            continue;
        };
        for i in (0..swap_at).rev() {
            if matches!(block.insts[i], Inst::Boundary { .. }) {
                block.insts.remove(i);
                removed = true;
                break 'outer;
            }
        }
    }
    assert!(
        removed,
        "compiled ledger must have a boundary before a release"
    );
    assert_two_thread_witness(&m, 2, "I5-open-escape");
}
