//! Checkpoint coverage (I2) and recovery-slice well-formedness (I3).
//!
//! At every explicit region boundary, each register live *across* the
//! boundary must be restorable by the region's recovery slice (§IV-B/C):
//!
//! * the slice must exist and mention every live-in (**I2**);
//! * a `Slot` source is valid only if the register is provably slot-synced
//!   on every path reaching the boundary ([`crate::sync`]);
//! * a `Const` source must agree with an independent constant propagation
//!   ([`crate::consts`]) — a provable disagreement is an error, an
//!   unprovable constant only a warning;
//! * an `Expr` source's slot leaves must be synced at the boundary *and*
//!   must not be re-checkpointed inside the boundary's own region: a
//!   def-site checkpoint of a leaf would overwrite the slot the expression
//!   reads at recovery (**I3**).

use crate::consts::{CVal, ConstProp};
use crate::diag::{Diagnostic, Invariant, Location, Severity};
use crate::sync::SlotSync;
use cwsp_compiler::liveness::Liveness;
use cwsp_compiler::slice::{RsSource, SliceTable};
use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::Inst;
use cwsp_ir::types::{Reg, RegionId};

#[allow(clippy::too_many_arguments)] // a plain constructor; grouping would obscure it
fn diag(
    f: &Function,
    b: BlockId,
    idx: usize,
    severity: Severity,
    invariant: Invariant,
    code: &'static str,
    region: RegionId,
    message: String,
) -> Diagnostic {
    Diagnostic {
        severity,
        invariant,
        code,
        message,
        location: Location {
            function: f.name.clone(),
            block: b.0,
            inst: Some(idx),
        },
        region: Some(region.0),
        witness: None,
    }
}

/// Registers checkpointed anywhere inside the region fragment rooted just
/// after the boundary at `(b, idx)`: straight-line walk that stops at the
/// next boundary/call/terminator and follows branches into blocks that do
/// not begin a new region.
fn region_ckpt_regs(f: &Function, b: BlockId, idx: usize) -> Vec<Reg> {
    let mut regs = Vec::new();
    let mut visited = vec![false; f.blocks.len()];
    let mut work: Vec<(BlockId, usize)> = vec![(b, idx + 1)];
    while let Some((blk, start)) = work.pop() {
        let insts = &f.block(blk).insts;
        let mut i = start;
        while let Some(inst) = insts.get(i) {
            match inst {
                Inst::Boundary { .. } | Inst::Call { .. } | Inst::Ret { .. } | Inst::Halt => break,
                Inst::Ckpt { reg } => regs.push(*reg),
                Inst::Br { target } => {
                    if !starts_with_boundary(f, *target) && !visited[target.index()] {
                        visited[target.index()] = true;
                        work.push((*target, 0));
                    }
                    break;
                }
                Inst::CondBr {
                    if_true, if_false, ..
                } => {
                    for t in [*if_true, *if_false] {
                        if !starts_with_boundary(f, t) && !visited[t.index()] {
                            visited[t.index()] = true;
                            work.push((t, 0));
                        }
                    }
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    regs
}

fn starts_with_boundary(f: &Function, b: BlockId) -> bool {
    matches!(f.block(b).insts.first(), Some(Inst::Boundary { .. }))
}

/// Check I2/I3 at every boundary of `f`, appending findings to `out`.
pub fn check_function(f: &Function, slices: &SliceTable, out: &mut Vec<Diagnostic>) {
    let rpo = cfg::reverse_post_order(f);
    let mut reachable = vec![false; f.blocks.len()];
    for &b in &rpo {
        reachable[b.index()] = true;
    }
    let live = Liveness::compute(f);
    let sync = SlotSync::compute(f);
    let consts = ConstProp::compute(f);

    for &b in &rpo {
        if !reachable[b.index()] {
            continue;
        }
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            let Inst::Boundary { id } = inst else {
                continue;
            };
            let live_in = live.live_after(f, b, i);
            let slice = slices.get(*id);

            // --- I2: every live-in register must be restorable. ---
            let Some(slice) = slice else {
                if !live_in.is_empty() {
                    let regs: Vec<String> = live_in.iter().map(|r| r.to_string()).collect();
                    out.push(diag(
                        f,
                        b,
                        i,
                        Severity::Error,
                        Invariant::CheckpointCoverage,
                        "I2-missing-slice",
                        *id,
                        format!(
                            "region {id} has live-in registers [{}] but no recovery slice",
                            regs.join(", ")
                        ),
                    ));
                }
                continue;
            };
            for r in live_in.iter() {
                if !slice.restores.iter().any(|(rr, _)| *rr == r) {
                    out.push(diag(
                        f,
                        b,
                        i,
                        Severity::Error,
                        Invariant::CheckpointCoverage,
                        "I2-missing-restore",
                        *id,
                        format!(
                            "{r} is live across region {id}'s boundary but its recovery slice does not restore it"
                        ),
                    ));
                }
            }

            // --- I3: each restore source must reproduce the live-in value. ---
            let synced = sync.synced_before(f, b, i);
            for (r, src) in &slice.restores {
                match src {
                    RsSource::Slot => {
                        let ok = synced.as_ref().is_some_and(|s| s.contains(*r));
                        if !ok {
                            let mut d = diag(
                                f,
                                b,
                                i,
                                Severity::Error,
                                Invariant::CheckpointCoverage,
                                "I2-unsynced-slot",
                                *id,
                                format!(
                                    "region {id} restores {r} from its slot, but the slot may be stale at the boundary"
                                ),
                            );
                            d.witness = Some(sync.witness_unsynced(f, b, i, *r));
                            out.push(d);
                        }
                    }
                    RsSource::Const(c) => match consts.value_before(f, b, i, *r) {
                        Some(CVal::Const(actual)) if actual != *c => {
                            out.push(diag(
                                f,
                                b,
                                i,
                                Severity::Error,
                                Invariant::SliceWellFormed,
                                "I3-const-mismatch",
                                *id,
                                format!(
                                    "region {id} rematerializes {r} as {c:#x}, but {r} is provably {actual:#x} at the boundary"
                                ),
                            ));
                        }
                        Some(CVal::Const(_)) | None => {}
                        Some(CVal::Unknown) => {
                            out.push(diag(
                                f,
                                b,
                                i,
                                Severity::Warning,
                                Invariant::SliceWellFormed,
                                "I3-const-unverified",
                                *id,
                                format!(
                                    "region {id} rematerializes {r} as constant {c:#x}, which this analysis cannot confirm"
                                ),
                            ));
                        }
                    },
                    RsSource::Expr(e) => {
                        let mut leaves = Vec::new();
                        e.slot_leaves(&mut leaves);
                        leaves.sort_unstable();
                        leaves.dedup();
                        let in_region = region_ckpt_regs(f, b, i);
                        for leaf in leaves {
                            if !synced.as_ref().is_some_and(|s| s.contains(leaf)) {
                                let mut d = diag(
                                    f,
                                    b,
                                    i,
                                    Severity::Error,
                                    Invariant::SliceWellFormed,
                                    "I3-expr-leaf-unsynced",
                                    *id,
                                    format!(
                                        "region {id} rematerializes {r} from {leaf}'s slot, which may be stale at the boundary"
                                    ),
                                );
                                d.witness = Some(sync.witness_unsynced(f, b, i, leaf));
                                out.push(d);
                            }
                            if in_region.contains(&leaf) {
                                out.push(diag(
                                    f,
                                    b,
                                    i,
                                    Severity::Error,
                                    Invariant::SliceWellFormed,
                                    "I3-leaf-clobbered-in-region",
                                    *id,
                                    format!(
                                        "region {id} rematerializes {r} from {leaf}'s slot, but the region re-checkpoints {leaf} — a crash after that checkpoint recovers the wrong value"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_compiler::slice::{RecoverySlice, RematExpr};
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, Operand};

    /// `mov r; ckpt r; boundary; use r; halt` — the well-formed shape.
    fn well_formed() -> (Function, SliceTable, Reg) {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(5));
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::Out { val: r0.into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        let mut t = SliceTable::new();
        t.insert(
            RegionId(0),
            RecoverySlice {
                restores: vec![(r0, RsSource::Slot)],
            },
        );
        (f, t, r0)
    }

    fn run(f: &Function, t: &SliceTable) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_function(f, t, &mut out);
        out
    }

    #[test]
    fn well_formed_region_is_clean() {
        let (f, t, _) = well_formed();
        assert!(run(&f, &t).is_empty(), "{:?}", run(&f, &t));
    }

    #[test]
    fn missing_slice_with_live_ins_is_an_error() {
        let (f, _, _) = well_formed();
        let empty = SliceTable::new();
        let diags = run(&f, &empty);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I2-missing-slice");
        assert_eq!(diags[0].region, Some(0));
    }

    #[test]
    fn missing_restore_for_live_register_is_an_error() {
        let (f, _, _) = well_formed();
        let mut t = SliceTable::new();
        t.insert(RegionId(0), RecoverySlice::default());
        let diags = run(&f, &t);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I2-missing-restore");
    }

    #[test]
    fn dropped_checkpoint_makes_slot_stale() {
        let (mut f, t, _) = well_formed();
        // Delete the Ckpt (injected bug: dropped checkpoint save).
        f.blocks[0].insts.remove(1);
        let diags = run(&f, &t);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I2-unsynced-slot");
        assert!(
            diags[0]
                .witness
                .as_ref()
                .is_some_and(|w| !w.steps.is_empty()),
            "stale-slot errors carry a path witness"
        );
    }

    #[test]
    fn clobber_after_checkpoint_makes_slot_stale() {
        let (mut f, t, r0) = well_formed();
        // Redefine r0 between Ckpt and Boundary (injected bug: clobbered
        // slice source).
        f.blocks[0].insts.insert(
            2,
            Inst::Mov {
                dst: r0,
                src: Operand::imm(0xDEAD),
            },
        );
        let diags = run(&f, &t);
        assert!(
            diags.iter().any(|d| d.code == "I2-unsynced-slot"),
            "{diags:?}"
        );
        let d = diags.iter().find(|d| d.code == "I2-unsynced-slot").unwrap();
        let w = d.witness.as_ref().unwrap();
        assert!(
            w.steps.iter().any(|s| s.note.contains("clobbers r0")),
            "{w:?}"
        );
    }

    #[test]
    fn const_restore_verified_or_flagged() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(5));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::Out { val: r0.into() });
        b.push(e, Inst::Halt);
        let f = b.build();

        let slice = |c| {
            let mut t = SliceTable::new();
            t.insert(
                RegionId(0),
                RecoverySlice {
                    restores: vec![(r0, RsSource::Const(c))],
                },
            );
            t
        };
        assert!(run(&f, &slice(5)).is_empty());
        let diags = run(&f, &slice(6));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I3-const-mismatch");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn unprovable_const_is_only_a_warning() {
        let mut b = FunctionBuilder::new("f", 1); // r0 is a parameter
        let e = b.entry();
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::Out { val: Reg(0).into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        let mut t = SliceTable::new();
        t.insert(
            RegionId(0),
            RecoverySlice {
                restores: vec![(Reg(0), RsSource::Const(3))],
            },
        );
        let diags = run(&f, &t);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I3-const-unverified");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn expr_leaf_reckpted_inside_region_is_flagged() {
        // boundary R0 restores r1 = slot(r0) << 1; but R0's fragment
        // re-checkpoints r0.
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(2));
        let r1 = b.bin(e, BinOp::Shl, r0.into(), Operand::imm(1));
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(
            e,
            Inst::Mov {
                dst: r0,
                src: Operand::imm(99),
            },
        );
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(e, Inst::Out { val: r1.into() });
        b.push(e, Inst::Out { val: r0.into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        let mut t = SliceTable::new();
        t.insert(
            RegionId(0),
            RecoverySlice {
                restores: vec![
                    (
                        r1,
                        RsSource::Expr(RematExpr::Bin(
                            BinOp::Shl,
                            Box::new(RematExpr::Slot(r0)),
                            Box::new(RematExpr::Const(1)),
                        )),
                    ),
                    (r0, RsSource::Slot),
                ],
            },
        );
        let diags = run(&f, &t);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "I3-leaf-clobbered-in-region"),
            "{diags:?}"
        );
    }

    #[test]
    fn expr_leaf_unsynced_is_flagged_with_witness() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(2));
        let r1 = b.bin(e, BinOp::Shl, r0.into(), Operand::imm(1));
        // No Ckpt of r0 at all.
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::Out { val: r1.into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        let mut t = SliceTable::new();
        t.insert(
            RegionId(0),
            RecoverySlice {
                restores: vec![(r1, RsSource::Expr(RematExpr::Slot(r0)))],
            },
        );
        let diags = run(&f, &t);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I3-expr-leaf-unsynced");
        assert!(diags[0].witness.is_some());
    }

    #[test]
    fn boundary_with_no_live_ins_needs_no_slice() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::Halt);
        let f = b.build();
        assert!(run(&f, &SliceTable::new()).is_empty());
    }
}
