//! cWSP on CXL-attached NVM (§IX-C): run a memory-intensive workload against
//! each Table I device and show the overhead staying low — the persist path
//! ends at the CXL home agent's battery-backed WPQ, so its length is
//! unchanged.
//!
//! ```sh
//! cargo run --release --example cxl_tiering
//! ```

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::sim::config::{MainMemory, SimConfig, CXL_DEVICES};
use cwsp::sim::machine::Machine;
use cwsp::sim::scheme::Scheme;

fn main() {
    let w = cwsp::workloads::by_name("xsbench").expect("workload");
    println!(
        "workload: {}/{} (random lookups over an 8 GB table)\n",
        w.suite, w.name
    );
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);

    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>8}",
        "device", "BW (GB/s)", "base cycles", "cWSP cycles", "slow"
    );
    for dev in CXL_DEVICES {
        let cfg = SimConfig {
            main_memory: MainMemory::Cxl(dev),
            ..SimConfig::default()
        };
        let mut bm = Machine::new(&w.module, &cfg, Scheme::Baseline);
        let base = bm.run(u64::MAX, None).expect("baseline").stats.cycles;
        let mut cm = Machine::new(&compiled.module, &cfg, Scheme::cwsp());
        let c = cm.run(u64::MAX, None).expect("cwsp").stats.cycles;
        println!(
            "{:<18} {:>10.1} {:>12} {:>12} {:>7.3}x",
            dev.name,
            dev.max_bandwidth_gbps,
            base,
            c,
            c as f64 / base as f64
        );
    }
    println!("\n(paper §IX-C: ≈4% overhead regardless of CXL device speed)");
}
