//! Figure 23: persist-path latency sweep 10→40 ns (paper: almost flat — the
//! RBT overlaps the latency with region execution).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::{ns_to_cycles, SimConfig};
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig23_latency_sweep", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Fig 23: persist path latency sweep ===");
    for ns in [10.0, 20.0, 30.0, 40.0] {
        let cfg = SimConfig {
            persist_path_cycles: ns_to_cycles(ns) * 2, // round trip
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- Lat-{ns}ns");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
