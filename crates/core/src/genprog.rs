//! Random structured-program generation for property testing.
//!
//! Crash-consistency verification is only as strong as the programs it
//! sweeps. [`generate`] produces deterministic, always-terminating modules
//! exercising the constructs the compiler must handle: read-modify-write
//! chains (memory antidependences), register reuse (register
//! antidependences), counted loops (region-per-iteration), indexed array
//! walks (symbolic aliasing), helper calls (frame spill/restore), and
//! observable output.

use crate::prng::SplitMix64;
use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
use cwsp_ir::module::{FuncId, GlobalId, Module};
use cwsp_ir::types::Reg;

/// Shape parameters for generated programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Number of global arrays.
    pub globals: usize,
    /// Words per global array.
    pub global_words: u64,
    /// Straight-line segments in `main`.
    pub segments: usize,
    /// Maximum trip count of generated loops.
    pub max_trip: u64,
    /// Whether to generate helper-function calls.
    pub calls: bool,
}

impl Default for ProgramSpec {
    fn default() -> Self {
        ProgramSpec {
            globals: 3,
            global_words: 16,
            segments: 10,
            max_trip: 12,
            calls: true,
        }
    }
}

struct Gen {
    rng: SplitMix64,
    /// Registers known to hold interesting values.
    pool: Vec<Reg>,
}

impl Gen {
    fn pick_reg(&mut self, b: &mut FunctionBuilder) -> Reg {
        if self.pool.is_empty() || self.rng.range_u64(0, 4) == 0 {
            let r = b.vreg();
            self.pool.push(r);
            r
        } else {
            self.pool[self.rng.index(self.pool.len())]
        }
    }

    fn operand(&mut self) -> Operand {
        if self.pool.is_empty() || self.rng.chance(0.4) {
            Operand::imm(self.rng.range_u64(0, 64))
        } else {
            self.pool[self.rng.index(self.pool.len())].into()
        }
    }

    fn binop(&mut self) -> BinOp {
        const OPS: [BinOp; 8] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::MinU,
        ];
        OPS[self.rng.index(OPS.len())]
    }

    fn global_ref(&mut self, globals: &[GlobalId], words: u64) -> MemRef {
        let g = globals[self.rng.index(globals.len())];
        MemRef::global(g, self.rng.range_u64(0, words) as i64)
    }
}

/// Generate a deterministic module from `spec` and `seed`.
///
/// The program always halts, never traps, and ends by loading and summing a
/// few global words so that data corruption shows in the return value as well
/// as in memory.
pub fn generate(spec: &ProgramSpec, seed: u64) -> Module {
    let mut m = Module::new(format!("gen-{seed}"));
    let globals: Vec<GlobalId> = (0..spec.globals)
        .map(|i| m.add_global(format!("g{i}"), spec.global_words))
        .collect();

    // Optional helper: h(x) = (x * 3 + arr walk) with a store.
    let helper: Option<FuncId> = spec.calls.then(|| {
        let mut b = FunctionBuilder::new("helper", 1);
        let e = b.entry();
        let x = b.param(0);
        let t = b.bin(e, BinOp::Mul, x.into(), Operand::imm(3));
        let u = b.bin(e, BinOp::Add, t.into(), Operand::imm(1));
        b.store(e, u.into(), MemRef::global(globals[0], 0));
        b.push(
            e,
            Inst::Ret {
                val: Some(u.into()),
            },
        );
        m.add_function(b.build())
    });

    let mut g = Gen {
        rng: SplitMix64::seed_from_u64(seed),
        pool: Vec::new(),
    };
    let mut b = FunctionBuilder::new("main", 0);
    let mut bb = b.entry();

    for _ in 0..spec.segments {
        match g.rng.range_u64(0, 12) {
            0..=2 => {
                // Arithmetic onto a (possibly reused) register.
                let dst = g.pick_reg(&mut b);
                let (l, r) = (g.operand(), g.operand());
                let op = g.binop();
                b.push(
                    bb,
                    Inst::Binary {
                        op,
                        dst,
                        lhs: l,
                        rhs: r,
                    },
                );
            }
            3..=4 => {
                // Read-modify-write on a global word (forces an antidep cut).
                let addr = g.global_ref(&globals, spec.global_words);
                let v = b.load(bb, addr);
                g.pool.push(v);
                let op = g.binop();
                let rhs = g.operand();
                let s = b.bin(bb, op, v.into(), rhs);
                b.store(bb, s.into(), addr);
            }
            5 => {
                // Plain store.
                let addr = g.global_ref(&globals, spec.global_words);
                let v = g.operand();
                b.store(bb, v, addr);
            }
            6 => {
                // Observable output.
                let v = g.operand();
                b.push(bb, Inst::Out { val: v });
            }
            7..=8 => {
                // Counted loop with an indexed array walk + accumulator.
                let trip = g.rng.range_incl_u64(1, spec.max_trip);
                let gid = globals[g.rng.index(globals.len())];
                let base = m.global_addr(gid);
                let words = spec.global_words;
                let seed_op = g.operand();
                // acc register defined before the loop, updated per iteration
                // (a loop-carried register antidependence).
                let acc = b.vreg();
                b.push(
                    bb,
                    Inst::Mov {
                        dst: acc,
                        src: seed_op,
                    },
                );
                let (_, exit) = build_counted_loop(&mut b, bb, Operand::imm(trip), |b, body, i| {
                    let off = b.bin(body, BinOp::RemU, i.into(), Operand::imm(words));
                    let byt = b.bin(body, BinOp::Shl, off.into(), Operand::imm(3));
                    let addr = b.bin(body, BinOp::Add, byt.into(), Operand::imm(base));
                    let v = b.load(body, MemRef::reg(addr, 0));
                    let s = b.bin(body, BinOp::Add, v.into(), acc.into());
                    b.store(body, s.into(), MemRef::reg(addr, 0));
                    b.push(
                        body,
                        Inst::Binary {
                            op: BinOp::Add,
                            dst: acc,
                            lhs: acc.into(),
                            rhs: Operand::imm(1),
                        },
                    );
                });
                g.pool.push(acc);
                bb = exit;
            }
            10 => {
                // If-else over a data-dependent condition (join blocks get
                // structural boundaries; reaching-def merges stress pruning).
                let cond = g.operand();
                let then_bb = b.block();
                let else_bb = b.block();
                let join = b.block();
                let out = b.vreg();
                g.pool.push(out);
                b.push(
                    bb,
                    Inst::CondBr {
                        cond,
                        if_true: then_bb,
                        if_false: else_bb,
                    },
                );
                let tv = g.operand();
                let t1 = b.bin(then_bb, BinOp::Add, tv, Operand::imm(3));
                b.push(
                    then_bb,
                    Inst::Mov {
                        dst: out,
                        src: t1.into(),
                    },
                );
                let taddr = g.global_ref(&globals, spec.global_words);
                b.store(then_bb, t1.into(), taddr);
                b.push(then_bb, Inst::Br { target: join });
                let ev = g.operand();
                let e1 = b.bin(else_bb, BinOp::Xor, ev, Operand::imm(5));
                b.push(
                    else_bb,
                    Inst::Mov {
                        dst: out,
                        src: e1.into(),
                    },
                );
                b.push(else_bb, Inst::Br { target: join });
                bb = join;
            }
            9 => {
                // Synchronization point: atomic fetch-add on a global word
                // (exercises the sync-drain + synchronous-persist path).
                let addr = g.global_ref(&globals, spec.global_words);
                let dst = b.vreg();
                g.pool.push(dst);
                b.push(
                    bb,
                    Inst::AtomicRmw {
                        op: cwsp_ir::inst::AtomicOp::FetchAdd,
                        dst,
                        addr,
                        src: Operand::imm(g.rng.range_u64(1, 8)),
                        expected: Operand::imm(0),
                    },
                );
            }
            _ => {
                // Helper call (if enabled): exercises spill/restore.
                if let Some(h) = helper {
                    let arg = g.operand();
                    let r = b.call(bb, h, vec![arg], true).expect("ret reg");
                    g.pool.push(r);
                } else {
                    let v = g.operand();
                    b.push(bb, Inst::Out { val: v });
                }
            }
        }
    }

    // Checksum epilogue: fold a few global words and return the sum.
    let mut sum = b.mov(bb, Operand::imm(0));
    for (i, gid) in globals.iter().enumerate() {
        let v = b.load(
            bb,
            MemRef::global(*gid, (i as i64) % spec.global_words as i64),
        );
        let s = b.bin(bb, BinOp::Add, sum.into(), v.into());
        sum = s;
    }
    b.push(bb, Inst::Out { val: sum.into() });
    b.push(
        bb,
        Inst::Ret {
            val: Some(sum.into()),
        },
    );

    let main = m.add_function(b.build());
    m.set_entry(main);
    debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
    m
}

/// Convenience: generate with the default spec.
pub fn generate_default(seed: u64) -> Module {
    generate(&ProgramSpec::default(), seed)
}

/// Shape parameters for generated *concurrent* programs
/// ([`generate_concurrent`]). Kept separate from [`ProgramSpec`] so the
/// single-core seed corpus stays byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcSpec {
    /// Threads the module is built for (each core runs `main(tid)`).
    pub cores: u64,
    /// Words per thread-private partition.
    pub part_words: u64,
    /// Lock-protected shared words.
    pub shared_words: u64,
    /// Straight-line segments in `main`.
    pub segments: usize,
    /// Maximum trip count of generated loops.
    pub max_trip: u64,
    /// Whether to sprinkle `Fence` instructions between segments.
    pub fences: bool,
}

impl Default for ConcSpec {
    fn default() -> Self {
        ConcSpec {
            cores: 2,
            part_words: 8,
            shared_words: 4,
            segments: 8,
            max_trip: 6,
            fences: true,
        }
    }
}

/// Generate a deterministic, always-terminating *data-race-free* concurrent
/// module: `cores` threads run `main(tid)` over one shared memory.
///
/// Race freedom is by construction — the generator only emits the sharing
/// idioms the static concurrency analyzer proves safe, so the module doubles
/// as a differential-testing probe (static-clean ⇒ the dynamic vector-clock
/// oracle must also come up clean on every schedule):
///
/// * thread-private partition traffic at `part[tid*P .. (tid+1)*P]`
///   (disjoint interval arithmetic over the folded `tid`);
/// * shared read-modify-writes only inside a CAS-spinlock critical section
///   (must-lockset);
/// * commutative cross-thread communication via atomic fetch-add
///   (both-atomic exemption);
/// * optional sequentially-consistent fences (no-ops for race freedom, but
///   they exercise the sync-drain persist path).
pub fn generate_concurrent(spec: &ConcSpec, seed: u64) -> Module {
    let cores = spec.cores.max(1);
    let part_words = spec.part_words.max(1);
    let shared_words = spec.shared_words.max(1);
    let mut m = Module::new(format!("conc-{seed}"));
    let part = m.add_global("part", cores * part_words);
    let shared = m.add_global("shared", shared_words);
    let lock = m.add_global("lock", 1);
    let ctr = m.add_global("ctr", 1);
    let res = m.add_global("res", cores);
    let part_addr = m.global_addr(part);
    let shared_addr = m.global_addr(shared);
    let lock_addr = m.global_addr(lock);
    let ctr_addr = m.global_addr(ctr);
    let res_addr = m.global_addr(res);

    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC0_4C74);
    let mut b = FunctionBuilder::new("main", 1);
    let mut bb = b.entry();
    let tid = b.param(0);
    // part_base = part_addr + tid * P * 8 — constant once tid is folded in,
    // so every private access lands in a per-thread disjoint interval.
    let poff = b.bin(bb, BinOp::Mul, tid.into(), Operand::imm(part_words * 8));
    let part_base = b.bin(bb, BinOp::Add, poff.into(), Operand::imm(part_addr));
    let acc = b.mov(bb, Operand::imm(rng.range_u64(1, 64)));

    for _ in 0..spec.segments {
        match rng.range_u64(0, 10) {
            0..=2 => {
                // Private read-modify-write at a fixed partition offset.
                let off = (rng.range_u64(0, part_words) * 8) as i64;
                let v = b.load(bb, MemRef::reg(part_base, off));
                let s = b.bin(bb, BinOp::Add, v.into(), acc.into());
                b.store(bb, s.into(), MemRef::reg(part_base, off));
            }
            3 => {
                // Private partition walk (symbolic index, bounded interval).
                let trip = rng.range_incl_u64(1, spec.max_trip);
                let words = part_words;
                let (_, exit) = build_counted_loop(&mut b, bb, Operand::imm(trip), |b, body, i| {
                    let o = b.bin(body, BinOp::RemU, i.into(), Operand::imm(words));
                    let byt = b.bin(body, BinOp::Shl, o.into(), Operand::imm(3));
                    let addr = b.bin(body, BinOp::Add, part_base.into(), byt.into());
                    let v = b.load(body, MemRef::reg(addr, 0));
                    let s = b.bin(body, BinOp::Add, v.into(), i.into());
                    b.store(body, s.into(), MemRef::reg(addr, 0));
                });
                bb = exit;
            }
            4..=5 => {
                // Lock-protected shared read-modify-writes.
                let spin = b.block();
                let crit = b.block();
                b.push(bb, Inst::Br { target: spin });
                let got = b.vreg();
                b.push(
                    spin,
                    Inst::AtomicRmw {
                        op: cwsp_ir::inst::AtomicOp::Cas,
                        dst: got,
                        addr: MemRef::abs(lock_addr),
                        src: Operand::imm(1),
                        expected: Operand::imm(0),
                    },
                );
                b.push(
                    spin,
                    Inst::CondBr {
                        cond: got.into(),
                        if_true: spin,
                        if_false: crit,
                    },
                );
                for _ in 0..rng.range_incl_u64(1, 2) {
                    let w = shared_addr + rng.range_u64(0, shared_words) * 8;
                    let cur = b.load(crit, MemRef::abs(w));
                    let nv = b.bin(crit, BinOp::Add, cur.into(), acc.into());
                    b.store(crit, nv.into(), MemRef::abs(w));
                }
                let rel = b.vreg();
                b.push(
                    crit,
                    Inst::AtomicRmw {
                        op: cwsp_ir::inst::AtomicOp::Swap,
                        dst: rel,
                        addr: MemRef::abs(lock_addr),
                        src: Operand::imm(0),
                        expected: Operand::imm(0),
                    },
                );
                bb = crit;
            }
            6 => {
                // Commutative cross-thread bump (both-atomic exemption).
                let dst = b.vreg();
                b.push(
                    bb,
                    Inst::AtomicRmw {
                        op: cwsp_ir::inst::AtomicOp::FetchAdd,
                        dst,
                        addr: MemRef::abs(ctr_addr),
                        src: Operand::imm(rng.range_u64(1, 8)),
                        expected: Operand::imm(0),
                    },
                );
            }
            7 if spec.fences => {
                b.push(bb, Inst::Fence);
            }
            _ => {
                // Register-only arithmetic feeding later segments.
                let op = [BinOp::Add, BinOp::Xor, BinOp::Mul][rng.index(3)];
                let k = rng.range_u64(1, 32);
                b.push(
                    bb,
                    Inst::Binary {
                        op,
                        dst: acc,
                        lhs: acc.into(),
                        rhs: Operand::imm(k),
                    },
                );
            }
        }
    }

    // Epilogue: publish the accumulator to the thread's private result slot.
    let roff = b.bin(bb, BinOp::Shl, tid.into(), Operand::imm(3));
    let raddr = b.bin(bb, BinOp::Add, roff.into(), Operand::imm(res_addr));
    b.store(bb, acc.into(), MemRef::reg(raddr, 0));
    b.push(bb, Inst::Out { val: acc.into() });
    b.push(
        bb,
        Inst::Ret {
            val: Some(acc.into()),
        },
    );
    let main = m.add_function(b.build());
    m.set_entry(main);
    debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
    m
}

// ---------------------------------------------------------------------------
// Known-bad mutation hooks.
//
// The differential fuzz farm (`cwsp_bench::fuzz`) periodically plants a bug
// it *knows* the static analyzer must catch, then checks it was caught and
// delta-minimizes the reproducer — a live self-test that the whole
// static-vs-dynamic pipeline still has teeth. The two canonical shapes
// mirror the repository's differential suites: a dropped checkpoint
// (crash-consistency bug, invariant I2) and an unsynchronized shared store
// (concurrency bug, family R).
// ---------------------------------------------------------------------------

/// Drop every `Ckpt` of one slot-restored register in a compiled module.
///
/// Picks the lowest `(region, reg)` pair whose recovery slice restores from
/// a checkpoint slot (deterministic run-to-run) and deletes every `Ckpt` of
/// that register in the region's function — the region's `Slot` restore is
/// then unconditionally stale and the analyzer must flag `I2-unsynced-slot`
/// against the region. Returns the targeted pair, or `None` when the module
/// has no slot restore to corrupt.
pub fn inject_dropped_ckpt(
    m: &mut Module,
    slices: &cwsp_compiler::slice::SliceTable,
) -> Option<(cwsp_ir::types::RegionId, Reg)> {
    use cwsp_compiler::slice::RsSource;
    let (region, reg) = slices
        .iter()
        .flat_map(|(id, slice)| {
            slice
                .restores
                .iter()
                .filter(|(_, src)| matches!(src, RsSource::Slot))
                .map(|(r, _)| (*id, *r))
        })
        .min_by_key(|(id, r)| (id.0, r.0))?;
    let fid = m.iter_functions().find_map(|(fid, f)| {
        f.iter_blocks()
            .any(|(_, b)| {
                b.insts
                    .iter()
                    .any(|i| matches!(i, Inst::Boundary { id } if *id == region))
            })
            .then_some(fid)
    })?;
    for b in &mut m.function_mut(fid).blocks {
        b.insts
            .retain(|inst| !matches!(inst, Inst::Ckpt { reg: r } if *r == reg));
    }
    Some((region, reg))
}

/// Plant an unsynchronized store to a cross-core-shared word.
///
/// Inserts a plain `Store` to the first shared global (`shared`, else
/// `ctr`, else the first global) at the top of the entry function: every
/// core's instance executes it with no lock and no ordering, so the static
/// race detector must report `R-data-race` on the word. Returns the store's
/// absolute address, or `None` when the module has no entry or no globals.
pub fn inject_unsynced_store(m: &mut Module) -> Option<u64> {
    let addr = ["shared", "ctr"]
        .iter()
        .find_map(|n| m.globals().iter().find(|g| g.name == *n))
        .or_else(|| m.globals().first())
        .map(|g| g.addr)?;
    let entry = m.entry()?;
    m.function_mut(entry).blocks[0]
        .insts
        .insert(0, Inst::store(Operand::imm(0x5EED), MemRef::abs(addr)));
    Some(addr)
}

/// Drop the first `flush` of an autofenced module.
///
/// Picks the lowest `(function, block, index)` `FlushLine` (deterministic
/// run-to-run) and deletes it: the store it covered is then dirty at the
/// next commit point and the I6 persistency analyzer must flag
/// `I6-unflushed-store` with a witness rooted at that store. Returns
/// `(function, block, index)` of the now-unflushed store (indices are
/// unchanged by the removal since the store precedes its flush), or `None`
/// when the module contains no flushes.
pub fn inject_dropped_flush(m: &mut Module) -> Option<(FuncId, u32, usize)> {
    let (fid, blk, idx) = find_first(m, |i| matches!(i, Inst::FlushLine { .. }))?;
    let blocks = &mut m.function_mut(fid).blocks;
    blocks[blk as usize].insts.remove(idx);
    // The covered store is the closest preceding `Store` in the block (the
    // autofence pass emits the flush immediately after its store).
    let store_idx = blocks[blk as usize].insts[..idx]
        .iter()
        .rposition(|i| matches!(i, Inst::Store { .. }))?;
    Some((fid, blk, store_idx))
}

/// Drop the first `pfence` of an autofenced module.
///
/// Picks the lowest `(function, block, index)` `PFence` and deletes it: the
/// flushes it ordered are write-backs with no ordering guarantee at the
/// commit point it guarded, and the I6 analyzer must flag
/// `I6-unfenced-flush` with a witness ending at that commit. Returns
/// `(function, block, index)` of the commit instruction the fence guarded
/// (its index *after* the removal — the autofence pass emits the fence
/// immediately before the commit), or `None` when the module contains no
/// fences.
pub fn inject_dropped_fence(m: &mut Module) -> Option<(FuncId, u32, usize)> {
    let (fid, blk, idx) = find_first(m, |i| matches!(i, Inst::PFence))?;
    m.function_mut(fid).blocks[blk as usize].insts.remove(idx);
    Some((fid, blk, idx))
}

/// Duplicate the first `flush` of an autofenced module — a *benign*
/// mutation: re-running the autofence pass must normalize it away, and the
/// I6 analyzer reports it as an `I6-redundant-flush` warning, never an
/// error. Returns the flush's `(function, block, index)`, or `None` when
/// the module contains no flushes.
pub fn inject_redundant_flush(m: &mut Module) -> Option<(FuncId, u32, usize)> {
    let (fid, blk, idx) = find_first(m, |i| matches!(i, Inst::FlushLine { .. }))?;
    let insts = &mut m.function_mut(fid).blocks[blk as usize].insts;
    let dup = insts[idx].clone();
    insts.insert(idx, dup);
    Some((fid, blk, idx))
}

/// Lowest `(function, block, index)` instruction matching `pred`.
fn find_first(m: &Module, pred: impl Fn(&Inst) -> bool) -> Option<(FuncId, u32, usize)> {
    for (fid, f) in m.iter_functions() {
        for (bid, b) in f.iter_blocks() {
            if let Some(idx) = b.insts.iter().position(&pred) {
                return Some((fid, bid.0, idx));
            }
        }
    }
    None
}

/// Benign single-function mutation: prepend an observable `Out` to `f`'s
/// entry block. The incremental-analysis differential uses this to dirty
/// exactly one function's fingerprint per round.
pub fn touch_function(m: &mut Module, f: FuncId, salt: u64) {
    m.function_mut(f).blocks[0].insts.insert(
        0,
        Inst::Out {
            val: Operand::imm(salt),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_valid_and_halt() {
        for seed in 0..30 {
            let m = generate_default(seed);
            assert!(m.validate().is_ok(), "seed {seed}: {:?}", m.validate());
            let out =
                cwsp_ir::interp::run(&m, 200_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.steps > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_default(42);
        let b = generate_default(42);
        assert_eq!(
            cwsp_ir::pretty::fmt_module(&a),
            cwsp_ir::pretty::fmt_module(&b)
        );
        let c = generate_default(43);
        assert_ne!(
            cwsp_ir::pretty::fmt_module(&a),
            cwsp_ir::pretty::fmt_module(&c),
            "different seeds differ"
        );
    }

    #[test]
    fn generated_programs_compile_cleanly() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        for seed in 0..10 {
            let m = generate_default(seed);
            let oracle = cwsp_ir::interp::run(&m, 200_000).unwrap();
            let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
            let out = cwsp_ir::interp::run(&c.module, 400_000).unwrap();
            assert_eq!(out.return_value, oracle.return_value, "seed {seed}");
            assert_eq!(out.output, oracle.output, "seed {seed}");
        }
    }

    #[test]
    fn concurrent_generation_is_deterministic_and_valid() {
        let spec = ConcSpec::default();
        let a = generate_concurrent(&spec, 7);
        let b = generate_concurrent(&spec, 7);
        assert_eq!(
            cwsp_ir::pretty::fmt_module(&a),
            cwsp_ir::pretty::fmt_module(&b)
        );
        let c = generate_concurrent(&spec, 8);
        assert_ne!(
            cwsp_ir::pretty::fmt_module(&a),
            cwsp_ir::pretty::fmt_module(&c)
        );
        for seed in 0..20 {
            let m = generate_concurrent(&spec, seed);
            assert!(m.validate().is_ok(), "seed {seed}: {:?}", m.validate());
            // Single-threaded (tid 0) execution terminates: the lock is
            // always free and loops are counted.
            let out =
                cwsp_ir::interp::run(&m, 500_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.steps > 0);
        }
    }

    #[test]
    fn concurrent_modules_are_oracle_clean() {
        use cwsp_sim::race::{check_module, OracleConfig};
        let spec = ConcSpec::default();
        for seed in 0..10 {
            let m = generate_concurrent(&spec, seed);
            let rep = check_module(
                &m,
                &OracleConfig {
                    cores: spec.cores as usize,
                    schedules: 4,
                    ..OracleConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(rep.is_clean(), "seed {seed}: {:?}", rep.races);
            assert_eq!(rep.incomplete, 0, "seed {seed} did not terminate");
        }
    }

    #[test]
    fn compiled_generated_programs_pass_dynamic_checkers() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        for seed in 0..10 {
            let m = generate_default(seed);
            let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
            cwsp_compiler::verify::check_antidependence(&c.module, 400_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            cwsp_compiler::verify::check_slices(&c.module, &c.slices, 400_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn dropped_ckpt_injection_keeps_module_valid_and_removes_the_ckpt() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        let mut hit = false;
        for seed in 0..32 {
            let m = generate_default(seed);
            let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
            let mut bad = c.module.clone();
            let Some((region, reg)) = inject_dropped_ckpt(&mut bad, &c.slices) else {
                continue;
            };
            hit = true;
            assert!(bad.validate().is_ok(), "mutation keeps the module valid");
            // The targeted register must have lost every checkpoint in the
            // region's function: its slot restore is now unconditionally
            // stale (the analyzer-side catch is asserted end-to-end by the
            // fuzz-farm tests).
            let fid = bad
                .iter_functions()
                .find_map(|(fid, f)| {
                    f.iter_blocks()
                        .any(|(_, b)| {
                            b.insts
                                .iter()
                                .any(|i| matches!(i, Inst::Boundary { id } if *id == region))
                        })
                        .then_some(fid)
                })
                .expect("target region still present");
            let ckpts_left = bad
                .function(fid)
                .iter_blocks()
                .flat_map(|(_, b)| &b.insts)
                .filter(|i| matches!(i, Inst::Ckpt { reg: r } if *r == reg))
                .count();
            assert_eq!(ckpts_left, 0, "seed {seed}: ckpt of {reg:?} survived");
        }
        assert!(hit, "no seed produced a slot restore to corrupt");
    }

    #[test]
    fn unsynced_store_injection_is_caught_by_the_race_oracle() {
        use cwsp_sim::race::{check_module, OracleConfig};
        let mut hit = false;
        for seed in 0..6 {
            let mut m = generate_concurrent(&ConcSpec::default(), seed);
            let Some(addr) = inject_unsynced_store(&mut m) else {
                continue;
            };
            hit = true;
            assert!(m.validate().is_ok());
            let rep = check_module(
                &m,
                &OracleConfig {
                    cores: 2,
                    schedules: 8,
                    ..OracleConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                !rep.is_clean(),
                "seed {seed}: unsynced store to {addr:#x} not observed"
            );
        }
        assert!(hit, "no concurrent seed accepted the store injection");
    }

    #[test]
    fn touch_function_dirties_exactly_one_body() {
        let mut m = generate_default(7);
        let before: Vec<String> = m
            .iter_functions()
            .map(|(_, f)| cwsp_ir::pretty::fmt_function(f))
            .collect();
        let target = m.iter_functions().next().map(|(id, _)| id).unwrap();
        touch_function(&mut m, target, 0xAB);
        assert!(m.validate().is_ok());
        let after: Vec<String> = m
            .iter_functions()
            .map(|(_, f)| cwsp_ir::pretty::fmt_function(f))
            .collect();
        let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert_eq!(changed, 1, "exactly one function body changed");
        assert_ne!(before[target.index()], after[target.index()]);
    }
}
