//! `cwsp-analyzer` — static crash-consistency verifier and IR lint engine.
//!
//! The compiler *constructs* the properties cWSP's correctness rests on;
//! the dynamic checkers in `cwsp_compiler::verify` / `cwsp_core::verify`
//! *witness* them on the paths an execution happens to take. This crate
//! closes the gap: given a compiled [`Module`] and its [`SliceTable`], it
//! proves — or reports counterexample paths for — four invariant families
//! on **all** paths, without executing anything:
//!
//! | id | family | pass |
//! |----|--------|------|
//! | I1 | idempotence (no intra-region WAR) | [`idem`] |
//! | I2 | checkpoint coverage at boundaries | [`ckpt`] |
//! | I3 | recovery-slice well-formedness | [`ckpt`] |
//! | I4 | structural boundary placement | [`structure`] |
//! | L  | general lints | [`lints`] |
//!
//! Entry points: [`analyze`] (returns a full [`diag::Report`]),
//! [`analyze_observed`] (same, publishing counters/spans through an
//! [`ObsSink`]), and [`verify_static`] (pass/fail over a
//! [`cwsp_compiler::Compiled`], the pipeline hook).
//!
//! The soundness contract, exercised by the repository's differential
//! suite: *static-clean ⇒ dynamic-clean* — a module with no error-severity
//! diagnostic passes every dynamic checker on every execution.

pub mod callgraph;
pub mod ckpt;
pub mod consts;
pub mod diag;
pub mod idem;
pub mod incr;
pub mod lints;
pub mod persist;
pub mod races;
pub mod structure;
pub mod summaries;
pub mod sync;

pub use diag::{
    Counters, Diagnostic, Invariant, Location, PathWitness, Report, Severity, SCHEMA_VERSION,
};
pub use incr::{analyze_incremental, analyze_incremental_observed, AnalysisCache, IncrStats};
pub use persist::PersistCounters;
pub use races::{RaceOptions, RaceStats};

use cwsp_compiler::slice::SliceTable;
use cwsp_compiler::Compiled;
use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_ir::types::RegionId;
use cwsp_obs::sink::{NullSink, ObsSink};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Statically analyze `module` against `slices`, reporting all findings.
pub fn analyze(module: &Module, slices: &SliceTable) -> Report {
    analyze_observed(module, slices, &mut NullSink)
}

/// [`analyze`], additionally publishing per-pass spans (track `analyzer`)
/// and summary counters through `sink`.
pub fn analyze_observed(module: &Module, slices: &SliceTable, sink: &mut dyn ObsSink) -> Report {
    let t0 = Instant::now();
    let mut report = Report {
        module: module.name.clone(),
        ..Default::default()
    };

    check_module_level(module, &mut report);

    for (_, f) in module.iter_functions() {
        report.counters.functions += 1;
        analyze_function(module, f, slices, &mut report.diagnostics, sink, t0);
    }

    report.normalize();

    // A region counts as proven when no error-severity finding names it.
    let mut bad_regions: HashSet<u32> = HashSet::new();
    for d in report.errors() {
        if let Some(r) = d.region {
            bad_regions.insert(r);
        }
    }
    report.counters.regions_proven = report
        .counters
        .regions_total
        .saturating_sub(bad_regions.len());
    report.counters.analysis_ns = t0.elapsed().as_nanos() as u64;

    if sink.enabled() {
        sink.count("analyzer.functions", report.counters.functions as u64);
        sink.count(
            "analyzer.regions_total",
            report.counters.regions_total as u64,
        );
        sink.count(
            "analyzer.regions_proven",
            report.counters.regions_proven as u64,
        );
        sink.count("analyzer.diags_error", report.count(Severity::Error) as u64);
        sink.count(
            "analyzer.diags_warning",
            report.count(Severity::Warning) as u64,
        );
        sink.count("analyzer.diags_info", report.count(Severity::Info) as u64);
        sink.span("analyzer", "total", 0, report.counters.analysis_ns);
    }
    report
}

/// Module-level structure checks — entry present, region ids unique across
/// functions — plus the `regions_total` counter. These facts span function
/// boundaries, so the incremental path recomputes them fresh on every run
/// (they are a single linear scan) rather than caching them per function.
pub(crate) fn check_module_level(module: &Module, report: &mut Report) {
    if module.entry().is_none() {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            invariant: Invariant::Lint,
            code: "L-no-entry",
            message: "module has no entry function".into(),
            location: Location {
                function: String::new(),
                block: 0,
                inst: None,
            },
            region: None,
            witness: None,
        });
    }
    let mut seen_regions: HashSet<RegionId> = HashSet::new();
    let mut region_count = 0usize;
    for (_, f) in module.iter_functions() {
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::Boundary { id } = inst {
                    region_count += 1;
                    if !seen_regions.insert(*id) {
                        report.diagnostics.push(Diagnostic {
                            severity: Severity::Error,
                            invariant: Invariant::Structure,
                            code: "I4-dup-region-id",
                            message: format!("region id {id} assigned to more than one boundary"),
                            location: Location {
                                function: f.name.clone(),
                                block: bid.0,
                                inst: Some(i),
                            },
                            region: Some(id.0),
                            witness: None,
                        });
                    }
                }
            }
        }
    }
    report.counters.regions_total = region_count;
}

/// Run the per-function pass sequence — validation, structure, idempotence,
/// checkpoint coverage, lints — appending findings to `out` and publishing
/// per-pass spans (relative to `t0`) through `sink`.
///
/// This is the *unit of caching* for [`incr`]: the diagnostics it appends
/// depend only on the function body, the module's global layout, and the
/// recovery slices of the regions inside the function — never on other
/// function bodies — so they can be keyed by a content fingerprint over
/// exactly those inputs.
pub(crate) fn analyze_function(
    module: &Module,
    f: &cwsp_ir::function::Function,
    slices: &SliceTable,
    out: &mut Vec<Diagnostic>,
    sink: &mut dyn ObsSink,
    t0: Instant,
) {
    let span = |name: &str, since: Instant, sink: &mut dyn ObsSink| {
        let now = Instant::now();
        if sink.enabled() {
            sink.span(
                "analyzer",
                name,
                (since - t0).as_nanos() as u64,
                (now - since).as_nanos() as u64,
            );
        }
        now
    };
    // The analyzer must never panic on malformed input: a function that
    // fails basic validation is reported and skipped — its CFG cannot be
    // traversed meaningfully.
    if let Err(msg) = f.validate() {
        out.push(Diagnostic {
            severity: Severity::Error,
            invariant: Invariant::Structure,
            code: "I4-invalid-function",
            message: msg,
            location: Location {
                function: f.name.clone(),
                block: 0,
                inst: None,
            },
            region: None,
            witness: None,
        });
        return;
    }
    let mut t = Instant::now();
    structure::check_function(f, out);
    t = span("structure", t, sink);
    let roots = idem::root_regions(f);
    idem::check_function(module, f, &roots, out);
    t = span("idempotence", t, sink);
    ckpt::check_function(f, slices, out);
    t = span("checkpoints", t, sink);
    lints::check_function(module, f, slices, out);
    span("lints", t, sink);
}

/// Options for [`analyze_with`]: which optional analysis layers to run on
/// top of the sequential I1–I4 + lint passes.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Run the interprocedural call-graph/summary lints
    /// (`L-recursive-call`, `L-dead-function`, `I2-callee-clobbers-slot`).
    pub interproc: bool,
    /// Run the static race detector and I5 persist-order check.
    pub races: bool,
    /// Run the I6 durability-ordering analysis ([`persist`]): every
    /// NVM-visible store flushed and fenced before any commit point.
    pub persist: bool,
    /// Thread contexts for the race detector (core count).
    pub cores: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            interproc: false,
            races: false,
            persist: false,
            cores: 2,
        }
    }
}

/// [`analyze`] plus the opt-in interprocedural and concurrency layers.
/// Returns the merged report, the race detector's aggregate statistics
/// (when it ran), and the I6 persistency counters (when that layer ran).
pub fn analyze_with(
    module: &Module,
    slices: &SliceTable,
    opts: &AnalyzeOptions,
) -> (Report, Option<RaceStats>, Option<PersistCounters>) {
    analyze_layered(module, slices, opts, None)
}

/// [`analyze_with`] backed by an incremental [`AnalysisCache`]: the
/// sequential per-function passes and the interprocedural summaries are
/// served from the cache where fingerprints match; the race detector (whose
/// facts are whole-module interleavings) always runs fresh. Output is
/// byte-identical to [`analyze_with`].
pub fn analyze_with_cache(
    module: &Module,
    slices: &SliceTable,
    opts: &AnalyzeOptions,
    cache: &mut AnalysisCache,
) -> (Report, Option<RaceStats>, Option<PersistCounters>) {
    analyze_layered(module, slices, opts, Some(cache))
}

fn analyze_layered(
    module: &Module,
    slices: &SliceTable,
    opts: &AnalyzeOptions,
    cache: Option<&mut AnalysisCache>,
) -> (Report, Option<RaceStats>, Option<PersistCounters>) {
    let t0 = Instant::now();
    let mut cache = cache;
    let mut report = match cache.as_deref_mut() {
        Some(c) => analyze_incremental(module, slices, c),
        None => analyze(module, slices),
    };
    let mut stats = None;
    let mut persist_counters = None;
    if opts.interproc || opts.persist {
        // One summary computation feeds both layers; with a cache present
        // it is served through the SCC-merkle incremental path, so the I6
        // layer inherits the fuzz farm's warm-cache economics.
        let cg = callgraph::CallGraph::compute(module);
        let sums = match cache {
            Some(c) => incr::summaries_incremental(module, &cg, c),
            None => summaries::Summaries::compute(module, &cg),
        };
        if opts.interproc {
            report
                .diagnostics
                .extend(summaries::check_module(module, &cg, &sums));
        }
        if opts.persist {
            let (diags, counters) = persist::check_module_with(module, &sums);
            report.diagnostics.extend(diags);
            persist_counters = Some(counters);
        }
    }
    if opts.races {
        let ra = races::check_concurrency(
            module,
            &RaceOptions {
                cores: opts.cores.max(1),
                ..RaceOptions::default()
            },
        );
        report.diagnostics.extend(ra.diagnostics);
        stats = Some(ra.stats);
    }
    report.normalize();
    // New error-severity findings can demote regions from proven.
    let mut bad_regions: HashSet<u32> = HashSet::new();
    for d in report.errors() {
        if let Some(r) = d.region {
            bad_regions.insert(r);
        }
    }
    report.counters.regions_proven = report
        .counters
        .regions_total
        .saturating_sub(bad_regions.len());
    report.counters.analysis_ns = t0.elapsed().as_nanos() as u64;
    (report, stats, persist_counters)
}

/// Pipeline hook: verify a compiler artifact, returning the full report on
/// any error-severity finding. `Ok(())` means static-clean.
///
/// # Errors
/// The complete [`Report`] (including warnings) when at least one
/// error-severity diagnostic exists.
pub fn verify_static(compiled: &Compiled) -> Result<(), Box<Report>> {
    let report = analyze(&compiled.module, &compiled.slices);
    if report.is_clean() {
        Ok(())
    } else {
        Err(Box::new(report))
    }
}

/// Convenience: map each explicit boundary position to its region id —
/// shared by callers wanting per-region attribution.
pub fn boundary_positions(module: &Module) -> HashMap<RegionId, (String, u32, usize)> {
    let mut map = HashMap::new();
    for (_, f) in module.iter_functions() {
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::Boundary { id } = inst {
                    map.insert(*id, (f.name.clone(), bid.0, i));
                }
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{MemRef, Operand};
    use cwsp_ir::layout::GLOBAL_BASE;
    use cwsp_obs::sink::MemSink;

    fn raw_war_module() -> Module {
        let mut m = Module::new("war");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(e, Inst::load(r0, MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::Out { val: r0.into() });
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        m
    }

    #[test]
    fn compiled_module_is_static_clean() {
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&raw_war_module());
        let report = analyze(&compiled.module, &compiled.slices);
        assert!(report.is_clean(), "{}", report.render_text());
        assert!(report.counters.regions_total > 0);
        assert_eq!(
            report.counters.regions_proven,
            report.counters.regions_total
        );
        assert!(verify_static(&compiled).is_ok());
    }

    #[test]
    fn raw_module_with_war_fails_verification() {
        let m = raw_war_module();
        let report = analyze(&m, &SliceTable::new());
        assert!(!report.is_clean(), "{}", report.render_text());
        assert!(report
            .errors()
            .any(|d| d.code == "I1-mem-war" && d.witness.is_some()));
    }

    #[test]
    fn invalid_function_is_reported_not_panicked() {
        let mut m = Module::new("bad");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::Halt);
        let mut f = b.build();
        f.blocks[0].insts.pop(); // drop the terminator -> invalid
        let id = m.add_function(f);
        m.set_entry(id);
        let report = analyze(&m, &SliceTable::new());
        assert!(report.errors().any(|d| d.code == "I4-invalid-function"));
    }

    #[test]
    fn empty_module_reports_no_entry_warning() {
        let m = Module::new("empty");
        let report = analyze(&m, &SliceTable::new());
        assert!(report.is_clean());
        assert!(report.diagnostics.iter().any(|d| d.code == "L-no-entry"));
    }

    #[test]
    fn duplicate_region_ids_are_an_error() {
        let mut m = Module::new("dup");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::Boundary { id: RegionId(3) });
        b.push(e, Inst::Boundary { id: RegionId(3) });
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        let report = analyze(&m, &SliceTable::new());
        assert!(report.errors().any(|d| d.code == "I4-dup-region-id"));
    }

    #[test]
    fn observed_analysis_publishes_counters_and_spans() {
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&raw_war_module());
        let mut sink = MemSink::new();
        let report = analyze_observed(&compiled.module, &compiled.slices, &mut sink);
        assert_eq!(
            sink.count_total("analyzer.regions_total"),
            report.counters.regions_total as u64
        );
        assert_eq!(
            sink.count_total("analyzer.regions_proven"),
            report.counters.regions_proven as u64
        );
        assert!(!sink.spans_named("total").is_empty());
        assert!(!sink.spans_named("idempotence").is_empty());
    }

    #[test]
    fn boundary_positions_cover_every_region() {
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&raw_war_module());
        let map = boundary_positions(&compiled.module);
        let report = analyze(&compiled.module, &compiled.slices);
        assert_eq!(map.len(), report.counters.regions_total);
    }
}
