//! Exact cycle attribution: every simulated core-cycle charged to a
//! (function, static region, cause) cell.
//!
//! When enabled (see [`crate::machine::Machine::enable_profiler`]), the
//! machine classifies each core's cycle as it happens: issuing cycles and
//! long-latency busy cycles charge to the instruction's site with cause
//! `exec` (lump-sum stall latencies folded into an instruction's cost —
//! WPQ-hit delays, scheme persistence stalls — are split back out to their
//! stall cause); explicit stall cycles charge to the stalling site with
//! their [`StallKind`]; halted cycles charge to the synthetic `<halted>`
//! site. The attribution is exact by construction: one charge per core per
//! cycle, so the profile's total equals `cycles × cores` and coverage is a
//! real fraction, not an estimate.

use crate::trace::StallKind;
use cwsp_ir::module::Module;
use cwsp_ir::types::RegionId;
use cwsp_ir::FuncId;
use cwsp_obs::FlatProfile;
use std::collections::HashMap;

/// An attribution site: the executing function (None once no frame exists)
/// and the open static region, when inside one.
pub type Site = (Option<FuncId>, Option<RegionId>);

/// What a core-cycle was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// Issuing or completing an instruction.
    Exec,
    /// Stalled in the persist machinery.
    Stall(StallKind),
    /// The core has halted (others may still be running or draining).
    Halted,
}

impl Cause {
    /// The cause label used in profile reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Cause::Exec => "exec",
            Cause::Stall(StallKind::Pb) => "stall_pb",
            Cause::Stall(StallKind::Rbt) => "stall_rbt",
            Cause::Stall(StallKind::Wb) => "stall_wb",
            Cause::Stall(StallKind::Sync) => "stall_sync",
            Cause::Stall(StallKind::Wpq) => "stall_wpq",
            Cause::Stall(StallKind::Scheme) => "stall_scheme",
            Cause::Halted => "halted",
        }
    }
}

/// The per-run cycle-attribution accumulator.
#[derive(Debug, Default)]
pub struct CycleProfiler {
    cells: HashMap<(Site, Cause), u64>,
    total: u64,
    /// Exec cycles at superblock granularity: `(function, super-op index)`.
    /// A second, finer attribution axis over the same exec cycles the site
    /// cells count — superblocks are the dispatch unit under fusion, so this
    /// is the profile that says *which fused run* the time went to.
    sb_cells: HashMap<(Option<FuncId>, u32), u64>,
    /// Exec cycles offered for superblock attribution (attributed or not).
    sb_exec_total: u64,
    /// Exec cycles that resolved to a known superblock.
    sb_attributed: u64,
}

impl CycleProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        CycleProfiler::default()
    }

    /// Charge one core-cycle to `(site, cause)`.
    pub fn charge(&mut self, site: Site, cause: Cause) {
        *self.cells.entry((site, cause)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total core-cycles charged so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Charge one *exec* core-cycle to a superblock. `sb` is `None` when the
    /// issue site had no decoded position (counted against coverage, never
    /// silently dropped).
    pub fn charge_exec_superblock(&mut self, func: Option<FuncId>, sb: Option<u32>) {
        self.sb_exec_total += 1;
        if let Some(sb) = sb {
            *self.sb_cells.entry((func, sb)).or_insert(0) += 1;
            self.sb_attributed += 1;
        }
    }

    /// Fraction of exec cycles attributed to a known superblock (1.0 when
    /// no exec cycle was offered).
    pub fn superblock_coverage(&self) -> f64 {
        if self.sb_exec_total == 0 {
            1.0
        } else {
            self.sb_attributed as f64 / self.sb_exec_total as f64
        }
    }

    /// Render the superblock axis through the same report model as
    /// [`CycleProfiler::to_flat`]: the region column carries the super-op
    /// index, the cause is always `exec`.
    pub fn superblock_flat(&self, module: &Module) -> FlatProfile {
        let mut p = FlatProfile::new(self.sb_exec_total);
        for (&(func, sb), &cycles) in &self.sb_cells {
            let name = match func {
                Some(f) => module.function(f).name.clone(),
                None => "<machine>".to_string(),
            };
            p.add(&name, Some(sb as u64), "exec", cycles);
        }
        p
    }

    /// Render into the report model, resolving function names via `module`.
    /// Halted cycles become the synthetic `<halted>` site; cycles with no
    /// resolvable function become `<machine>`.
    pub fn to_flat(&self, module: &Module) -> FlatProfile {
        let mut p = FlatProfile::new(self.total);
        for (&((func, region), cause), &cycles) in &self.cells {
            let name = match (func, cause) {
                (_, Cause::Halted) => "<halted>".to_string(),
                (Some(f), _) => module.function(f).name.clone(),
                (None, _) => "<machine>".to_string(),
            };
            p.add(&name, region.map(|r| r.0 as u64), cause.as_str(), cycles);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::Inst;
    use cwsp_ir::module::Module;

    fn one_fn_module() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        (m, f)
    }

    #[test]
    fn charges_accumulate_and_resolve_names() {
        let (m, f) = one_fn_module();
        let mut p = CycleProfiler::new();
        for _ in 0..3 {
            p.charge((Some(f), Some(RegionId(2))), Cause::Exec);
        }
        p.charge((Some(f), None), Cause::Stall(StallKind::Pb));
        p.charge((None, None), Cause::Halted);
        assert_eq!(p.total(), 5);
        let flat = p.to_flat(&m);
        assert_eq!(flat.total_cycles, 5);
        assert_eq!(flat.accounted_cycles(), 5);
        // 4 of 5 cycles hit real program sites.
        assert!((flat.coverage() - 0.8).abs() < 1e-12);
        let rows = flat.sorted_rows();
        assert_eq!(rows[0].func, "main");
        assert_eq!(rows[0].region, Some(2));
        assert_eq!(rows[0].cause, "exec");
        assert!(flat.rows.iter().any(|r| r.func == "<halted>"));
    }
}
