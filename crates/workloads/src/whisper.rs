//! WHISPER stand-ins (6 apps): p (echo/kv put), c (ctree), rb (rbtree),
//! sps (swaps), tatp, tpcc.
//!
//! WHISPER is the persistent-memory application suite; the paper modifies it
//! "to stress the DRAM cache" (§IX), so these stand-ins operate over ranges
//! beyond the 4 GB direct-mapped DRAM cache — most misses reach NVM — with
//! the transactional read/update mixes of the originals.

use crate::footprint::*;
use crate::kernels::*;
use crate::{app, arena, checksum, Suite, Workload};

fn w(name: &'static str, module: cwsp_ir::module::Module) -> Workload {
    Workload {
        name,
        suite: Suite::Whisper,
        module,
        window: 120_000,
    }
}

/// Build all six WHISPER workloads.
pub fn all() -> Vec<Workload> {
    vec![
        w(
            "p",
            app("p", |m, b, mut bb| {
                // echo-style kv put: hash a key, write a small record.
                let store = arena(m, "kvstore", NVM);
                let lock = arena(m, "lock", 1);
                bb = tx_update(b, bb, store, NVM / 8, 4, 2, 1_400, 0x9);
                sync_point(b, bb, lock);
                bb = tx_update(b, bb, store, NVM / 8, 4, 2, 1_400, 0xA);
                checksum(b, bb, store);
                bb
            }),
        ),
        w(
            "c",
            app("c", |m, b, mut bb| {
                // ctree: path reads then node update.
                let tree = arena(m, "ctree", NVM);
                bb = pointer_chase(b, bb, tree, NVM, 1_600, 0xC);
                bb = tx_update(b, bb, tree, NVM / 16, 8, 3, 900, 0xC1);
                checksum(b, bb, tree);
                bb
            }),
        ),
        w(
            "rb",
            app("rb", |m, b, mut bb| {
                // rbtree: reads + rotations = scattered RMW bursts.
                let tree = arena(m, "rbtree", NVM);
                bb = random_walk(b, bb, tree, NVM, 2_400, 0x2B, 2);
                checksum(b, bb, tree);
                bb
            }),
        ),
        w(
            "sps",
            app("sps", |m, b, mut bb| {
                // random swaps: 2 reads + 2 writes per op.
                let arr = arena(m, "array", NVM);
                bb = scatter(b, bb, arr, arr + (NVM / 2) * 8, DRAM, 2_200);
                checksum(b, bb, arr);
                bb
            }),
        ),
        w(
            "tatp",
            app("tatp", |m, b, mut bb| {
                // read-mostly subscriber transactions with small updates.
                let db = arena(m, "subscribers", NVM);
                bb = tx_update(b, bb, db, NVM / 8, 6, 1, 1_500, 0x7A7);
                bb = random_walk(b, bb, db, NVM, 900, 0x7A8, 16);
                checksum(b, bb, db);
                bb
            }),
        ),
        w(
            "tpcc",
            app("tpcc", |m, b, mut bb| {
                // new-order: wide records, several dirty fields per transaction.
                let db = arena(m, "warehouse", NVM);
                let log = arena(m, "txlog", DRAM);
                bb = tx_update(b, bb, db, NVM / 16, 12, 6, 900, 0x7CC);
                bb = rmw_sweep(b, bb, log, DRAM, 1, 900);
                checksum(b, bb, db);
                bb
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_apps_exist_and_run() {
        let ws = all();
        assert_eq!(ws.len(), 6);
        for w in &ws {
            let out = cwsp_ir::interp::run(&w.module, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.steps > 5_000, "{}", w.name);
        }
    }
}
