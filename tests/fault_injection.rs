//! Robustness: recovery must fail *cleanly* (typed errors, no panics) when
//! the crash image is corrupted — torn metadata, truncated frame chains,
//! missing cores.

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::core::recovery::{recover, RecoveryError};
use cwsp::ir::layout;
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::{Machine, RunEnd};
use cwsp::sim::scheme::Scheme;

fn crash_image_of(
    name: &str,
    cycle: u64,
) -> (
    cwsp::compiler::pipeline::Compiled,
    cwsp::sim::machine::CrashImage,
) {
    let w = cwsp::workloads::by_name(name).unwrap();
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
    let image = {
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, Some(cycle)).unwrap();
        assert_eq!(r.end, RunEnd::PowerFailure);
        machine.into_crash_image()
    };
    (compiled, image)
}

#[test]
fn corrupted_frame_chain_is_reported_not_panicked() {
    let (compiled, mut image) = crash_image_of("tatp", 20_000);
    // Tear the frame record the resume point hangs off: point the previous-
    // frame link at itself, producing a cyclic chain.
    let fb = image.resume[0].0.frame_base;
    image
        .nvm
        .store(fb + cwsp::ir::interp::frame::PREV_BASE * 8, fb);
    image
        .nvm
        .store(fb + cwsp::ir::interp::frame::CALLER_FUNC * 8, 1);
    let err = recover(&compiled, image, 0, 1_000_000);
    match err {
        Err(RecoveryError::BadImage(_)) | Err(RecoveryError::Trap(_)) => {}
        other => panic!("expected clean failure, got {other:?}"),
    }
}

#[test]
fn missing_core_metadata_is_bad_image() {
    let (compiled, image) = crash_image_of("kmeans", 5_000);
    let err = recover(&compiled, image, 7, 1_000_000).unwrap_err();
    assert!(matches!(err, RecoveryError::BadImage(_)));
}

#[test]
fn bogus_caller_function_id_is_caught() {
    let (compiled, mut image) = crash_image_of("tatp", 20_000);
    let fb = image.resume[0].0.frame_base;
    // Claim an absurd caller function id in the frame record.
    image
        .nvm
        .store(fb + cwsp::ir::interp::frame::CALLER_FUNC * 8, 999_999);
    image
        .nvm
        .store(fb + cwsp::ir::interp::frame::PREV_BASE * 8, fb - 512);
    let r = recover(&compiled, image, 0, 1_000_000);
    assert!(r.is_err(), "corrupt caller id must not recover silently");
}

#[test]
fn runaway_resumed_program_hits_the_step_limit() {
    let (compiled, image) = crash_image_of("ssca2", 10_000);
    let err = recover(&compiled, image, 0, 10).unwrap_err();
    assert!(matches!(err, RecoveryError::StepLimit(10)));
}

#[test]
fn checkpoint_slot_corruption_is_detected_by_divergence() {
    // Slot corruption is undetectable structurally (it is just data), but
    // the end-to-end comparison catches it: smash every checkpoint slot and
    // show the recovered run no longer always matches the oracle — i.e. the
    // verifier has teeth.
    let w = cwsp::workloads::by_name("fft").unwrap();
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
    let oracle = cwsp::ir::interp::run(&compiled.module, u64::MAX / 2).unwrap();
    let mut any_diverged = false;
    for cycle in [30_000u64, 60_000, 90_000] {
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, Some(cycle)).unwrap();
        if r.end != RunEnd::PowerFailure {
            continue;
        }
        let mut image = machine.into_crash_image();
        for reg in 0..64u32 {
            let a = layout::ckpt_slot_addr(0, cwsp::ir::Reg(reg));
            let v = image.nvm.load(a);
            image.nvm.store(a, v ^ 0xDEAD_BEEF);
        }
        if let Ok(rec) = recover(&compiled, image, 0, u64::MAX / 2) {
            if rec.output != oracle.output
                || !rec
                    .memory
                    .diff_where(&oracle.memory, layout::is_program_data, 1)
                    .is_empty()
            {
                any_diverged = true;
            }
        } else {
            any_diverged = true;
        }
    }
    assert!(any_diverged, "slot corruption must be observable somewhere");
}

#[test]
fn torn_journal_tail_yields_a_clean_prefix() {
    // SIGKILL mid-write leaves a torn last record; forensics must decode the
    // complete prefix and never panic or invent records.
    use cwsp::obs::flight::{read_journal, FlightKind, FlightRecorder, RECORD_BYTES};
    let dir = std::env::temp_dir().join(format!("cwsp-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let w = cwsp::workloads::by_name("tatp").unwrap();
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
    let cfg_ = SimConfig::default();
    let path = {
        let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
        machine.attach_flight(FlightRecorder::create_in(&dir).unwrap());
        let r = machine.run(u64::MAX, Some(20_000)).unwrap();
        assert_eq!(r.end, RunEnd::PowerFailure);
        machine.flight().unwrap().path().unwrap().to_path_buf()
    };
    let whole = read_journal(&path).unwrap();
    assert!(whole.len() > 10, "expected a populated journal");
    // Tear the file mid-record (simulating the torn tail of a real kill).
    let bytes = std::fs::read(&path).unwrap();
    let torn_len = bytes.len() - RECORD_BYTES / 2;
    std::fs::write(&path, &bytes[..torn_len]).unwrap();
    let torn = read_journal(&path).unwrap();
    assert!(torn.len() <= whole.len());
    assert_eq!(torn[..], whole[..torn.len()], "prefix decodes identically");
    // A journal with a smashed header is rejected, not misparsed.
    let mut garbage = bytes.clone();
    garbage[8] ^= 0xFF; // corrupt the magic word
    std::fs::write(&path, &garbage).unwrap();
    assert!(read_journal(&path).is_err(), "bad magic must be rejected");
    // Reconstruction over the torn prefix stays total (no panics).
    let rep = cwsp::obs::forensics::ForensicReport::reconstruct(&torn, Default::default());
    assert!(
        torn.iter()
            .filter(|r| r.kind == FlightKind::StoreIssue)
            .count()
            == rep.stores.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
