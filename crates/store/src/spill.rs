//! Append-only page spill file — the cold tier behind `cwsp_ir::Memory`.
//!
//! The store hands out 4 KiB slots in an anonymous temp file. Appends are
//! lock-free (an atomic length cursor reserves a slot, then the page bytes
//! are written into it), and a slot is immutable once its offset has been
//! published by the owning memory: re-evicting a dirty page appends a fresh
//! slot instead of rewriting the old one. That append-only discipline is
//! what lets cloned memories share one store — a clone's slots are all below
//! the length it observed, and nothing ever rewrites them.
//!
//! Reads and writes go through one shared `mmap` of a fixed-size sparse
//! region when the platform provides it (plain `memcpy`, no syscalls on the
//! fault path); otherwise they fall back to positional I/O
//! (`pread`/`pwrite` via `FileExt` on unix, a seek lock elsewhere). Disable
//! the map with `CWSP_SPILL_MMAP=0`; point the file somewhere other than
//! the system temp directory with `CWSP_SPILL_DIR`.
//!
//! The file is unlinked immediately after creation on unix, so spilled data
//! can never outlive the process even on a crash.

use std::fs::{File, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Words per spilled page (4 KiB / 8 bytes) — matches `cwsp_ir::Memory`.
pub const PAGE_WORDS: usize = 512;
/// Bytes per spilled page.
pub const PAGE_BYTES: usize = PAGE_WORDS * 8;

/// Sparse capacity reserved for the mmap fast path (1M pages = 4 GiB of
/// address space; the file is sparse, so only written pages cost storage).
/// Appends past the capacity transparently switch to positional I/O.
const MAP_CAP: u64 = (1 << 20) * PAGE_BYTES as u64;

/// A fixed mapping of the spill file's first [`MAP_CAP`] bytes.
struct MapRegion {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: concurrent access is confined to disjoint page slots — a slot is
// written exactly once by the thread that reserved it via `fetch_add`, and
// only read after its offset is published through the owning `Memory`
// (which is not `Sync`; cross-thread hand-off happens via `Clone`/`Send`,
// both of which synchronize).
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

impl Drop for MapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            munmap(self.ptr as *mut core::ffi::c_void, self.len);
        }
    }
}

#[cfg(unix)]
extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
}

#[cfg(unix)]
fn map_file(file: &File, len: usize) -> Option<MapRegion> {
    use std::os::unix::io::AsRawFd;
    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;
    // The file must be at least `len` long for stores through the map to be
    // defined; it is sparse, so this costs no storage.
    file.set_len(len as u64).ok()?;
    let ptr = unsafe {
        mmap(
            std::ptr::null_mut(),
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 || ptr.is_null() {
        return None;
    }
    Some(MapRegion {
        ptr: ptr as *mut u8,
        len,
    })
}

#[cfg(not(unix))]
fn map_file(_file: &File, _len: usize) -> Option<MapRegion> {
    None
}

/// The append-only spill store. One process-global instance (see
/// [`SpillStore::global`]) is shared by every tiered memory; tests can build
/// private instances.
pub struct SpillStore {
    file: File,
    /// Bytes appended so far (also the next free offset).
    len: AtomicU64,
    /// The mmap fast path, when available.
    map: Option<MapRegion>,
    /// Serializes positional I/O on platforms without `pread`/`pwrite`.
    #[allow(dead_code)]
    seek_lock: Mutex<()>,
}

impl SpillStore {
    /// Create a fresh spill store backed by an unlinked temp file.
    ///
    /// # Errors
    /// Propagates file-creation failures (the caller degrades to an
    /// unbounded in-RAM memory).
    pub fn create() -> std::io::Result<Arc<SpillStore>> {
        let dir = match std::env::var("CWSP_SPILL_DIR") {
            Ok(d) if !d.is_empty() => PathBuf::from(d),
            _ => std::env::temp_dir(),
        };
        std::fs::create_dir_all(&dir)?;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = dir.join(format!(
            "cwsp-spill-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Unlink immediately: the fd keeps the data alive, and nothing can
        // leak past process exit.
        #[cfg(unix)]
        let _ = std::fs::remove_file(&path);
        let use_map = !matches!(
            std::env::var("CWSP_SPILL_MMAP").as_deref(),
            Ok("0") | Ok("off") | Ok("false") | Ok("no")
        );
        let map = if use_map {
            map_file(&file, MAP_CAP as usize)
        } else {
            None
        };
        Ok(Arc::new(SpillStore {
            file,
            len: AtomicU64::new(0),
            map,
            seek_lock: Mutex::new(()),
        }))
    }

    /// Create a spill store backed by a *named* file under `dir` that is
    /// NOT unlinked — the journal variant used by the flight recorder, where
    /// the whole point is that the bytes survive the process being killed.
    ///
    /// Named stores skip the sparse mmap fast path so the on-disk file size
    /// equals the bytes actually appended (a killed process leaves a
    /// dense, directly readable journal, not a 4 GiB sparse file).
    ///
    /// # Errors
    /// Propagates directory/file-creation failures.
    pub fn create_named(
        dir: &std::path::Path,
        stem: &str,
    ) -> std::io::Result<(Arc<SpillStore>, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = dir.join(format!(
            "{stem}-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok((
            Arc::new(SpillStore {
                file,
                len: AtomicU64::new(0),
                map: None,
                seek_lock: Mutex::new(()),
            }),
            path,
        ))
    }

    /// Open an existing journal file (e.g. one left behind by a killed
    /// process) for reading. `bytes()` reports the on-disk length.
    ///
    /// # Errors
    /// Propagates open/metadata failures.
    pub fn open_readonly(path: &std::path::Path) -> std::io::Result<Arc<SpillStore>> {
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Arc::new(SpillStore {
            file,
            len: AtomicU64::new(len),
            map: None,
            seek_lock: Mutex::new(()),
        }))
    }

    /// The process-global store, created on first use. `None` if the temp
    /// file could not be created (callers then stay unbounded in RAM).
    pub fn global() -> Option<Arc<SpillStore>> {
        static GLOBAL: OnceLock<Option<Arc<SpillStore>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| SpillStore::create().ok())
            .as_ref()
            .map(Arc::clone)
    }

    /// Whether reads/writes go through the mmap fast path.
    pub fn uses_mmap(&self) -> bool {
        self.map.is_some()
    }

    /// Bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Append one page, returning its immutable slot offset.
    pub fn append_page(&self, words: &[u64; PAGE_WORDS]) -> u64 {
        let off = self.len.fetch_add(PAGE_BYTES as u64, Ordering::Relaxed);
        let bytes: &[u8] =
            unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, PAGE_BYTES) };
        if let Some(map) = &self.map {
            if off + PAGE_BYTES as u64 <= map.len as u64 {
                // SAFETY: `off..off+PAGE_BYTES` was exclusively reserved by
                // the fetch_add above and lies inside the mapping.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        bytes.as_ptr(),
                        map.ptr.add(off as usize),
                        PAGE_BYTES,
                    );
                }
                tier::record_spill_bytes(PAGE_BYTES as u64);
                return off;
            }
        }
        self.write_at(bytes, off);
        tier::record_spill_bytes(PAGE_BYTES as u64);
        off
    }

    /// Read a whole page from slot `off`.
    pub fn read_page(&self, off: u64, out: &mut [u64; PAGE_WORDS]) {
        let bytes: &mut [u8] =
            unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut u8, PAGE_BYTES) };
        if let Some(map) = &self.map {
            if off + PAGE_BYTES as u64 <= map.len as u64 {
                // SAFETY: the slot was fully written before its offset was
                // published (see type-level comment on MapRegion).
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        map.ptr.add(off as usize),
                        bytes.as_mut_ptr(),
                        PAGE_BYTES,
                    );
                }
                return;
            }
        }
        self.read_at(bytes, off);
    }

    /// Read the single word at index `idx` of the page in slot `off` —
    /// the no-promotion load path for cold pages.
    pub fn read_word(&self, off: u64, idx: usize) -> u64 {
        debug_assert!(idx < PAGE_WORDS);
        let at = off + (idx * 8) as u64;
        if let Some(map) = &self.map {
            if at + 8 <= map.len as u64 {
                let mut b = [0u8; 8];
                // SAFETY: within the mapping; slot published before read.
                unsafe {
                    std::ptr::copy_nonoverlapping(map.ptr.add(at as usize), b.as_mut_ptr(), 8);
                }
                return u64::from_le_bytes(b);
            }
        }
        let mut b = [0u8; 8];
        self.read_at(&mut b, at);
        u64::from_le_bytes(b)
    }

    #[cfg(unix)]
    fn write_at(&self, bytes: &[u8], off: u64) {
        use std::os::unix::fs::FileExt;
        self.file
            .write_all_at(bytes, off)
            .expect("spill write failed");
    }

    #[cfg(unix)]
    fn read_at(&self, bytes: &mut [u8], off: u64) {
        use std::os::unix::fs::FileExt;
        self.file
            .read_exact_at(bytes, off)
            .expect("spill read failed");
    }

    #[cfg(not(unix))]
    fn write_at(&self, bytes: &[u8], off: u64) {
        use std::io::{Seek, SeekFrom, Write};
        let _g = self.seek_lock.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off)).expect("spill seek failed");
        f.write_all(bytes).expect("spill write failed");
    }

    #[cfg(not(unix))]
    fn read_at(&self, bytes: &mut [u8], off: u64) {
        use std::io::{Read, Seek, SeekFrom};
        let _g = self.seek_lock.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off)).expect("spill seek failed");
        f.read_exact(bytes).expect("spill read failed");
    }
}

use crate::tier;

#[cfg(test)]
mod tests {
    use super::*;

    fn page(seed: u64) -> [u64; PAGE_WORDS] {
        let mut p = [0u64; PAGE_WORDS];
        for (i, w) in p.iter_mut().enumerate() {
            *w = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
        }
        p
    }

    #[test]
    fn append_then_read_round_trips() {
        let s = SpillStore::create().unwrap();
        let a = page(1);
        let b = page(2);
        let off_a = s.append_page(&a);
        let off_b = s.append_page(&b);
        assert_ne!(off_a, off_b);
        let mut back = [0u64; PAGE_WORDS];
        s.read_page(off_a, &mut back);
        assert_eq!(back, a);
        s.read_page(off_b, &mut back);
        assert_eq!(back, b);
        assert_eq!(s.read_word(off_b, 17), b[17]);
        assert_eq!(s.bytes(), 2 * PAGE_BYTES as u64);
    }

    #[test]
    fn slots_are_immutable_under_reappend() {
        let s = SpillStore::create().unwrap();
        let v1 = page(7);
        let off1 = s.append_page(&v1);
        // "Re-evicting" the same logical page appends a new slot; the old
        // one still reads back its original contents.
        let v2 = page(8);
        let off2 = s.append_page(&v2);
        let mut back = [0u64; PAGE_WORDS];
        s.read_page(off1, &mut back);
        assert_eq!(back, v1);
        s.read_page(off2, &mut back);
        assert_eq!(back, v2);
    }

    #[test]
    fn concurrent_appends_reserve_disjoint_slots() {
        let s = SpillStore::create().unwrap();
        let mut offs: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let s = Arc::clone(&s);
                    scope.spawn(move || {
                        (0..64u64)
                            .map(|i| (s.append_page(&page(t * 1000 + i)), t * 1000 + i))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .map(|(off, seed)| {
                    let mut back = [0u64; PAGE_WORDS];
                    s.read_page(off, &mut back);
                    assert_eq!(back, page(seed));
                    off
                })
                .collect()
        });
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 256, "every append got its own slot");
    }

    #[test]
    fn named_store_survives_on_disk_and_reopens() {
        let dir = std::env::temp_dir().join(format!("cwsp-named-spill-{}", std::process::id()));
        let (s, path) = SpillStore::create_named(&dir, "journal").unwrap();
        assert!(!s.uses_mmap(), "named stores must stay dense on disk");
        let p = page(11);
        let off = s.append_page(&p);
        drop(s);
        // The file is still there (not unlinked) and exactly one page long.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), PAGE_BYTES as u64);
        let r = SpillStore::open_readonly(&path).unwrap();
        assert_eq!(r.bytes(), PAGE_BYTES as u64);
        let mut back = [0u64; PAGE_WORDS];
        r.read_page(off, &mut back);
        assert_eq!(back, p);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn fallback_io_works_without_mmap() {
        // Build a store and force the positional-I/O path by reading past
        // what the map would cover only if the map is absent; instead just
        // exercise write_at/read_at directly through a mapless store.
        let s = SpillStore::create().unwrap();
        let p = page(3);
        let off = s.append_page(&p);
        let mut back = [0u64; PAGE_WORDS];
        // read_at goes to the file; under mmap the data is visible there
        // too (MAP_SHARED), so this checks coherence of both paths.
        s.read_at(
            unsafe { std::slice::from_raw_parts_mut(back.as_mut_ptr() as *mut u8, PAGE_BYTES) },
            off,
        );
        assert_eq!(back, p);
    }
}
