//! Dynamic data-race oracle: vector-clock (FastTrack-style) detection over
//! randomly scheduled multi-core replays.
//!
//! The static race detector in `cwsp-analyzer` over-approximates: its
//! contract is *static-clean ⇒ no dynamic race under any schedule*. This
//! module is the other side of that differential test — it executes a module
//! on `cores` interleaved interpreters over one shared memory, interleaving
//! steps under a seeded pseudo-random scheduler, and checks every
//! program-data access against per-word vector clocks:
//!
//! * each thread `t` carries a clock `VC_t`;
//! * each touched program-data word keeps the clocks of its last plain
//!   writes (`wp`), plain reads (`rp`), atomic accesses (`wa`), and a sync
//!   clock `m` (the release store the next acquirer joins);
//! * a plain access races with any prior conflicting access by another
//!   thread that is not ordered before it (`clock[u] > VC_t[u]`); mixed
//!   atomic/plain pairs conflict too — only *both-atomic* pairs are exempt,
//!   mirroring the static rule;
//! * an atomic read-modify-write acquires (`VC_t ⊔= m`) and releases
//!   (`m = VC_t`) through its word, so lock hand-offs and message-passing
//!   flags produce genuine happens-before edges; `Fence` synchronizes
//!   through a global sequentially-consistent fence clock.
//!
//! Only [`layout::is_program_data`] addresses participate: per-core stacks,
//! checkpoint slots, and hardware metadata are thread-private or
//! hardware-owned by construction and the static detector skips them for
//! the same reason.
//!
//! One replay explores one interleaving; [`check_module`] sweeps `schedules`
//! seeds and unions the findings. A clean sweep is evidence, not proof — the
//! differential suite pairs it with the static detector's soundness
//! direction, which *is* a proof obligation.

use cwsp_ir::decoded::DecodedModule;
use cwsp_ir::interp::{EffectKind, Interp, InterpError, StepEffect};
use cwsp_ir::layout;
use cwsp_ir::memory::Memory;
use cwsp_ir::module::Module;
use cwsp_ir::types::Word;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// SplitMix64 — local copy of the zero-dependency PRNG used across the
/// workspace (`cwsp-sim` does not depend on `cwsp-core`, and the scheduler
/// only needs raw draws).
#[derive(Debug, Clone, Copy)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform pick in `0..n` (n small; modulo bias is irrelevant for
    /// schedule exploration).
    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A vector clock: `vc[t]` is the last event of thread `t` ordered before
/// the owner.
type VC = Vec<u64>;

fn vc_join(dst: &mut VC, src: &VC) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// `clock` holds an event per thread; true when some *other* thread's entry
/// is ahead of `vc` — i.e. that event is not ordered before the current one.
fn unordered(clock: &VC, vc: &VC, me: usize) -> Option<usize> {
    clock
        .iter()
        .enumerate()
        .find(|&(u, &c)| u != me && c > vc[u])
        .map(|(u, _)| u)
}

/// Per-word access history.
#[derive(Debug, Clone)]
struct WordState {
    /// Clock of the last plain write per thread.
    wp: VC,
    /// Clock of the last plain read per thread.
    rp: VC,
    /// Clock of the last atomic access per thread.
    wa: VC,
    /// Sync clock: the releasing thread's vector clock at its last atomic
    /// on this word (what the next atomic on the word acquires).
    m: VC,
}

impl WordState {
    fn new(n: usize) -> Self {
        WordState {
            wp: vec![0; n],
            rp: vec![0; n],
            wa: vec![0; n],
            m: vec![0; n],
        }
    }
}

/// How a dynamic race manifested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DynRaceKind {
    /// Two plain accesses, at least one write.
    PlainPlain,
    /// A plain access against an atomic by another thread (mixed access).
    MixedAtomic,
}

/// One dynamic race: two unordered conflicting accesses to `addr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynRace {
    /// The racing word.
    pub addr: Word,
    /// The thread whose access detected the race.
    pub tid: usize,
    /// The thread whose earlier access was unordered with it.
    pub other: usize,
    /// Plain/plain or mixed plain/atomic.
    pub kind: DynRaceKind,
    /// Whether the detecting access was a write.
    pub write: bool,
    /// The schedule seed that exposed the race.
    pub seed: u64,
}

impl fmt::Display for DynRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dynamic race at {:#x}: core {} {} unordered with core {} ({:?}, seed {})",
            self.addr,
            self.tid,
            if self.write { "write" } else { "read" },
            self.other,
            self.kind,
            self.seed,
        )
    }
}

/// Outcome of one scheduled replay.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Races found in this interleaving (first [`MAX_RACES_PER_SCHEDULE`]).
    pub races: Vec<DynRace>,
    /// Total dynamic instructions across all cores.
    pub steps: u64,
    /// Whether every core ran to halt within the step budget.
    pub completed: bool,
}

/// Aggregate outcome of a multi-seed sweep.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Union of races across schedules, deduplicated by
    /// `(addr, tid, other, kind)`.
    pub races: Vec<DynRace>,
    /// Schedules executed.
    pub schedules: usize,
    /// Total dynamic instructions across all schedules.
    pub total_steps: u64,
    /// Schedules that did not run every core to halt within budget.
    pub incomplete: usize,
}

impl OracleReport {
    /// No race in any explored interleaving.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }
}

/// Oracle configuration.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Interleaved cores; each runs the entry with its core index as the
    /// first argument (the machine's convention).
    pub cores: usize,
    /// Independent seeded schedules to explore.
    pub schedules: usize,
    /// Base seed; schedule `i` runs under `seed + i`.
    pub seed: u64,
    /// Per-schedule total step budget across all cores.
    pub max_steps: u64,
    /// Longest run of consecutive steps one core may take before the
    /// scheduler forcibly rotates (1 = step-level interleaving).
    pub max_quantum: u32,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            cores: 2,
            schedules: 8,
            seed: 0xC0DE,
            max_steps: 2_000_000,
            // Mixes step-level interleavings with short bursts; the machine
            // itself steps cores in lock-step, which quantum 1 covers.
            max_quantum: 4,
        }
    }
}

/// Cap on recorded races per schedule (detection continues; recording
/// stops — a racy program can otherwise produce one report per iteration).
pub const MAX_RACES_PER_SCHEDULE: usize = 16;

/// Vector-clock detector state shared by one replay.
struct Detector {
    n: usize,
    vcs: Vec<VC>,
    words: HashMap<Word, WordState>,
    /// Global fence clock (sequentially-consistent fence semantics).
    fence: VC,
    races: Vec<DynRace>,
    seed: u64,
}

impl Detector {
    fn new(n: usize, seed: u64) -> Self {
        let mut vcs: Vec<VC> = vec![vec![0; n]; n];
        for (t, vc) in vcs.iter_mut().enumerate() {
            vc[t] = 1; // each thread starts in its own epoch
        }
        Detector {
            n,
            vcs,
            words: HashMap::new(),
            fence: vec![0; n],
            races: Vec::new(),
            seed,
        }
    }

    fn report(&mut self, addr: Word, tid: usize, other: usize, kind: DynRaceKind, write: bool) {
        if self.races.len() < MAX_RACES_PER_SCHEDULE {
            self.races.push(DynRace {
                addr,
                tid,
                other,
                kind,
                write,
                seed: self.seed,
            });
        }
    }

    fn plain_read(&mut self, tid: usize, addr: Word) {
        if !layout::is_program_data(addr) {
            return;
        }
        let n = self.n;
        let vc = &self.vcs[tid];
        let w = self.words.entry(addr).or_insert_with(|| WordState::new(n));
        let mut hit = None;
        if let Some(u) = unordered(&w.wp, vc, tid) {
            hit = Some((u, DynRaceKind::PlainPlain));
        } else if let Some(u) = unordered(&w.wa, vc, tid) {
            hit = Some((u, DynRaceKind::MixedAtomic));
        }
        w.rp[tid] = vc[tid];
        if let Some((u, kind)) = hit {
            self.report(addr, tid, u, kind, false);
        }
    }

    fn plain_write(&mut self, tid: usize, addr: Word) {
        if !layout::is_program_data(addr) {
            return;
        }
        let n = self.n;
        let vc = &self.vcs[tid];
        let w = self.words.entry(addr).or_insert_with(|| WordState::new(n));
        let mut hit = None;
        if let Some(u) = unordered(&w.wp, vc, tid) {
            hit = Some((u, DynRaceKind::PlainPlain));
        } else if let Some(u) = unordered(&w.rp, vc, tid) {
            hit = Some((u, DynRaceKind::PlainPlain));
        } else if let Some(u) = unordered(&w.wa, vc, tid) {
            hit = Some((u, DynRaceKind::MixedAtomic));
        }
        w.wp[tid] = vc[tid];
        if let Some((u, kind)) = hit {
            self.report(addr, tid, u, kind, true);
        }
    }

    /// Atomic read-modify-write: checks against *plain* history (mixed
    /// races), then acquires and releases through the word's sync clock.
    fn atomic(&mut self, tid: usize, addr: Word) {
        if !layout::is_program_data(addr) {
            return;
        }
        let n = self.n;
        let mut hit = None;
        {
            let vc = &self.vcs[tid];
            let w = self.words.entry(addr).or_insert_with(|| WordState::new(n));
            if let Some(u) = unordered(&w.wp, vc, tid) {
                hit = Some((u, DynRaceKind::MixedAtomic));
            } else if let Some(u) = unordered(&w.rp, vc, tid) {
                hit = Some((u, DynRaceKind::MixedAtomic));
            }
        }
        // Acquire: join the word's sync clock; release: publish our clock.
        let w = self.words.get_mut(&addr).expect("entry created above");
        vc_join(&mut self.vcs[tid], &w.m);
        w.wa[tid] = self.vcs[tid][tid];
        w.m.clone_from(&self.vcs[tid]);
        self.vcs[tid][tid] += 1;
        if let Some((u, kind)) = hit {
            self.report(addr, tid, u, kind, true);
        }
    }

    /// Sequentially-consistent fence: joins and publishes the global fence
    /// clock.
    fn fence(&mut self, tid: usize) {
        let vc = &mut self.vcs[tid];
        vc_join(vc, &self.fence);
        vc_join(&mut self.fence, vc);
        vc[tid] += 1;
    }

    /// Route one step effect through the detector.
    fn observe(&mut self, tid: usize, eff: &StepEffect) {
        match eff.kind {
            EffectKind::Atomic => {
                // One atomic instruction touches exactly one word; reads and
                // (possibly absent, for a failed CAS) writes name the same
                // address.
                if let Some(&a) = eff.reads.first() {
                    self.atomic(tid, a);
                }
            }
            EffectKind::Fence => self.fence(tid),
            _ => {
                for &a in &eff.reads {
                    self.plain_read(tid, a);
                }
                for &(a, _) in &eff.writes {
                    self.plain_write(tid, a);
                }
            }
        }
    }
}

/// Execute one seeded interleaving of `module` on `cores` and report every
/// race the vector clocks detect.
///
/// # Errors
/// Propagates interpreter traps; [`InterpError::NoEntry`] if the module has
/// no entry.
pub fn run_schedule(
    module: &Module,
    cores: usize,
    seed: u64,
    max_steps: u64,
    max_quantum: u32,
) -> Result<ScheduleOutcome, InterpError> {
    let cores = cores.max(1);
    let dec = Arc::new(DecodedModule::new(module));
    let mut mem = Memory::new();
    // `with_args*` constructors do not apply global initializers (they are
    // image-preserving for recovery); a fresh oracle run wants them.
    for g in module.globals() {
        for (i, &v) in g.init.iter().enumerate() {
            mem.store(g.addr + i as Word * 8, v);
        }
    }
    let mut interps = Vec::with_capacity(cores);
    for core in 0..cores {
        let args = [core as Word];
        interps.push(Interp::with_args_shared(
            module,
            Arc::clone(&dec),
            core,
            &mut mem,
            &args,
        )?);
    }

    let mut rng = SplitMix64::new(seed ^ 0x5EED_0F0F_5C4E_D01E);
    let mut det = Detector::new(cores, seed);
    let mut eff = StepEffect::default();
    let mut steps = 0u64;
    let max_quantum = max_quantum.max(1);
    while steps < max_steps {
        let live: Vec<usize> = (0..cores).filter(|&c| !interps[c].is_halted()).collect();
        if live.is_empty() {
            break;
        }
        let tid = live[rng.pick(live.len())];
        // A random-length quantum: mixes fine-grained interleavings with
        // machine-like rotation in the same schedule space.
        let quantum = 1 + rng.pick(max_quantum as usize) as u32;
        for _ in 0..quantum {
            if interps[tid].is_halted() || steps >= max_steps {
                break;
            }
            interps[tid].step_into(&mut mem, &mut eff)?;
            steps += 1;
            det.observe(tid, &eff);
        }
    }
    let completed = interps.iter().all(Interp::is_halted);
    Ok(ScheduleOutcome {
        races: det.races,
        steps,
        completed,
    })
}

/// Sweep `cfg.schedules` seeded interleavings and union the races found.
/// Schedules fan out over [`crate::threaded::default_threads`] host threads
/// (`CWSP_MC_THREADS`); each schedule is an independent seeded replay and the
/// findings merge in seed order, so the report is byte-identical at any
/// thread count.
///
/// # Errors
/// Propagates the first interpreter trap from any schedule (lowest seed
/// index wins when several trap).
pub fn check_module(module: &Module, cfg: &OracleConfig) -> Result<OracleReport, InterpError> {
    check_module_threaded(module, cfg, crate::threaded::default_threads())
}

/// [`check_module`] with an explicit host thread count (for tests that pin
/// the fan-out rather than reading `CWSP_MC_THREADS`).
///
/// # Errors
/// Propagates the first interpreter trap from any schedule, in seed order.
pub fn check_module_threaded(
    module: &Module,
    cfg: &OracleConfig,
    threads: usize,
) -> Result<OracleReport, InterpError> {
    let one = |i: usize| {
        run_schedule(
            module,
            cfg.cores,
            cfg.seed.wrapping_add(i as u64),
            cfg.max_steps,
            cfg.max_quantum,
        )
    };
    let threads = threads.max(1).min(cfg.schedules.max(1));
    let outcomes: Vec<Result<ScheduleOutcome, InterpError>> = if threads <= 1 {
        (0..cfg.schedules).map(one).collect()
    } else {
        // Workers pull seed indices off a shared cursor; results land in a
        // slot per seed, so the merge below never sees host-schedule order.
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<ScheduleOutcome, InterpError>>> =
            (0..cfg.schedules).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= cfg.schedules {
                                break;
                            }
                            local.push((i, one(i)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("oracle worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every seed covered"))
            .collect()
    };
    let mut report = OracleReport {
        schedules: cfg.schedules,
        ..OracleReport::default()
    };
    let mut seen: std::collections::HashSet<(Word, usize, usize, DynRaceKind, bool)> =
        std::collections::HashSet::new();
    for out in outcomes {
        let out = out?;
        report.total_steps += out.steps;
        if !out.completed {
            report.incomplete += 1;
        }
        for r in out.races {
            if seen.insert((r.addr, r.tid, r.other, r.kind, r.write)) {
                report.races.push(r);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{AtomicOp, BinOp, Inst, MemRef, Operand};

    fn sweep(m: &Module, cores: usize) -> OracleReport {
        check_module(
            m,
            &OracleConfig {
                cores,
                schedules: 8,
                ..OracleConfig::default()
            },
        )
        .expect("oracle run")
    }

    #[test]
    fn drf_partition_sum_is_oracle_clean() {
        let (m, _, _, _) = cwsp_workloads::multicore::drf_partition_sum(3);
        let rep = sweep(&m, 3);
        assert!(rep.is_clean(), "{:?}", rep.races);
        assert_eq!(rep.incomplete, 0);
        assert!(rep.total_steps > 0);
    }

    #[test]
    fn spinlock_ledger_is_oracle_clean() {
        let (m, _, _) = cwsp_workloads::multicore::spinlock_ledger(3);
        let rep = sweep(&m, 3);
        assert!(rep.is_clean(), "{:?}", rep.races);
        assert_eq!(rep.incomplete, 0);
    }

    #[test]
    fn unsynced_counter_increment_races() {
        // Classic lost update: load; add; store with no lock.
        let mut m = Module::new("lost-update");
        let g = m.add_global("ctr", 1);
        let a = m.global_addr(g);
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let (_, exit) =
            cwsp_ir::builder::build_counted_loop(&mut b, e, Operand::imm(8), |b, bb, _| {
                let v = b.load(bb, MemRef::abs(a));
                let nv = b.bin(bb, BinOp::Add, v.into(), Operand::imm(1));
                b.store(bb, nv.into(), MemRef::abs(a));
            });
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let rep = sweep(&m, 2);
        assert!(!rep.is_clean(), "unsynchronized increments must race");
        let r = &rep.races[0];
        assert!(layout::is_program_data(r.addr));
        assert_ne!(r.tid, r.other);
    }

    #[test]
    fn plain_flag_publication_is_a_mixed_race() {
        // Writer stores mail then *plain-stores* the flag the reader spins on
        // atomically: the flag word itself is a mixed atomic/plain race.
        let mut m = Module::new("plain-flag");
        let mail = m.add_global("mail", 1);
        let flag = m.add_global("flag", 1);
        let (ma, fa) = (m.global_addr(mail), m.global_addr(flag));
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let wr = b.block();
        let spin = b.block();
        let rd = b.block();
        let tid = b.param(0);
        let c = b.bin(e, BinOp::CmpEq, tid.into(), Operand::imm(0));
        b.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: wr,
                if_false: spin,
            },
        );
        b.push(wr, Inst::store(Operand::imm(7), MemRef::abs(ma)));
        b.push(wr, Inst::store(Operand::imm(1), MemRef::abs(fa)));
        b.push(wr, Inst::Halt);
        let gotten = b.vreg();
        b.push(
            spin,
            Inst::AtomicRmw {
                op: AtomicOp::FetchAdd,
                dst: gotten,
                addr: MemRef::abs(fa),
                src: Operand::imm(0),
                expected: Operand::imm(0),
            },
        );
        b.push(
            spin,
            Inst::CondBr {
                cond: gotten.into(),
                if_true: rd,
                if_false: spin,
            },
        );
        let v = b.load(rd, MemRef::abs(ma));
        b.store(rd, v.into(), MemRef::abs(ma));
        b.push(rd, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let rep = sweep(&m, 2);
        assert!(
            rep.races
                .iter()
                .any(|r| r.addr == fa && r.kind == DynRaceKind::MixedAtomic),
            "{:?}",
            rep.races
        );
    }

    #[test]
    fn atomic_handoff_orders_the_mailbox() {
        // Same shape, but the publication is an atomic Swap: the acquire
        // join must order the reader's mail load behind the writer's store.
        let mut m = Module::new("handoff");
        let mail = m.add_global("mail", 1);
        let flag = m.add_global("flag", 1);
        let (ma, fa) = (m.global_addr(mail), m.global_addr(flag));
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let wr = b.block();
        let spin = b.block();
        let rd = b.block();
        let tid = b.param(0);
        let c = b.bin(e, BinOp::CmpEq, tid.into(), Operand::imm(0));
        b.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: wr,
                if_false: spin,
            },
        );
        b.push(wr, Inst::store(Operand::imm(7), MemRef::abs(ma)));
        let d = b.vreg();
        b.push(
            wr,
            Inst::AtomicRmw {
                op: AtomicOp::Swap,
                dst: d,
                addr: MemRef::abs(fa),
                src: Operand::imm(1),
                expected: Operand::imm(0),
            },
        );
        b.push(wr, Inst::Halt);
        let gotten = b.vreg();
        b.push(
            spin,
            Inst::AtomicRmw {
                op: AtomicOp::FetchAdd,
                dst: gotten,
                addr: MemRef::abs(fa),
                src: Operand::imm(0),
                expected: Operand::imm(0),
            },
        );
        b.push(
            spin,
            Inst::CondBr {
                cond: gotten.into(),
                if_true: rd,
                if_false: spin,
            },
        );
        let v = b.load(rd, MemRef::abs(ma));
        b.store(rd, v.into(), MemRef::abs(ma));
        b.push(rd, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let rep = sweep(&m, 2);
        assert!(rep.is_clean(), "{:?}", rep.races);
        assert_eq!(rep.incomplete, 0, "spin must terminate under the budget");
    }

    #[test]
    fn threaded_sweep_is_byte_identical_to_serial() {
        // Racy module so the reports are non-trivial: the merge in seed
        // order must produce the same races, in the same order, at any
        // host thread count.
        let mut m = Module::new("lost-update-threaded");
        let g = m.add_global("ctr", 1);
        let a = m.global_addr(g);
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let (_, exit) =
            cwsp_ir::builder::build_counted_loop(&mut b, e, Operand::imm(8), |b, bb, _| {
                let v = b.load(bb, MemRef::abs(a));
                let nv = b.bin(bb, BinOp::Add, v.into(), Operand::imm(1));
                b.store(bb, nv.into(), MemRef::abs(a));
            });
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let cfg = OracleConfig {
            cores: 2,
            schedules: 8,
            ..OracleConfig::default()
        };
        let serial = check_module_threaded(&m, &cfg, 1).expect("serial sweep");
        for threads in [2, 4, 8] {
            let par = check_module_threaded(&m, &cfg, threads).expect("threaded sweep");
            assert_eq!(serial.races, par.races, "threads={threads}");
            assert_eq!(serial.total_steps, par.total_steps);
            assert_eq!(serial.incomplete, par.incomplete);
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let (m, _, _, _) = cwsp_workloads::multicore::drf_partition_sum(2);
        let a = run_schedule(&m, 2, 42, 2_000_000, 4).unwrap();
        let b = run_schedule(&m, 2, 42, 2_000_000, 4).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.races, b.races);
    }

    #[test]
    fn stack_and_ckpt_traffic_is_ignored() {
        // Both cores call a helper (frame stores to per-core stacks) and
        // checkpoint a register — none of it is program data.
        let mut m = Module::new("private");
        let mut hb = FunctionBuilder::new("helper", 1);
        let he = hb.entry();
        let p = hb.param(0);
        hb.push(
            he,
            Inst::Ret {
                val: Some(p.into()),
            },
        );
        let h = m.add_function(hb.build());
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let tid = b.param(0);
        let r = b.vreg();
        b.push(
            e,
            Inst::Call {
                func: h,
                args: vec![tid.into()],
                ret: Some(r),
                save_regs: vec![tid],
            },
        );
        b.push(e, Inst::Ckpt { reg: r });
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let rep = sweep(&m, 3);
        assert!(rep.is_clean(), "{:?}", rep.races);
    }
}
