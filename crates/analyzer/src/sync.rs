//! Slot-sync analysis: which registers provably equal their NVM checkpoint
//! slot at each program point, on **every** path.
//!
//! A recovery slice restoring register `r` from its slot is only correct if
//! the slot holds `r`'s current value whenever execution crosses the
//! boundary. `Ckpt r` establishes that equality; any redefinition of `r`
//! breaks it until the next `Ckpt r`. This is a forward *must* dataflow
//! (meet = set intersection, unvisited = ⊤/universe), the static analogue of
//! the stale-slot detection in `cwsp_compiler::verify::check_slices`.
//!
//! Plain `Store`s do not kill sync facts: program stores target program
//! data, and stores that provably hit the reserved checkpoint/metadata
//! ranges are reported separately as `L-reserved-store` errors.

use crate::diag::{PathWitness, WitnessStep};
use cwsp_compiler::liveness::{defs, RegSet};
use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::Inst;
use cwsp_ir::pretty::fmt_inst;
use cwsp_ir::types::Reg;

/// Per-function slot-sync result: synced register sets at each block entry
/// (`None` = block unreachable / ⊤).
#[derive(Debug, Clone)]
pub struct SlotSync {
    block_in: Vec<Option<RegSet>>,
    nregs: usize,
}

fn transfer(state: &mut RegSet, inst: &Inst) {
    for d in defs(inst) {
        state.remove(d);
    }
    if let Inst::Ckpt { reg } = inst {
        state.insert(*reg);
    }
}

fn intersect_with(a: &mut RegSet, b: &RegSet, nregs: usize) -> bool {
    let mut changed = false;
    for r in (0..nregs as u32).map(Reg) {
        if a.contains(r) && !b.contains(r) {
            a.remove(r);
            changed = true;
        }
    }
    changed
}

impl SlotSync {
    /// Run the analysis to fixpoint on `f`. Function entry starts with *no*
    /// register synced: parameters arrive via the call frame, not via slots.
    pub fn compute(f: &Function) -> Self {
        let nregs = f.reg_count as usize;
        let mut block_in: Vec<Option<RegSet>> = vec![None; f.blocks.len()];
        block_in[f.entry().index()] = Some(RegSet::new(nregs));

        let rpo = cfg::reverse_post_order(f);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let Some(mut state) = block_in[b.index()].clone() else {
                    continue;
                };
                for inst in &f.block(b).insts {
                    transfer(&mut state, inst);
                }
                for s in cfg::successors(f, b) {
                    match &mut block_in[s.index()] {
                        cur @ None => {
                            *cur = Some(state.clone());
                            changed = true;
                        }
                        Some(cur) => {
                            changed |= intersect_with(cur, &state, nregs);
                        }
                    }
                }
            }
        }
        SlotSync { block_in, nregs }
    }

    /// Registers provably slot-synced immediately before instruction `idx`
    /// of block `b`; `None` when the block is unreachable.
    pub fn synced_before(&self, f: &Function, b: BlockId, idx: usize) -> Option<RegSet> {
        let mut state = self.block_in[b.index()].clone()?;
        for inst in f.block(b).insts.iter().take(idx) {
            transfer(&mut state, inst);
        }
        Some(state)
    }

    /// Synced set at the *exit* of block `b`.
    fn synced_out(&self, f: &Function, b: BlockId) -> Option<RegSet> {
        self.synced_before(f, b, f.block(b).insts.len())
    }

    /// Reconstruct a concrete path explaining why `r` is **not** synced at
    /// `(b, idx)`: walk backwards to the clobbering definition (or function
    /// entry, if `r` was never checkpointed), then present the path forward.
    ///
    /// Only meaningful when `r ∉ synced_before(f, b, idx)`.
    pub fn witness_unsynced(&self, f: &Function, b: BlockId, idx: usize, r: Reg) -> PathWitness {
        let preds = cfg::predecessors(f);
        // Steps collected in reverse (violation first), flipped at the end.
        let mut steps: Vec<WitnessStep> = vec![WitnessStep {
            block: b.0,
            idx,
            note: format!("boundary requires {r} from its checkpoint slot"),
        }];
        let mut visited = vec![false; f.blocks.len()];
        let mut cur = b;
        let mut cur_end = idx; // scan insts[0..cur_end] of `cur` backwards
        loop {
            visited[cur.index()] = true;
            let insts = &f.block(cur).insts;
            let mut found = false;
            for i in (0..cur_end.min(insts.len())).rev() {
                let inst = &insts[i];
                if matches!(inst, Inst::Ckpt { reg } if *reg == r) {
                    // A checkpoint on this very path — the fact was killed
                    // later; keep scanning for the killing def above `idx`
                    // would have found it first, so this means the analysis
                    // lost the fact at a join. Report the join conservatively.
                    steps.push(WitnessStep {
                        block: cur.0,
                        idx: i,
                        note: format!(
                            "{} — synced here, but another path into a later join is not",
                            fmt_inst(inst)
                        ),
                    });
                    found = true;
                    break;
                }
                if defs(inst).contains(&r) {
                    steps.push(WitnessStep {
                        block: cur.0,
                        idx: i,
                        note: format!(
                            "{} — clobbers {r} with no later checkpoint on this path",
                            fmt_inst(inst)
                        ),
                    });
                    found = true;
                    break;
                }
            }
            if found {
                break;
            }
            // No event in this block: move to a predecessor whose out-state
            // also lacks `r` (one must exist, or the in-state would have it).
            let next = preds[cur.index()]
                .iter()
                .find(|p| {
                    !visited[p.index()]
                        && match self.synced_out(f, **p) {
                            Some(out) => !out.contains(r),
                            None => false,
                        }
                })
                .copied();
            match next {
                Some(p) => {
                    steps.push(WitnessStep {
                        block: cur.0,
                        idx: 0,
                        note: format!("entered bb{} with {r} unsynced", cur.0),
                    });
                    cur = p;
                    cur_end = f.block(p).insts.len();
                }
                None => {
                    steps.push(WitnessStep {
                        block: cur.0,
                        idx: 0,
                        note: format!("{r} never checkpointed since function entry"),
                    });
                    break;
                }
            }
        }
        steps.reverse();
        PathWitness::elided(steps, 14)
    }

    /// Number of registers this analysis is sized for.
    pub fn nregs(&self) -> usize {
        self.nregs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::Operand;

    #[test]
    fn ckpt_establishes_and_def_kills_sync() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(5));
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(
            e,
            Inst::Mov {
                dst: r0,
                src: Operand::imm(6),
            },
        );
        b.push(e, Inst::Halt);
        let f = b.build();
        let ss = SlotSync::compute(&f);
        assert!(!ss.synced_before(&f, e, 1).unwrap().contains(r0));
        assert!(ss.synced_before(&f, e, 2).unwrap().contains(r0));
        assert!(
            !ss.synced_before(&f, e, 3).unwrap().contains(r0),
            "redefinition kills the sync fact"
        );
    }

    #[test]
    fn join_intersects_sync_facts() {
        // Only one arm checkpoints r1 -> not synced at the join.
        let mut bld = FunctionBuilder::new("f", 1);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        let r1 = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(a, Inst::Ckpt { reg: r1 });
        bld.push(a, Inst::Br { target: join });
        bld.push(b2, Inst::Br { target: join });
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let ss = SlotSync::compute(&f);
        assert!(!ss.synced_before(&f, join, 0).unwrap().contains(r1));

        let w = ss.witness_unsynced(&f, join, 0, r1);
        assert!(!w.steps.is_empty());
        let text: Vec<&str> = w.steps.iter().map(|s| s.note.as_str()).collect();
        assert!(
            text.iter()
                .any(|n| n.contains("never checkpointed") || n.contains("unsynced")),
            "{text:?}"
        );
        assert!(
            w.steps.last().unwrap().note.contains("checkpoint slot"),
            "witness ends at the requiring boundary"
        );
    }

    #[test]
    fn both_arms_checkpointing_survives_the_join() {
        let mut bld = FunctionBuilder::new("f", 1);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        let r1 = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: a,
                if_false: b2,
            },
        );
        for arm in [a, b2] {
            bld.push(arm, Inst::Ckpt { reg: r1 });
            bld.push(arm, Inst::Br { target: join });
        }
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let ss = SlotSync::compute(&f);
        assert!(ss.synced_before(&f, join, 0).unwrap().contains(r1));
    }

    #[test]
    fn call_save_regs_kill_sync() {
        use cwsp_ir::module::FuncId;
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(1));
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(
            e,
            Inst::Call {
                func: FuncId(0),
                args: vec![],
                ret: None,
                save_regs: vec![r0],
            },
        );
        b.push(e, Inst::Halt);
        let f = b.build();
        let ss = SlotSync::compute(&f);
        assert!(ss.synced_before(&f, e, 2).unwrap().contains(r0));
        assert!(!ss.synced_before(&f, e, 3).unwrap().contains(r0));
    }

    #[test]
    fn witness_points_at_clobbering_def() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(5));
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(
            e,
            Inst::Mov {
                dst: r0,
                src: Operand::imm(6),
            },
        );
        b.push(e, Inst::Halt);
        let f = b.build();
        let ss = SlotSync::compute(&f);
        let w = ss.witness_unsynced(&f, e, 3, r0);
        assert!(
            w.steps.iter().any(|s| s.note.contains("clobbers r0")),
            "{w:?}"
        );
        assert_eq!(w.steps.iter().filter(|s| s.idx == 2).count(), 1);
    }

    #[test]
    fn loop_body_redefinition_unsyncs_header() {
        // header is a join (entry + latch); body redefines r without ckpt.
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let header = bld.block();
        let body = bld.block();
        let exit = bld.block();
        let r = bld.vreg();
        let c = bld.vreg();
        bld.push(e, Inst::Ckpt { reg: r });
        bld.push(e, Inst::Br { target: header });
        bld.push(
            header,
            Inst::CondBr {
                cond: c.into(),
                if_true: body,
                if_false: exit,
            },
        );
        bld.push(
            body,
            Inst::Mov {
                dst: r,
                src: Operand::imm(1),
            },
        );
        bld.push(body, Inst::Br { target: header });
        bld.push(exit, Inst::Halt);
        let f = bld.build();
        let ss = SlotSync::compute(&f);
        assert!(
            !ss.synced_before(&f, header, 0).unwrap().contains(r),
            "loop-carried clobber must kill the fact at the header"
        );
    }
}
