//! Figure 19: average dynamic instructions per region (paper: 38.15 average;
//! with a 16-entry RBT the oldest region's persistence overlaps ~572
//! instructions of execution).

use cwsp_bench::{measure_all, print_results, scheme_stats};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig19_region_size", run);
}

fn run() {
    let cfg = SimConfig::default();
    let apps = cwsp_workloads::all();
    let results = measure_all(&apps, |w| {
        scheme_stats(w, &cfg, Scheme::cwsp(), CompileOptions::default()).avg_region_insts()
    });
    print_results(
        "Fig 19: dynamic instructions per region (paper avg: 38.15)",
        "insts",
        &results,
    );
    // Second pass for the distribution: every request is a memo hit, so this
    // costs nothing beyond the parallel sweep above.
    let mut hist = [0u64; 7];
    for w in &apps {
        let s = scheme_stats(w, &cfg, Scheme::cwsp(), CompileOptions::default());
        for (h, v) in hist.iter_mut().zip(s.region_size_hist) {
            *h += v;
        }
    }
    println!("\nregion-size distribution across all apps:");
    let total: u64 = hist.iter().sum();
    for (label, n) in cwsp_sim::stats::SimStats::REGION_BUCKETS.iter().zip(hist) {
        println!(
            "   {label:<8} {:>6.1}%",
            n as f64 * 100.0 / total.max(1) as f64
        );
    }
}
