//! # cwsp-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§IX); see
//! DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
//! values. This library holds the shared plumbing: run a workload to
//! completion under a scheme, normalize against the uninstrumented baseline,
//! and print figure-shaped tables.
//!
//! Measurements route through [`engine`] — a parallel, memoizing experiment
//! engine — so figure binaries fan out over all cores, share baselines and
//! compiled modules, and reuse results across processes via a JSON cache
//! under `results/cache/`. Per-figure stdout stays byte-identical to the old
//! serial harness.

pub mod engine;
pub mod fingerprint;
pub mod forensics;
pub mod fuzz;
pub mod json;

use cwsp_compiler::pipeline::CompileOptions;
use cwsp_ir::interp::InterpError;
use cwsp_sim::config::SimConfig;
use cwsp_sim::machine::Machine;
use cwsp_sim::scheme::Scheme;
use cwsp_sim::stats::SimStats;
use cwsp_workloads::{Suite, Workload};

pub use engine::{engine, harness_main, par_map, worker_count};

/// Every figure/table binary that owns a committed golden under `results/`.
/// One entry per `results/<name>.txt`; `tests/figure_registry.rs` asserts the
/// golden directory and this list never drift apart (the `cwsp-lint` and
/// `profile` binaries are diagnostic tools, not figures, and have no
/// goldens). Keep sorted.
pub const FIGURES: &[&str] = &[
    "ablation_granularity",
    "ablation_pruning_tiers",
    "fig01_cxl_hierarchy",
    "fig06_wb_occupancy",
    "fig08_wpq_hits",
    "fig13_overhead",
    "fig14_wsp_comparison",
    "fig15_ablation",
    "fig17_cxl_devices",
    "fig18_psp_comparison",
    "fig19_region_size",
    "fig20_l3_hierarchy",
    "fig21_bandwidth_sweep",
    "fig22_rbt_sweep",
    "fig23_latency_sweep",
    "fig24_wb_sweep",
    "fig25_pb_sweep",
    "fig26_wpq_sweep",
    "fig27_nvm_tech",
    "fig_autofence",
    "fig_beyond_ram",
    "list_workloads",
    "summary",
    "table1_cxl_devices",
    "table_energy",
    "table_hw_overhead",
];

/// Trace-ring capacity requested via `CWSP_TRACE`, if tracing is on:
/// `CWSP_TRACE=1` (or any non-numeric truthy value) selects the default
/// 65 536-event ring; a value > 1 selects that capacity. `0`/`off`/`false`/
/// `no`/unset disable tracing.
pub fn trace_capacity_from_env() -> Option<usize> {
    match std::env::var("CWSP_TRACE") {
        Ok(v) if !v.is_empty() && !matches!(v.as_str(), "0" | "off" | "false" | "no") => {
            match v.parse::<usize>() {
                Ok(n) if n > 1 => Some(n),
                _ => Some(65_536),
            }
        }
        _ => None,
    }
}

/// One measured data point.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Suite the app belongs to.
    pub suite: Suite,
    /// App label.
    pub name: &'static str,
    /// The measured value (slowdown, occupancy, …).
    pub value: f64,
}

/// Run `module` to completion under `scheme` and return its stats.
///
/// With `CWSP_TRACE` set (see [`trace_capacity_from_env`]) the machine
/// records its event ring while running — stdout is untouched, so figure
/// output stays byte-identical; the trace is only exported when
/// `CWSP_TRACE_OUT` names a directory, as one Chrome trace-event JSON file
/// per simulated run.
///
/// # Errors
/// Propagates interpreter traps.
pub fn run_to_completion(
    module: &cwsp_ir::module::Module,
    cfg: &SimConfig,
    scheme: Scheme,
) -> Result<SimStats, InterpError> {
    let mut machine = Machine::new(module, cfg, scheme);
    let traced = trace_capacity_from_env();
    if let Some(cap) = traced {
        machine.enable_trace(cap);
    }
    let r = machine.run(u64::MAX, None)?;
    if traced.is_some() {
        if let Ok(dir) = std::env::var("CWSP_TRACE_OUT") {
            if !dir.is_empty() {
                export_trace(&machine, &dir, &module.name, scheme);
            }
        }
    }
    Ok(r.stats)
}

fn export_trace(machine: &Machine, dir: &str, module_name: &str, scheme: Scheme) {
    let Some(chrome) = machine.chrome_trace() else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let file = format!("{module_name}_{}.trace.json", scheme.name());
    let _ = std::fs::write(std::path::Path::new(dir).join(file), chrome.to_json());
}

/// Baseline cycles: the *original* (uncompiled) program on the original
/// machine — the paper's normalization denominator. Memoized by the engine,
/// so every figure in a process shares one baseline run per (app, config).
pub fn baseline_cycles(w: &Workload, cfg: &SimConfig) -> u64 {
    engine::engine()
        .stats(w.name, &w.module, cfg, Scheme::Baseline)
        .cycles
}

/// Scheme cycles: the cWSP-compiled program under `scheme`. Compilation and
/// simulation are both memoized by content.
pub fn scheme_stats(
    w: &Workload,
    cfg: &SimConfig,
    scheme: Scheme,
    opts: CompileOptions,
) -> SimStats {
    let compiled = engine::engine().compiled(&w.module, opts);
    engine::engine().stats(w.name, &compiled.module, cfg, scheme)
}

/// Memoized stats for an arbitrary (module, config, scheme) triple — the
/// engine-backed replacement for direct [`run_to_completion`] calls in
/// figure binaries (Figs 1 and 18 run probe modules without compilation).
pub fn cached_stats(
    name: &str,
    module: &cwsp_ir::module::Module,
    cfg: &SimConfig,
    scheme: Scheme,
) -> SimStats {
    engine::engine().stats(name, module, cfg, scheme)
}

/// Normalized slowdown of `scheme` (compiled binary) over the baseline
/// (original binary) for one workload.
pub fn slowdown(w: &Workload, cfg: &SimConfig, scheme: Scheme, opts: CompileOptions) -> f64 {
    let base = baseline_cycles(w, cfg) as f64;
    let s = scheme_stats(w, cfg, scheme, opts).cycles as f64;
    s / base
}

/// Geometric mean.
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Geometric means per suite plus the all-suite gmean, in suite order.
pub fn suite_gmeans(results: &[AppResult]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for suite in [
        Suite::Cpu2006,
        Suite::Cpu2017,
        Suite::MiniApps,
        Suite::Splash3,
        Suite::Whisper,
        Suite::Stamp,
    ] {
        let vals: Vec<f64> = results
            .iter()
            .filter(|r| r.suite == suite)
            .map(|r| r.value)
            .collect();
        if !vals.is_empty() {
            out.push((suite.to_string(), gmean(&vals)));
        }
    }
    let all: Vec<f64> = results.iter().map(|r| r.value).collect();
    out.push(("All gmean".to_string(), gmean(&all)));
    out
}

/// Print per-app rows followed by suite gmeans, figure-style.
pub fn print_results(title: &str, unit: &str, results: &[AppResult]) {
    println!("\n=== {title} ===");
    let mut cur_suite = None;
    for r in results {
        if cur_suite != Some(r.suite) {
            cur_suite = Some(r.suite);
            println!("-- {}", r.suite);
        }
        println!("   {:<12} {:>8.3} {unit}", r.name, r.value);
    }
    println!("--");
    for (label, v) in suite_gmeans(results) {
        println!("   {label:<12} {v:>8.3} {unit} (gmean)");
    }
}

/// Print a simple named series (sweep figures).
pub fn print_series(title: &str, unit: &str, series: &[(String, f64)]) {
    println!("\n=== {title} ===");
    for (label, v) in series {
        println!("   {label:<18} {v:>8.3} {unit}");
    }
}

/// Measure `metric` for every workload in `apps`, fanned out over the engine
/// pool (prints progress to stderr). Results return in `apps` order, so
/// printed figures are byte-identical to the serial harness; `metric` must
/// be `Fn + Sync` because workers share it.
pub fn measure_all(apps: &[Workload], metric: impl Fn(&Workload) -> f64 + Sync) -> Vec<AppResult> {
    engine::par_map(apps, |w| {
        eprintln!("  running {:>9}/{}", w.suite.to_string(), w.name);
        AppResult {
            suite: w.suite,
            name: w.name,
            value: metric(w),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert_eq!(gmean(&[]), 0.0);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn suite_gmeans_include_all() {
        let rs = vec![
            AppResult {
                suite: Suite::Cpu2006,
                name: "a",
                value: 1.1,
            },
            AppResult {
                suite: Suite::Stamp,
                name: "b",
                value: 1.2,
            },
        ];
        let g = suite_gmeans(&rs);
        assert_eq!(g.len(), 3, "two suites + all");
        assert_eq!(g.last().unwrap().0, "All gmean");
    }

    #[test]
    fn slowdown_of_baseline_scheme_is_above_one_for_compiled() {
        // Compiled binary has extra instructions, so even Scheme::Baseline on
        // it is >= 1.0 relative to the original binary.
        let w = cwsp_workloads::by_name("namd").unwrap();
        let cfg = SimConfig::default();
        let s = slowdown(&w, &cfg, Scheme::Baseline, CompileOptions::default());
        assert!(s >= 1.0, "{s}");
        assert!(s < 2.0, "{s}");
    }
}
