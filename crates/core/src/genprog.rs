//! Random structured-program generation for property testing.
//!
//! Crash-consistency verification is only as strong as the programs it
//! sweeps. [`generate`] produces deterministic, always-terminating modules
//! exercising the constructs the compiler must handle: read-modify-write
//! chains (memory antidependences), register reuse (register
//! antidependences), counted loops (region-per-iteration), indexed array
//! walks (symbolic aliasing), helper calls (frame spill/restore), and
//! observable output.

use crate::prng::SplitMix64;
use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
use cwsp_ir::module::{FuncId, GlobalId, Module};
use cwsp_ir::types::Reg;

/// Shape parameters for generated programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Number of global arrays.
    pub globals: usize,
    /// Words per global array.
    pub global_words: u64,
    /// Straight-line segments in `main`.
    pub segments: usize,
    /// Maximum trip count of generated loops.
    pub max_trip: u64,
    /// Whether to generate helper-function calls.
    pub calls: bool,
}

impl Default for ProgramSpec {
    fn default() -> Self {
        ProgramSpec {
            globals: 3,
            global_words: 16,
            segments: 10,
            max_trip: 12,
            calls: true,
        }
    }
}

struct Gen {
    rng: SplitMix64,
    /// Registers known to hold interesting values.
    pool: Vec<Reg>,
}

impl Gen {
    fn pick_reg(&mut self, b: &mut FunctionBuilder) -> Reg {
        if self.pool.is_empty() || self.rng.range_u64(0, 4) == 0 {
            let r = b.vreg();
            self.pool.push(r);
            r
        } else {
            self.pool[self.rng.index(self.pool.len())]
        }
    }

    fn operand(&mut self) -> Operand {
        if self.pool.is_empty() || self.rng.chance(0.4) {
            Operand::imm(self.rng.range_u64(0, 64))
        } else {
            self.pool[self.rng.index(self.pool.len())].into()
        }
    }

    fn binop(&mut self) -> BinOp {
        const OPS: [BinOp; 8] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::MinU,
        ];
        OPS[self.rng.index(OPS.len())]
    }

    fn global_ref(&mut self, globals: &[GlobalId], words: u64) -> MemRef {
        let g = globals[self.rng.index(globals.len())];
        MemRef::global(g, self.rng.range_u64(0, words) as i64)
    }
}

/// Generate a deterministic module from `spec` and `seed`.
///
/// The program always halts, never traps, and ends by loading and summing a
/// few global words so that data corruption shows in the return value as well
/// as in memory.
pub fn generate(spec: &ProgramSpec, seed: u64) -> Module {
    let mut m = Module::new(format!("gen-{seed}"));
    let globals: Vec<GlobalId> = (0..spec.globals)
        .map(|i| m.add_global(format!("g{i}"), spec.global_words))
        .collect();

    // Optional helper: h(x) = (x * 3 + arr walk) with a store.
    let helper: Option<FuncId> = spec.calls.then(|| {
        let mut b = FunctionBuilder::new("helper", 1);
        let e = b.entry();
        let x = b.param(0);
        let t = b.bin(e, BinOp::Mul, x.into(), Operand::imm(3));
        let u = b.bin(e, BinOp::Add, t.into(), Operand::imm(1));
        b.store(e, u.into(), MemRef::global(globals[0], 0));
        b.push(
            e,
            Inst::Ret {
                val: Some(u.into()),
            },
        );
        m.add_function(b.build())
    });

    let mut g = Gen {
        rng: SplitMix64::seed_from_u64(seed),
        pool: Vec::new(),
    };
    let mut b = FunctionBuilder::new("main", 0);
    let mut bb = b.entry();

    for _ in 0..spec.segments {
        match g.rng.range_u64(0, 12) {
            0..=2 => {
                // Arithmetic onto a (possibly reused) register.
                let dst = g.pick_reg(&mut b);
                let (l, r) = (g.operand(), g.operand());
                let op = g.binop();
                b.push(
                    bb,
                    Inst::Binary {
                        op,
                        dst,
                        lhs: l,
                        rhs: r,
                    },
                );
            }
            3..=4 => {
                // Read-modify-write on a global word (forces an antidep cut).
                let addr = g.global_ref(&globals, spec.global_words);
                let v = b.load(bb, addr);
                g.pool.push(v);
                let op = g.binop();
                let rhs = g.operand();
                let s = b.bin(bb, op, v.into(), rhs);
                b.store(bb, s.into(), addr);
            }
            5 => {
                // Plain store.
                let addr = g.global_ref(&globals, spec.global_words);
                let v = g.operand();
                b.store(bb, v, addr);
            }
            6 => {
                // Observable output.
                let v = g.operand();
                b.push(bb, Inst::Out { val: v });
            }
            7..=8 => {
                // Counted loop with an indexed array walk + accumulator.
                let trip = g.rng.range_incl_u64(1, spec.max_trip);
                let gid = globals[g.rng.index(globals.len())];
                let base = m.global_addr(gid);
                let words = spec.global_words;
                let seed_op = g.operand();
                // acc register defined before the loop, updated per iteration
                // (a loop-carried register antidependence).
                let acc = b.vreg();
                b.push(
                    bb,
                    Inst::Mov {
                        dst: acc,
                        src: seed_op,
                    },
                );
                let (_, exit) = build_counted_loop(&mut b, bb, Operand::imm(trip), |b, body, i| {
                    let off = b.bin(body, BinOp::RemU, i.into(), Operand::imm(words));
                    let byt = b.bin(body, BinOp::Shl, off.into(), Operand::imm(3));
                    let addr = b.bin(body, BinOp::Add, byt.into(), Operand::imm(base));
                    let v = b.load(body, MemRef::reg(addr, 0));
                    let s = b.bin(body, BinOp::Add, v.into(), acc.into());
                    b.store(body, s.into(), MemRef::reg(addr, 0));
                    b.push(
                        body,
                        Inst::Binary {
                            op: BinOp::Add,
                            dst: acc,
                            lhs: acc.into(),
                            rhs: Operand::imm(1),
                        },
                    );
                });
                g.pool.push(acc);
                bb = exit;
            }
            10 => {
                // If-else over a data-dependent condition (join blocks get
                // structural boundaries; reaching-def merges stress pruning).
                let cond = g.operand();
                let then_bb = b.block();
                let else_bb = b.block();
                let join = b.block();
                let out = b.vreg();
                g.pool.push(out);
                b.push(
                    bb,
                    Inst::CondBr {
                        cond,
                        if_true: then_bb,
                        if_false: else_bb,
                    },
                );
                let tv = g.operand();
                let t1 = b.bin(then_bb, BinOp::Add, tv, Operand::imm(3));
                b.push(
                    then_bb,
                    Inst::Mov {
                        dst: out,
                        src: t1.into(),
                    },
                );
                let taddr = g.global_ref(&globals, spec.global_words);
                b.store(then_bb, t1.into(), taddr);
                b.push(then_bb, Inst::Br { target: join });
                let ev = g.operand();
                let e1 = b.bin(else_bb, BinOp::Xor, ev, Operand::imm(5));
                b.push(
                    else_bb,
                    Inst::Mov {
                        dst: out,
                        src: e1.into(),
                    },
                );
                b.push(else_bb, Inst::Br { target: join });
                bb = join;
            }
            9 => {
                // Synchronization point: atomic fetch-add on a global word
                // (exercises the sync-drain + synchronous-persist path).
                let addr = g.global_ref(&globals, spec.global_words);
                let dst = b.vreg();
                g.pool.push(dst);
                b.push(
                    bb,
                    Inst::AtomicRmw {
                        op: cwsp_ir::inst::AtomicOp::FetchAdd,
                        dst,
                        addr,
                        src: Operand::imm(g.rng.range_u64(1, 8)),
                        expected: Operand::imm(0),
                    },
                );
            }
            _ => {
                // Helper call (if enabled): exercises spill/restore.
                if let Some(h) = helper {
                    let arg = g.operand();
                    let r = b.call(bb, h, vec![arg], true).expect("ret reg");
                    g.pool.push(r);
                } else {
                    let v = g.operand();
                    b.push(bb, Inst::Out { val: v });
                }
            }
        }
    }

    // Checksum epilogue: fold a few global words and return the sum.
    let mut sum = b.mov(bb, Operand::imm(0));
    for (i, gid) in globals.iter().enumerate() {
        let v = b.load(
            bb,
            MemRef::global(*gid, (i as i64) % spec.global_words as i64),
        );
        let s = b.bin(bb, BinOp::Add, sum.into(), v.into());
        sum = s;
    }
    b.push(bb, Inst::Out { val: sum.into() });
    b.push(
        bb,
        Inst::Ret {
            val: Some(sum.into()),
        },
    );

    let main = m.add_function(b.build());
    m.set_entry(main);
    debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
    m
}

/// Convenience: generate with the default spec.
pub fn generate_default(seed: u64) -> Module {
    generate(&ProgramSpec::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_valid_and_halt() {
        for seed in 0..30 {
            let m = generate_default(seed);
            assert!(m.validate().is_ok(), "seed {seed}: {:?}", m.validate());
            let out =
                cwsp_ir::interp::run(&m, 200_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.steps > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_default(42);
        let b = generate_default(42);
        assert_eq!(
            cwsp_ir::pretty::fmt_module(&a),
            cwsp_ir::pretty::fmt_module(&b)
        );
        let c = generate_default(43);
        assert_ne!(
            cwsp_ir::pretty::fmt_module(&a),
            cwsp_ir::pretty::fmt_module(&c),
            "different seeds differ"
        );
    }

    #[test]
    fn generated_programs_compile_cleanly() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        for seed in 0..10 {
            let m = generate_default(seed);
            let oracle = cwsp_ir::interp::run(&m, 200_000).unwrap();
            let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
            let out = cwsp_ir::interp::run(&c.module, 400_000).unwrap();
            assert_eq!(out.return_value, oracle.return_value, "seed {seed}");
            assert_eq!(out.output, oracle.output, "seed {seed}");
        }
    }

    #[test]
    fn compiled_generated_programs_pass_dynamic_checkers() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        for seed in 0..10 {
            let m = generate_default(seed);
            let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
            cwsp_compiler::verify::check_antidependence(&c.module, 400_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            cwsp_compiler::verify::check_slices(&c.module, &c.slices, 400_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
