//! End-to-end crash/recovery over real paper workloads — the system-level
//! recovery testing §VIII of the paper leaves as future work.

use cwsp::core::system::CwspSystem;
use cwsp::core::verify::{check_crash_consistency, sweep};

#[test]
fn representative_workloads_survive_crash_sweeps() {
    // One app per suite, crash points spread across the run.
    for name in ["lbm", "leela", "xsbench", "radix", "tatp", "kmeans"] {
        let w = cwsp::workloads::by_name(name).unwrap();
        let system = CwspSystem::compile(&w.module);
        let cycles = [100, 5_000, 40_000, 120_000];
        sweep(&system, &cycles).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn write_storm_workload_survives_dense_crash_sweep() {
    // lu-cg keeps the persist machinery saturated — the hardest case for
    // undo-log bookkeeping and RBT speculation.
    let w = cwsp::workloads::by_name("lu-cg").unwrap();
    let system = CwspSystem::compile(&w.module);
    let cycles: Vec<u64> = (1..12).map(|k| k * k * 997).collect();
    sweep(&system, &cycles).unwrap();
}

#[test]
fn syscall_workload_survives_crashes() {
    use cwsp::ir::builder::build_counted_loop;
    use cwsp::ir::prelude::*;
    use cwsp::runtime::{Runtime, SYS_BRK, SYS_TIME};

    let mut m = Module::new("sys");
    let rt = Runtime::install(&mut m);
    let mut b = FunctionBuilder::new("main", 0);
    let e = b.entry();
    let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(6), |b, bb, _i| {
        let p = b
            .call(
                bb,
                rt.syscall,
                vec![Operand::imm(SYS_BRK), Operand::imm(2), Operand::imm(0)],
                true,
            )
            .unwrap();
        let t = b
            .call(
                bb,
                rt.syscall,
                vec![Operand::imm(SYS_TIME), Operand::imm(0), Operand::imm(0)],
                true,
            )
            .unwrap();
        b.store(bb, t.into(), MemRef::reg(p, 0));
        b.push(bb, Inst::Out { val: t.into() });
    });
    b.push(exit, Inst::Halt);
    let f = m.add_function(b.build());
    m.set_entry(f);

    let system = CwspSystem::compile(&m);
    let cycles: Vec<u64> = (1..40).map(|k| k * 83).collect();
    sweep(&system, &cycles).unwrap();
}

#[test]
fn recovery_reports_are_informative() {
    let w = cwsp::workloads::by_name("cholesky").unwrap();
    let system = CwspSystem::compile(&w.module);
    let r = check_crash_consistency(&system, 30_000).unwrap();
    assert!(r.recovered_matches_oracle, "{:?}", r.divergence);
    assert_eq!(r.crash_cycle, 30_000);
    // The crash landed mid-run, so recovery replayed a nonempty tail.
    assert!(r.replayed_steps > 0);
}

#[test]
fn crash_during_drained_quiet_period_recovers() {
    // Crash at a cycle aligned to a synchronization drain (kmeans has
    // several): the RBT may be nearly empty — recovery must still work.
    let w = cwsp::workloads::by_name("kmeans").unwrap();
    let system = CwspSystem::compile(&w.module);
    let cycles: Vec<u64> = (1..=8).map(|k| k * 9_973).collect();
    sweep(&system, &cycles).unwrap();
}
