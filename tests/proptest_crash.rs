//! Property tests: crash consistency must hold for *arbitrary* structured
//! programs and *arbitrary* crash cycles, pruned or not. This is the
//! repository's strongest evidence that the compiler + hardware + recovery
//! protocol compose soundly.
//!
//! Two tiers share the same properties:
//!
//! * The **offline tier** (always compiled) sweeps deterministic,
//!   SplitMix64-driven samples of the same (spec, seed, crash, pruning)
//!   space, so the default zero-external-crate build still exercises every
//!   property.
//! * The **proptest tier** (`--features proptest`, which also requires
//!   re-adding `proptest = "1"` to `[dev-dependencies]` — see README) layers
//!   shrinking and a larger randomized case count on top.

use cwsp::compiler::pipeline::CompileOptions;
use cwsp::core::genprog::{generate, ProgramSpec};
use cwsp::core::prng::SplitMix64;
use cwsp::core::system::CwspSystem;
use cwsp::core::verify::check_crash_consistency;
use cwsp::sim::config::SimConfig;

/// Deterministically sample a [`ProgramSpec`] from one RNG draw sequence —
/// the offline analogue of the proptest strategy below.
fn sample_spec(r: &mut SplitMix64) -> ProgramSpec {
    ProgramSpec {
        globals: r.range_u64(1, 4) as usize,
        global_words: r.range_u64(4, 32),
        segments: r.range_u64(4, 14) as usize,
        max_trip: r.range_u64(2, 10),
        calls: r.chance(0.5),
    }
}

#[test]
fn sampled_programs_survive_sampled_crashes() {
    let mut r = SplitMix64::seed_from_u64(0xC5A5);
    for case in 0..24 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 10_000);
        let crash_cycle = r.range_u64(0, 20_000);
        let pruning = r.chance(0.5);
        let module = generate(&spec, seed);
        let system = CwspSystem::compile_with(
            &module,
            CompileOptions {
                pruning,
                ..Default::default()
            },
            SimConfig::default(),
        );
        let report = check_crash_consistency(&system, crash_cycle)
            .unwrap_or_else(|e| panic!("case {case} seed {seed}: {e}"));
        assert!(
            report.recovered_matches_oracle,
            "case {case} seed {seed} crash@{crash_cycle} pruning={pruning}: {:?}",
            report.divergence
        );
    }
}

#[test]
fn sampled_programs_survive_crashes_on_tiny_hardware() {
    // Tiny queues force every stall path (PB full, RBT full, WPQ full).
    let cfg = SimConfig {
        rbt_entries: 2,
        pb_entries: 3,
        wpq_entries: 2,
        persist_path_gbps: 0.5,
        ..SimConfig::default()
    };
    let mut r = SplitMix64::seed_from_u64(0x71A9);
    for case in 0..12 {
        let seed = r.range_u64(0, 10_000);
        let crash_cycle = r.range_u64(0, 8_000);
        let module = generate(&ProgramSpec::default(), seed);
        let system = CwspSystem::compile_with(&module, CompileOptions::default(), cfg.clone());
        let report = check_crash_consistency(&system, crash_cycle)
            .unwrap_or_else(|e| panic!("case {case} seed {seed}: {e}"));
        assert!(
            report.recovered_matches_oracle,
            "case {case} seed {seed} crash@{crash_cycle}: {:?}",
            report.divergence
        );
    }
}

#[test]
fn sampled_compiled_programs_keep_oracle_semantics() {
    let mut r = SplitMix64::seed_from_u64(0x5EED);
    for case in 0..10 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 50_000);
        let module = generate(&spec, seed);
        let oracle = cwsp::ir::interp::run(&module, 3_000_000)
            .unwrap_or_else(|e| panic!("case {case} oracle: {e}"));
        for pruning in [true, false] {
            let c = cwsp::compiler::pipeline::CwspCompiler::new(CompileOptions {
                pruning,
                ..Default::default()
            })
            .compile(&module);
            let out = cwsp::ir::interp::run(&c.module, 6_000_000)
                .unwrap_or_else(|e| panic!("case {case} compiled: {e}"));
            assert_eq!(
                out.return_value, oracle.return_value,
                "case {case} seed {seed}"
            );
            assert_eq!(out.output, oracle.output, "case {case} seed {seed}");
        }
    }
}

#[test]
fn dynamic_invariants_hold_for_sampled_programs() {
    let mut r = SplitMix64::seed_from_u64(0x1D0);
    for case in 0..10 {
        let seed = r.range_u64(0, 50_000);
        let module = generate(&ProgramSpec::default(), seed);
        let c =
            cwsp::compiler::pipeline::CwspCompiler::new(CompileOptions::default()).compile(&module);
        cwsp::compiler::verify::check_antidependence(&c.module, 3_000_000)
            .unwrap_or_else(|e| panic!("case {case} seed {seed}: {e}"));
        cwsp::compiler::verify::check_slices(&c.module, &c.slices, 3_000_000)
            .unwrap_or_else(|e| panic!("case {case} seed {seed}: {e}"));
    }
}

#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use proptest::prelude::*;

    fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
        (1usize..4, 4u64..32, 4usize..14, 2u64..10, any::<bool>()).prop_map(
            |(globals, words, segments, trip, calls)| ProgramSpec {
                globals,
                global_words: words,
                segments,
                max_trip: trip,
                calls,
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

        #[test]
        fn random_programs_survive_random_crashes(
            spec in spec_strategy(),
            seed in 0u64..10_000,
            crash_cycle in 0u64..20_000,
            pruning in any::<bool>(),
        ) {
            let module = generate(&spec, seed);
            let system = CwspSystem::compile_with(
                &module,
                CompileOptions { pruning, ..Default::default() },
                SimConfig::default(),
            );
            let report = check_crash_consistency(&system, crash_cycle)
                .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
            prop_assert!(
                report.recovered_matches_oracle,
                "seed {seed} crash@{crash_cycle} pruning={pruning}: {:?}",
                report.divergence
            );
        }
    }
}
