//! Automated flush/fence insertion — the certified persistency baseline
//! behind `Scheme::AutoFence`.
//!
//! Where the cWSP pipeline makes *regions* the unit of persistence, this
//! pass implements the classical epoch-persistency discipline every
//! software-transparent competitor assumes away: after every NVM-visible
//! store it inserts a line write-back ([`Inst::FlushLine`] with the store's
//! exact memory reference), and before every *commit point* — an event whose
//! semantics assume prior stores durable — an ordering [`Inst::PFence`].
//!
//! The pass is **normalizing**: any pre-existing `flush`/`pfence`
//! instructions are stripped first and the placement re-derived from
//! scratch, which makes it idempotent (`run ∘ run = run`) and makes
//! injected redundant flushes vanish — a self-check the fuzz farm
//! exercises.
//!
//! Redundancy elimination while inserting:
//!
//! * **flush dedup** — a store needs no flush when a *later* store in the
//!   same block, before any commit point, provably covers the same line
//!   (same constant line, or the identical symbolic base+offset word): the
//!   later store's flush writes back the final value, and the earlier value
//!   is architecturally dead anyway. Must-equality comes from
//!   [`crate::alias::PathState`].
//! * **fence coalescing** — `pfence` is emitted only where the forward
//!   "flush pending since last drain" dataflow (may-union over the CFG) is
//!   true, so straight-line runs of commits share one fence and
//!   drain-commits (`fence`/`atomic`, which stall the persist path anyway)
//!   never get one.
//!
//! Commit points mirror `cwsp_analyzer::persist` exactly — that analyzer
//! re-proves the discipline on the pass output (*translation validation*).
//! The pass's syntactic callee purity is strictly stronger than the
//! analyzer's summary-based purity, so every call the analyzer treats as a
//! commit is fenced here; the reverse gap only costs an extra fence, never
//! a diagnostic.
//!
//! The pass runs on *raw* modules (the AutoFence baseline competes against
//! the cWSP pipeline, not inside it) but tolerates compiled ones: stores
//! into the reserved checkpoint/metadata ranges are recovery plumbing, not
//! program durability, and are skipped.

use crate::alias::{AbstractVal, PathState};
use cwsp_ir::cfg;
use cwsp_ir::function::Function;
use cwsp_ir::inst::Inst;
use cwsp_ir::layout;
use cwsp_ir::module::Module;

/// What one [`run`] did, for harness telemetry and the sweep figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutoFenceStats {
    /// `flush` instructions inserted.
    pub flushes_inserted: usize,
    /// `flush`es elided because a later same-line store covers them.
    pub flushes_elided: usize,
    /// `pfence` instructions inserted.
    pub fences_inserted: usize,
    /// Pre-existing `flush`/`pfence` instructions stripped by normalization.
    pub stripped: usize,
    /// Stores left unflushed (reserved checkpoint/metadata range).
    pub reserved_skipped: usize,
}

/// Insert flush/fence operations across every function of `module`.
pub fn run(module: &mut Module) -> AutoFenceStats {
    let mut stats = AutoFenceStats::default();
    let impure = persist_impure(module);
    // The transform reads the module immutably (PathState resolves global
    // tags through it) while rewriting one function at a time: rebuild each
    // function's blocks against a pristine clone of the module.
    let snapshot = module.clone();
    for idx in 0..module.function_count() {
        let fid = cwsp_ir::module::FuncId(idx as u32);
        let rebuilt = rewrite_function(&snapshot, snapshot.function(fid), &impure, &mut stats);
        module.function_mut(fid).blocks = rebuilt;
    }
    stats
}

/// Syntactic, transitive persist-impurity: a function is impure when it (or
/// any callee) contains an instruction that touches persistency state or
/// assumes it — stores, atomics, fences, checkpoints, boundaries, output,
/// halt, or existing flush/fence ops. Strictly stronger than the analyzer's
/// summary-based purity: a syntactically pure callee has an empty summary.
fn persist_impure(module: &Module) -> Vec<bool> {
    let n = module.function_count();
    let mut impure = vec![false; n];
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fid, f) in module.iter_functions() {
        for (_, blk) in f.iter_blocks() {
            for inst in &blk.insts {
                match inst {
                    Inst::Store { .. }
                    | Inst::AtomicRmw { .. }
                    | Inst::Fence
                    | Inst::Ckpt { .. }
                    | Inst::Boundary { .. }
                    | Inst::Out { .. }
                    | Inst::FlushLine { .. }
                    | Inst::PFence
                    | Inst::Halt => impure[fid.index()] = true,
                    Inst::Call { func, .. } => {
                        if func.index() < n {
                            callees[fid.index()].push(func.index());
                        } else {
                            // Unknown callee: assume the worst.
                            impure[fid.index()] = true;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            if !impure[i] && callees[i].iter().any(|&c| impure[c]) {
                impure[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    impure
}

/// Whether `inst` is a commit point for fence placement. `drains` marks the
/// commits that stall the persist path themselves (no `pfence` needed).
fn commit_of(inst: &Inst, impure: &[bool]) -> Option<Commit> {
    match inst {
        Inst::Fence | Inst::AtomicRmw { .. } | Inst::Halt => Some(Commit { drains: true }),
        Inst::Out { .. } | Inst::Boundary { .. } | Inst::Ret { .. } => {
            Some(Commit { drains: false })
        }
        Inst::Call { func, .. } => {
            if impure.get(func.index()).copied().unwrap_or(true) {
                Some(Commit { drains: false })
            } else {
                None
            }
        }
        _ => None,
    }
}

#[derive(Debug, Clone, Copy)]
struct Commit {
    drains: bool,
}

/// Must-coverage: does a flush of line(`later`) provably write back the word
/// stored at `earlier`? Constants compare by 64-byte line; symbolic
/// addresses only by exact (symbol, delta) word equality — base alignment
/// is unknown, so distinct words of one symbolic base may straddle lines.
fn covers(later: AbstractVal, earlier: AbstractVal) -> bool {
    match (later, earlier) {
        (AbstractVal::Const(a), AbstractVal::Const(b)) => a & !63 == b & !63,
        (AbstractVal::Base(s1, d1), AbstractVal::Base(s2, d2)) => s1 == s2 && d1 == d2,
        _ => false,
    }
}

fn reserved(addr: AbstractVal) -> bool {
    matches!(addr, AbstractVal::Const(a) if layout::is_ckpt_addr(a) || layout::is_hw_meta_addr(a))
}

fn rewrite_function(
    module: &Module,
    f: &Function,
    impure: &[bool],
    stats: &mut AutoFenceStats,
) -> Vec<cwsp_ir::function::Block> {
    // Phase 1 — strip existing flush/fence ops (normalization) and insert
    // fresh flushes with block-local dedup.
    let mut blocks: Vec<cwsp_ir::function::Block> = Vec::with_capacity(f.blocks.len());
    for (_, blk) in f.iter_blocks() {
        let insts: Vec<&Inst> = blk
            .insts
            .iter()
            .filter(|i| {
                let strip = matches!(i, Inst::FlushLine { .. } | Inst::PFence);
                if strip {
                    stats.stripped += 1;
                }
                !strip
            })
            .collect();
        // Abstract address of each store plus commit positions, one linear
        // walk (symbols are consistent within the block).
        let mut st = PathState::new(module);
        let mut addr_of: Vec<Option<AbstractVal>> = Vec::with_capacity(insts.len());
        let mut is_commit: Vec<bool> = Vec::with_capacity(insts.len());
        for inst in &insts {
            addr_of.push(match inst {
                Inst::Store { addr, .. } => Some(st.addr_of(addr)),
                _ => None,
            });
            is_commit.push(commit_of(inst, impure).is_some());
            st.transfer(inst);
        }
        let mut out: Vec<Inst> = Vec::with_capacity(insts.len());
        for (i, inst) in insts.iter().enumerate() {
            out.push((*inst).clone());
            let (Inst::Store { addr, .. }, Some(a)) = (*inst, addr_of[i]) else {
                continue;
            };
            if reserved(a) {
                stats.reserved_skipped += 1;
                continue;
            }
            let covered = (i + 1..insts.len())
                .take_while(|&j| !is_commit[j])
                .any(|j| matches!(addr_of[j], Some(b) if covers(b, a)));
            if covered {
                stats.flushes_elided += 1;
            } else {
                out.push(Inst::FlushLine { addr: *addr });
                stats.flushes_inserted += 1;
            }
        }
        blocks.push(cwsp_ir::function::Block { insts: out });
    }

    // Phase 2 — "flush pending since last drain" forward dataflow over the
    // flush-augmented blocks (union at joins), then fence insertion before
    // each non-draining commit reached with a pending flush.
    let probe = Function {
        blocks: blocks.clone(),
        ..f.clone()
    };
    let rpo = cfg::reverse_post_order(&probe);
    let preds = cfg::predecessors(&probe);
    let nb = blocks.len();
    let mut pin = vec![false; nb];
    let mut pout = vec![false; nb];
    loop {
        let mut changed = false;
        for &b in &rpo {
            let bi = b.0 as usize;
            let inb = preds[bi].iter().any(|p| pout[p.0 as usize]);
            let mut p = inb;
            for inst in &blocks[bi].insts {
                if commit_of(inst, impure).is_some() {
                    p = false;
                } else if matches!(inst, Inst::FlushLine { .. }) {
                    p = true;
                }
            }
            if pin[bi] != inb || pout[bi] != p {
                pin[bi] = inb;
                pout[bi] = p;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (bi, blk) in blocks.iter_mut().enumerate() {
        let mut p = pin[bi];
        let mut out: Vec<Inst> = Vec::with_capacity(blk.insts.len());
        for inst in blk.insts.drain(..) {
            match commit_of(&inst, impure) {
                Some(c) => {
                    if p && !c.drains {
                        out.push(Inst::PFence);
                        stats.fences_inserted += 1;
                    }
                    p = false;
                }
                None => {
                    if matches!(inst, Inst::FlushLine { .. }) {
                        p = true;
                    }
                }
            }
            out.push(inst);
        }
        blk.insts = out;
    }
    blocks
}

/// Flush/fence instruction census of a module — the sweep figure's static
/// columns.
pub fn op_census(module: &Module) -> (usize, usize) {
    let mut flushes = 0;
    let mut fences = 0;
    for (_, f) in module.iter_functions() {
        for (_, blk) in f.iter_blocks() {
            for inst in &blk.insts {
                match inst {
                    Inst::FlushLine { .. } => flushes += 1,
                    Inst::PFence => fences += 1,
                    _ => {}
                }
            }
        }
    }
    (flushes, fences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{MemRef, Operand};
    use cwsp_ir::layout::GLOBAL_BASE;
    use cwsp_ir::pretty::fmt_module;
    use cwsp_ir::types::Reg;

    fn single(f: FunctionBuilder) -> Module {
        let mut m = Module::new("t");
        let id = m.add_function(f.build());
        m.set_entry(id);
        m
    }

    fn insts_of(m: &Module) -> Vec<Inst> {
        let f = m.function(m.entry().unwrap());
        f.blocks[0].insts.clone()
    }

    #[test]
    fn store_gets_flush_and_out_gets_fence() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let mut m = single(b);
        let st = run(&mut m);
        assert_eq!((st.flushes_inserted, st.fences_inserted), (1, 1));
        let insts = insts_of(&m);
        assert!(matches!(insts[1], Inst::FlushLine { .. }), "{insts:?}");
        assert!(matches!(insts[2], Inst::PFence), "{insts:?}");
        assert!(matches!(insts[3], Inst::Out { .. }));
        // Halt drains the path itself: no fence before it.
        assert!(matches!(insts[4], Inst::Halt));
    }

    #[test]
    fn later_same_line_store_elides_the_earlier_flush() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(
            e,
            Inst::store(Operand::imm(2), MemRef::abs(GLOBAL_BASE + 8)),
        );
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let mut m = single(b);
        let st = run(&mut m);
        assert_eq!(st.flushes_elided, 1, "first store covered by second");
        assert_eq!(st.flushes_inserted, 1);
    }

    #[test]
    fn pass_is_idempotent() {
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let t = b.block();
        let x = b.block();
        b.push(e, Inst::store(Operand::imm(1), MemRef::reg(Reg(0), 0)));
        b.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: t,
                if_false: x,
            },
        );
        b.push(t, Inst::store(Operand::imm(2), MemRef::abs(GLOBAL_BASE)));
        b.push(t, Inst::Br { target: x });
        b.push(
            x,
            Inst::Out {
                val: Operand::imm(0),
            },
        );
        b.push(x, Inst::Halt);
        let mut m = single(b);
        run(&mut m);
        let once = fmt_module(&m);
        let st = run(&mut m);
        assert_eq!(fmt_module(&m), once, "run ∘ run = run");
        assert_eq!(
            st.stripped,
            st.flushes_inserted + st.fences_inserted,
            "second run re-derives exactly what it stripped"
        );
    }

    #[test]
    fn injected_redundant_flush_is_eliminated() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let mut m = single(b);
        run(&mut m);
        let clean = fmt_module(&m);
        // Duplicate the flush (the genprog redundancy injection shape).
        let entry = m.entry().unwrap();
        let f = m.function_mut(entry);
        let fl = f.blocks[0].insts[1].clone();
        assert!(matches!(fl, Inst::FlushLine { .. }));
        f.blocks[0].insts.insert(1, fl);
        run(&mut m);
        assert_eq!(fmt_module(&m), clean, "redundant flush normalized away");
    }

    #[test]
    fn fence_before_ret_and_impure_call_but_not_pure_call() {
        let mut m = Module::new("t");
        let mut pure = FunctionBuilder::new("pure", 1);
        let pe = pure.entry();
        pure.push(
            pe,
            Inst::Ret {
                val: Some(Reg(0).into()),
            },
        );
        let pure_id = m.add_function(pure.build());
        let mut imp = FunctionBuilder::new("imp", 0);
        let ie = imp.entry();
        imp.push(
            ie,
            Inst::store(Operand::imm(2), MemRef::abs(GLOBAL_BASE + 128)),
        );
        imp.push(ie, Inst::Ret { val: None });
        let imp_id = m.add_function(imp.build());
        let mut main = FunctionBuilder::new("main", 0);
        let e = main.entry();
        main.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        main.push(
            e,
            Inst::Call {
                func: pure_id,
                args: vec![Operand::imm(1)],
                ret: None,
                save_regs: vec![],
            },
        );
        main.push(
            e,
            Inst::Call {
                func: imp_id,
                args: vec![],
                ret: None,
                save_regs: vec![],
            },
        );
        main.push(e, Inst::Halt);
        let main_id = m.add_function(main.build());
        m.set_entry(main_id);
        run(&mut m);
        let main_insts = &m.function(main_id).blocks[0].insts;
        // store, flush, pure call (no fence), pfence, impure call, halt.
        let kinds: Vec<&str> = main_insts
            .iter()
            .map(|i| match i {
                Inst::Store { .. } => "store",
                Inst::FlushLine { .. } => "flush",
                Inst::PFence => "pfence",
                Inst::Call { .. } => "call",
                Inst::Halt => "halt",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["store", "flush", "call", "pfence", "call", "halt"],
            "{kinds:?}"
        );
        // `imp` fences before its ret (the modular contract).
        let imp_insts = &m.function(imp_id).blocks[0].insts;
        assert!(
            matches!(imp_insts[imp_insts.len() - 2], Inst::PFence),
            "{imp_insts:?}"
        );
    }

    #[test]
    fn cross_block_pending_flush_reaches_the_commit() {
        // Flush in the entry block, commit in a successor: the dataflow
        // carries "pending" across the edge.
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let x = b.block();
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::Br { target: x });
        b.push(
            x,
            Inst::Out {
                val: Operand::imm(0),
            },
        );
        b.push(x, Inst::Halt);
        let mut m = single(b);
        run(&mut m);
        let f = m.function(m.entry().unwrap());
        assert!(
            matches!(f.blocks[1].insts[0], Inst::PFence),
            "{:?}",
            f.blocks[1].insts
        );
    }

    #[test]
    fn census_counts_both_ops() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let mut m = single(b);
        assert_eq!(op_census(&m), (0, 0));
        run(&mut m);
        assert_eq!(op_census(&m), (1, 1));
    }
}
