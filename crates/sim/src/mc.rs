//! Memory controllers: battery-backed write-pending queues (WPQ), NVM drain
//! timing, and per-region append-only hardware undo logs (§V-B2).
//!
//! A store arriving from the persist path is *persistent* the moment it
//! enters the WPQ — the WPQ sits inside the ADR persistence domain, and ADR
//! guarantees enough residual energy to finish each entry's failure-atomic
//! `⟨undo-log append, in-place data write⟩` pair. The simulator therefore
//! applies both to the NVM image at acceptance time; the WPQ entry then
//! occupies a slot until its drain latency elapses, which is what creates
//! back-pressure (Fig 26's WPQ-size sensitivity).

use cwsp_ir::memory::Memory;
use cwsp_ir::types::{DynRegionId, Word};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One WPQ slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WpqSlot {
    addr: Word,
    region: DynRegionId,
    /// Cycle at which the slot frees (drain to media complete).
    free_at: u64,
}

/// A single memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    id: usize,
    wpq_cap: usize,
    wpq: VecDeque<WpqSlot>,
    /// Per-region undo-log arrays in MC-local NVM, appended in arrival order.
    logs: BTreeMap<DynRegionId, Vec<(Word, Word)>>,
    /// Regions at or below this id are non-speculative: their arrivals are
    /// not logged and their arrays have been reclaimed.
    nonspec_horizon: Option<DynRegionId>,
    /// Media write pipeline: next cycle a new drain can start.
    media_free_at: u64,
    /// Drain cost per plain entry, in cycles.
    drain_cycles: u64,
    /// Extra drain cost when the entry also appends an undo log.
    log_extra_cycles: u64,
    /// Total log appends (statistics).
    pub log_appends: u64,
    /// Total NVM word writes performed (data + log words).
    pub nvm_writes: u64,
}

impl MemoryController {
    /// A controller with `wpq_cap` slots and the given drain costs.
    pub fn new(id: usize, wpq_cap: usize, drain_cycles: u64, log_extra_cycles: u64) -> Self {
        MemoryController {
            id,
            wpq_cap,
            wpq: VecDeque::new(),
            logs: BTreeMap::new(),
            nonspec_horizon: None,
            media_free_at: 0,
            drain_cycles,
            log_extra_cycles,
            log_appends: 0,
            nvm_writes: 0,
        }
    }

    /// This controller's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether a new arrival can be accepted.
    pub fn wpq_has_space(&self) -> bool {
        self.wpq.len() < self.wpq_cap
    }

    /// Current WPQ occupancy.
    pub fn wpq_occupancy(&self) -> usize {
        self.wpq.len()
    }

    /// Accept a store at `cycle`, applying the failure-atomic log+write to the
    /// NVM image. Returns `false` (and does nothing) when the WPQ is full.
    pub fn accept(
        &mut self,
        cycle: u64,
        region: DynRegionId,
        addr: Word,
        data: Word,
        log_bit: bool,
        nvm: &mut Memory,
    ) -> bool {
        self.accept_inner(cycle, region, addr, data, log_bit, nvm, true)
    }

    /// Timing-only acceptance: occupies a WPQ slot and charges drain time but
    /// does not touch the NVM image (used for cacheline schemes whose line
    /// payloads the simulator does not materialize).
    pub fn accept_timing_only(&mut self, cycle: u64, region: DynRegionId, addr: Word) -> bool {
        let mut scratch = Memory::new();
        let ok = self.accept_inner(cycle, region, addr, 0, false, &mut scratch, false);
        if ok {
            // A cacheline entry writes 8 data words plus an 8-word redo/undo
            // log record (Capri's §II-D write amplification); accept_inner
            // counted one word already.
            self.nvm_writes += 15;
        }
        ok
    }

    #[allow(clippy::too_many_arguments)]
    fn accept_inner(
        &mut self,
        cycle: u64,
        region: DynRegionId,
        addr: Word,
        data: Word,
        log_bit: bool,
        nvm: &mut Memory,
        apply: bool,
    ) -> bool {
        if !self.wpq_has_space() {
            return false;
        }
        let speculative = log_bit && self.nonspec_horizon.is_none_or(|h| region > h);
        let mut cost = self.drain_cycles;
        if speculative {
            let old = nvm.load(addr);
            self.logs.entry(region).or_default().push((addr, old));
            self.log_appends += 1;
            self.nvm_writes += 2; // log record: address + old value
            cost += self.log_extra_cycles;
        }
        if apply {
            nvm.store(addr, data);
        }
        self.nvm_writes += 1;
        let start = self.media_free_at.max(cycle);
        self.media_free_at = start + cost;
        self.wpq.push_back(WpqSlot {
            addr,
            region,
            free_at: start + cost,
        });
        true
    }

    /// Free drained slots at `cycle`.
    pub fn tick(&mut self, cycle: u64) {
        while self.wpq.front().is_some_and(|s| s.free_at <= cycle) {
            self.wpq.pop_front();
        }
    }

    /// Like [`MemoryController::tick`], but reports each drained slot's
    /// (addr, region) into `out` — the flight recorder's NVM-commit hook.
    /// Only called when a recorder is attached; the plain `tick` stays on
    /// the recorder-off hot path.
    pub fn tick_drained(&mut self, cycle: u64, out: &mut Vec<(Word, DynRegionId)>) {
        while self.wpq.front().is_some_and(|s| s.free_at <= cycle) {
            let s = self.wpq.pop_front().unwrap();
            out.push((s.addr, s.region));
        }
    }

    /// The (addr, region) of every slot still queued for media, in arrival
    /// order — the in-WPQ slice of the crash forensics frontier.
    pub fn wpq_entries(&self) -> impl Iterator<Item = (Word, DynRegionId)> + '_ {
        self.wpq.iter().map(|s| (s.addr, s.region))
    }

    /// If a load to `addr` would hit a pending 8-byte WPQ entry, the cycle at
    /// which that entry drains (§V-A2: such loads are delayed — Fig 8).
    pub fn wpq_hit(&self, addr: Word) -> Option<u64> {
        self.wpq.iter().find(|s| s.addr == addr).map(|s| s.free_at)
    }

    /// Reclaim the log arrays of every region at or below `dyn_id` — they
    /// became non-speculative (§V-B2).
    pub fn dealloc_logs_upto(&mut self, dyn_id: DynRegionId) {
        self.nonspec_horizon = Some(match self.nonspec_horizon {
            Some(h) => h.max(dyn_id),
            None => dyn_id,
        });
        self.logs.retain(|r, _| *r > dyn_id);
    }

    /// Total live log records (bounded by RBT size × stores/region — §V-B2
    /// argues this stays tiny).
    pub fn live_log_records(&self) -> usize {
        self.logs.values().map(Vec::len).sum()
    }

    /// Power-failure log reversal (§VII step 1): revert this MC's surviving
    /// logs in reverse region order (and reverse append order within each
    /// region), then discard them.
    pub fn crash_revert(&mut self, nvm: &mut Memory) -> usize {
        let mut reverted = 0;
        for (_, records) in self.logs.iter().rev() {
            for &(addr, old) in records.iter().rev() {
                nvm.store(addr, old);
                reverted += 1;
            }
        }
        self.logs.clear();
        reverted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(0, 2, 10, 10)
    }

    #[test]
    fn accept_writes_nvm_and_occupies_slot() {
        let mut m = mc();
        let mut nvm = Memory::new();
        assert!(m.accept(0, DynRegionId(1), 64, 7, false, &mut nvm));
        assert_eq!(nvm.load(64), 7);
        assert_eq!(m.wpq_occupancy(), 1);
        assert_eq!(m.nvm_writes, 1);
        m.tick(9);
        assert_eq!(m.wpq_occupancy(), 1, "drain takes 10 cycles");
        m.tick(10);
        assert_eq!(m.wpq_occupancy(), 0);
    }

    #[test]
    fn wpq_full_rejects() {
        let mut m = mc();
        let mut nvm = Memory::new();
        assert!(m.accept(0, DynRegionId(1), 0, 1, false, &mut nvm));
        assert!(m.accept(0, DynRegionId(1), 8, 2, false, &mut nvm));
        assert!(!m.accept(0, DynRegionId(1), 16, 3, false, &mut nvm));
        assert_eq!(nvm.load(16), 0, "rejected store does not reach NVM");
    }

    #[test]
    fn speculative_store_logs_old_value() {
        let mut m = mc();
        let mut nvm = Memory::new();
        nvm.store(64, 100);
        assert!(m.accept(0, DynRegionId(2), 64, 200, true, &mut nvm));
        assert_eq!(nvm.load(64), 200, "in-place update");
        assert_eq!(m.log_appends, 1);
        assert_eq!(m.live_log_records(), 1);
        assert_eq!(m.nvm_writes, 3, "log addr + old value + data");
    }

    #[test]
    fn crash_revert_restores_in_reverse_order() {
        let mut m = MemoryController::new(0, 8, 1, 1);
        let mut nvm = Memory::new();
        nvm.store(64, 1);
        // Region 2 then region 3 overwrite the same word speculatively.
        m.accept(0, DynRegionId(2), 64, 2, true, &mut nvm);
        m.accept(0, DynRegionId(3), 64, 3, true, &mut nvm);
        assert_eq!(nvm.load(64), 3);
        let n = m.crash_revert(&mut nvm);
        assert_eq!(n, 2);
        assert_eq!(nvm.load(64), 1, "original value restored");
        assert_eq!(m.live_log_records(), 0);
    }

    #[test]
    fn log_overwrite_hazard_is_prevented_by_append_only_logs() {
        // Figure 10(c): str1 (region 1) and str2 (region 2) hit the same
        // address; append-only per-region logs must restore the ORIGINAL
        // value, not region 1's value.
        let mut m = MemoryController::new(0, 8, 1, 1);
        let mut nvm = Memory::new();
        nvm.store(64, 100);
        m.accept(0, DynRegionId(1), 64, 150, true, &mut nvm); // logs old=100
        m.accept(0, DynRegionId(2), 64, 200, true, &mut nvm); // logs old=150
        m.crash_revert(&mut nvm);
        assert_eq!(nvm.load(64), 100);
    }

    #[test]
    fn dealloc_makes_region_nonspeculative() {
        let mut m = MemoryController::new(0, 8, 1, 1);
        let mut nvm = Memory::new();
        nvm.store(64, 1);
        m.accept(0, DynRegionId(2), 64, 2, true, &mut nvm);
        m.dealloc_logs_upto(DynRegionId(2));
        assert_eq!(m.live_log_records(), 0);
        // Late-arriving store of the promoted region is no longer logged.
        m.accept(1, DynRegionId(2), 72, 9, true, &mut nvm);
        assert_eq!(m.log_appends, 1, "no new log");
        // Crash now reverts nothing: region 2's effects are in place and will
        // be re-executed from its entry.
        m.crash_revert(&mut nvm);
        assert_eq!(nvm.load(64), 2);
    }

    #[test]
    fn wpq_hit_reports_drain_time() {
        let mut m = mc();
        let mut nvm = Memory::new();
        m.accept(5, DynRegionId(1), 64, 7, false, &mut nvm);
        assert_eq!(m.wpq_hit(64), Some(15));
        assert_eq!(m.wpq_hit(72), None);
        m.tick(15);
        assert_eq!(m.wpq_hit(64), None);
    }

    #[test]
    fn logged_drain_is_slower() {
        let mut m = MemoryController::new(0, 4, 10, 10);
        let mut nvm = Memory::new();
        m.accept(0, DynRegionId(5), 0, 1, true, &mut nvm); // 20 cycles
        m.accept(0, DynRegionId(5), 8, 1, false, &mut nvm); // +10 (pipelined)
        m.tick(19);
        assert_eq!(m.wpq_occupancy(), 2);
        m.tick(20);
        assert_eq!(m.wpq_occupancy(), 1);
        m.tick(30);
        assert_eq!(m.wpq_occupancy(), 0);
    }
}
