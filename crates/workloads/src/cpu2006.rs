//! SPEC CPU2006 stand-ins (10 apps): astar, bzip2, gobmk, h264ref, lbm,
//! libquantum, milc, namd, sjeng, soplex.
//!
//! Behavioural sketches: astar walks a large graph pseudo-randomly with
//! moderate writes; bzip2 streams with a histogram pass; gobmk/sjeng are
//! branchy, cache-resident compute; h264ref mixes stencils with block copies;
//! lbm is a write-heavy big-footprint stencil (the paper calls out its 22%
//! L1D miss rate); libquantum streams xor updates over a big array; milc is a
//! read-bandwidth-bound reduction; namd is compute-dense; soplex does sparse
//! random reads with sequential writes.

use crate::footprint::*;
use crate::kernels::*;
use crate::{app, arena, checksum, Suite, Workload};

fn w(name: &'static str, window: u64, module: cwsp_ir::module::Module) -> Workload {
    Workload {
        name,
        suite: Suite::Cpu2006,
        module,
        window,
    }
}

/// Build all ten CPU2006 workloads.
pub fn all() -> Vec<Workload> {
    vec![
        w(
            "astar",
            120_000,
            app("astar", |m, b, mut bb| {
                let g = arena(m, "graph", DRAM);
                bb = random_walk(b, bb, g, DRAM, 2_500, 0xA57A, 4);
                bb = pointer_chase(b, bb, g, DRAM, 1_200, 7);
                checksum(b, bb, g);
                bb
            }),
        ),
        w(
            "bzip2",
            120_000,
            app("bzip2", |m, b, mut bb| {
                let src = arena(m, "src", L2);
                let hist = arena(m, "hist", L1);
                bb = rmw_sweep(b, bb, src, L2, 1, 3_000);
                bb = random_walk(b, bb, hist, L1, 2_500, 0xB21, 1);
                checksum(b, bb, hist);
                bb
            }),
        ),
        w(
            "gobmk",
            120_000,
            app("gobmk", |m, b, mut bb| {
                let board = arena(m, "board", L1);
                bb = compute_loop(b, bb, board, 650, 48);
                bb = random_walk(b, bb, board, L1, 1_500, 0x60, 6);
                checksum(b, bb, board);
                bb
            }),
        ),
        w(
            "h264ref",
            130_000,
            app("h264ref", |m, b, mut bb| {
                let frame = arena(m, "frame", L2);
                bb = stencil3(b, bb, frame, frame + (L2 / 2) * 8, 2_000);
                bb = rmw_sweep(b, bb, frame, L2, 16, 1_500);
                bb = compute_loop(b, bb, frame + 64, 260, 40);
                checksum(b, bb, frame);
                bb
            }),
        ),
        w(
            "lbm",
            150_000,
            app("lbm", |m, b, mut bb| {
                // Big-footprint, write-heavy stencil sweeps: high L1D miss rate.
                let grid = arena(m, "grid", DRAM);
                bb = stencil3(b, bb, grid, grid + (DRAM / 2) * 8, 3_500);
                bb = stencil3(b, bb, grid + (DRAM / 2) * 8, grid, 3_500);
                checksum(b, bb, grid + 8);
                bb
            }),
        ),
        w(
            "libquan",
            120_000,
            app("libquan", |m, b, mut bb| {
                // Streaming xor gate application over a big state vector.
                let state = arena(m, "qstate", DRAM);
                bb = rmw_sweep(b, bb, state, DRAM, 1, 6_000);
                checksum(b, bb, state);
                bb
            }),
        ),
        w(
            "milc",
            120_000,
            app("milc", |m, b, mut bb| {
                let lat = arena(m, "lattice", DRAM);
                let out = arena(m, "out", L1);
                bb = reduction(b, bb, lat, DRAM, 7, 5_000, out);
                bb = rmw_sweep(b, bb, lat, DRAM, 64, 800);
                checksum(b, bb, out);
                bb
            }),
        ),
        w(
            "namd",
            120_000,
            app("namd", |m, b, mut bb| {
                let cells = arena(m, "cells", L1);
                bb = compute_loop(b, bb, cells, 1_000, 64);
                checksum(b, bb, cells);
                bb
            }),
        ),
        w(
            "sjeng",
            120_000,
            app("sjeng", |m, b, mut bb| {
                let tt = arena(m, "ttable", L2);
                bb = compute_loop(b, bb, tt, 650, 48);
                bb = random_walk(b, bb, tt, L2, 1_800, 0x57E, 8);
                checksum(b, bb, tt);
                bb
            }),
        ),
        w(
            "soplex",
            120_000,
            app("soplex", |m, b, mut bb| {
                let mat = arena(m, "matrix", DRAM);
                let sol = arena(m, "solution", L1);
                bb = random_walk(b, bb, mat, DRAM, 2_200, 0x50F, 16);
                bb = rmw_sweep(b, bb, sol, L1, 1, 2_000);
                checksum(b, bb, sol);
                bb
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_apps_exist_and_run() {
        let ws = all();
        assert_eq!(ws.len(), 10);
        for w in &ws {
            let out = cwsp_ir::interp::run(&w.module, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.steps > 5_000, "{}", w.name);
        }
    }

    #[test]
    fn lbm_is_write_heavier_than_milc() {
        // Count store effects in the interpreter stream.
        let count_stores = |name: &str| {
            let w = all().into_iter().find(|w| w.name == name).unwrap();
            let mut mem = cwsp_ir::memory::Memory::new();
            let mut i = cwsp_ir::interp::Interp::new(&w.module, 0, &mut mem).unwrap();
            let (mut stores, mut steps) = (0u64, 0u64);
            while !i.is_halted() && steps < 200_000 {
                let e = i.step(&mut mem).unwrap();
                stores += e.writes.len() as u64;
                steps += 1;
            }
            (stores, steps)
        };
        let (lbm_stores, lbm_steps) = count_stores("lbm");
        let (milc_stores, milc_steps) = count_stores("milc");
        assert!(
            lbm_stores * milc_steps > milc_stores * lbm_steps,
            "lbm store rate ({lbm_stores}/{lbm_steps}) should exceed milc ({milc_stores}/{milc_steps})"
        );
    }
}
