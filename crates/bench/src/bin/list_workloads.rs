//! Print the workload registry: suite, name, behavioural sketch, and static
//! program size.

fn main() {
    println!("{:<10} {:<10} {:>6}  description", "suite", "app", "insts");
    for w in cwsp_workloads::all() {
        println!(
            "{:<10} {:<10} {:>6}  {}",
            w.suite.to_string(),
            w.name,
            w.module.inst_count(),
            w.description()
        );
    }
    println!(
        "\nhierarchy probes (Figs 1/18): {} apps",
        cwsp_workloads::probes::hierarchy_probes().len()
    );
}
