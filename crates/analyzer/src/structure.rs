//! Structural region rules (invariant family I4, §IV).
//!
//! Region formation promises: a boundary at every loop header and every
//! control-flow join, a boundary immediately before every call, and
//! boundaries on both sides of every synchronization point (atomic/fence).
//! These rules are what reduce each region's CFG fragment to a *tree* of
//! straight-line code — the property the idempotence analysis (and the
//! compiler's own cut placement) relies on for linear-time traversal.
//!
//! Checkpoint instructions may legitimately sit between a boundary and the
//! instruction it guards (the checkpoint-placement pass inserts `Ckpt`s
//! adjacent to boundaries in both placement modes), so adjacency checks skip
//! over `Ckpt`s.

use crate::diag::{Diagnostic, Invariant, Location, Severity};
use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::Inst;
use cwsp_ir::pretty::fmt_inst;

fn diag(
    f: &Function,
    b: BlockId,
    idx: Option<usize>,
    severity: Severity,
    code: &'static str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        severity,
        invariant: Invariant::Structure,
        code,
        message,
        location: Location {
            function: f.name.clone(),
            block: b.0,
            inst: idx,
        },
        region: None,
        witness: None,
    }
}

/// Whether block `b` starts with a `Boundary`.
fn starts_with_boundary(f: &Function, b: BlockId) -> bool {
    matches!(f.block(b).insts.first(), Some(Inst::Boundary { .. }))
}

/// Nearest non-`Ckpt` instruction strictly before `idx` in `b`'s block.
fn prev_skipping_ckpts(f: &Function, b: BlockId, idx: usize) -> Option<&Inst> {
    f.block(b).insts[..idx]
        .iter()
        .rev()
        .find(|i| !matches!(i, Inst::Ckpt { .. }))
}

/// Nearest non-`Ckpt` instruction strictly after `idx` in `b`'s block.
fn next_skipping_ckpts(f: &Function, b: BlockId, idx: usize) -> Option<&Inst> {
    f.block(b).insts[idx + 1..]
        .iter()
        .find(|i| !matches!(i, Inst::Ckpt { .. }))
}

/// Check the structural rules on one function, appending findings to `out`.
pub fn check_function(f: &Function, out: &mut Vec<Diagnostic>) {
    let rpo = cfg::reverse_post_order(f);
    let mut reachable = vec![false; f.blocks.len()];
    for &b in &rpo {
        reachable[b.index()] = true;
    }
    let preds = cfg::predecessors(f);
    let headers = cfg::loop_headers(f);

    for &b in &rpo {
        // Join blocks and loop headers must begin with a boundary, or the
        // region fragment flowing into them is not a tree and re-execution
        // may replay a merged path.
        let npreds = preds[b.index()]
            .iter()
            .filter(|p| reachable[p.index()])
            .count();
        if npreds >= 2 && !starts_with_boundary(f, b) {
            out.push(diag(
                f,
                b,
                Some(0),
                Severity::Error,
                "I4-join-no-boundary",
                format!("control-flow join bb{} ({npreds} predecessors) does not start with a region boundary", b.0),
            ));
        }
        if headers.contains(&b) && !starts_with_boundary(f, b) {
            out.push(diag(
                f,
                b,
                Some(0),
                Severity::Error,
                "I4-loop-header-no-boundary",
                format!(
                    "loop header bb{} does not start with a region boundary",
                    b.0
                ),
            ));
        }

        let insts = &f.block(b).insts;
        for (i, inst) in insts.iter().enumerate() {
            match inst {
                Inst::Call { .. } => {
                    let guarded = i > 0
                        && matches!(prev_skipping_ckpts(f, b, i), Some(Inst::Boundary { .. }));
                    if !guarded {
                        out.push(diag(
                            f,
                            b,
                            Some(i),
                            Severity::Error,
                            "I4-call-no-boundary",
                            format!(
                                "{} is not immediately preceded by a region boundary",
                                fmt_inst(inst)
                            ),
                        ));
                    }
                }
                Inst::AtomicRmw { .. } | Inst::Fence => {
                    let before_ok = i > 0
                        && matches!(prev_skipping_ckpts(f, b, i), Some(Inst::Boundary { .. }));
                    let after_ok =
                        matches!(next_skipping_ckpts(f, b, i), Some(Inst::Boundary { .. }));
                    if !before_ok || !after_ok {
                        let side = match (before_ok, after_ok) {
                            (false, false) => "before or after",
                            (false, true) => "before",
                            _ => "after",
                        };
                        out.push(diag(
                            f,
                            b,
                            Some(i),
                            Severity::Error,
                            "I4-sync-no-boundary",
                            format!(
                                "synchronization point {} has no region boundary {side} it",
                                fmt_inst(inst)
                            ),
                        ));
                    }
                }
                Inst::Boundary { id } => {
                    // Two consecutive boundaries delimit an empty region —
                    // legal but wasteful (a boundary followed only by the
                    // block terminator is normal compiled output and is not
                    // flagged).
                    if matches!(insts.get(i + 1), Some(Inst::Boundary { .. })) {
                        out.push(diag(
                            f,
                            b,
                            Some(i),
                            Severity::Warning,
                            "I4-empty-region",
                            format!("region {id} is empty (boundary immediately follows boundary)"),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{AtomicOp, MemRef, Operand};
    use cwsp_ir::module::FuncId;
    use cwsp_ir::types::{Reg, RegionId};

    fn codes(f: &Function) -> Vec<&'static str> {
        let mut out = Vec::new();
        check_function(f, &mut out);
        out.iter().map(|d| d.code).collect()
    }

    #[test]
    fn unguarded_call_and_join_are_flagged() {
        let mut bld = FunctionBuilder::new("f", 1);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        bld.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(a, Inst::Br { target: join });
        bld.push(b2, Inst::Br { target: join });
        bld.push(
            join,
            Inst::Call {
                func: FuncId(0),
                args: vec![],
                ret: None,
                save_regs: vec![],
            },
        );
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let c = codes(&f);
        assert!(c.contains(&"I4-join-no-boundary"), "{c:?}");
        assert!(c.contains(&"I4-call-no-boundary"), "{c:?}");
    }

    #[test]
    fn boundary_guarded_call_passes_even_through_ckpts() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let r0 = bld.mov(e, Operand::imm(1));
        bld.push(e, Inst::Boundary { id: RegionId(0) });
        bld.push(e, Inst::Ckpt { reg: r0 });
        bld.push(
            e,
            Inst::Call {
                func: FuncId(0),
                args: vec![],
                ret: None,
                save_regs: vec![],
            },
        );
        bld.push(e, Inst::Halt);
        let f = bld.build();
        assert!(codes(&f).is_empty(), "{:?}", codes(&f));
    }

    #[test]
    fn sync_needs_boundaries_on_both_sides() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        bld.push(e, Inst::Boundary { id: RegionId(0) });
        bld.push(
            e,
            Inst::AtomicRmw {
                op: AtomicOp::FetchAdd,
                dst: Reg(0),
                addr: MemRef::abs(64),
                src: Operand::imm(1),
                expected: Operand::imm(0),
            },
        );
        bld.push(e, Inst::Halt);
        let mut f = bld.build();
        f.reg_count = f.reg_count.max(1);
        let c = codes(&f);
        assert_eq!(c, vec!["I4-sync-no-boundary"], "missing the after-side");

        // Adding the after-boundary fixes it.
        f.blocks[0]
            .insts
            .insert(2, Inst::Boundary { id: RegionId(1) });
        assert!(codes(&f).is_empty(), "{:?}", codes(&f));
    }

    #[test]
    fn loop_header_without_boundary_is_flagged() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let header = bld.block();
        let exit = bld.block();
        let c = bld.vreg();
        bld.push(e, Inst::Br { target: header });
        bld.push(
            header,
            Inst::CondBr {
                cond: c.into(),
                if_true: header,
                if_false: exit,
            },
        );
        bld.push(exit, Inst::Halt);
        let f = bld.build();
        let found = codes(&f);
        assert!(found.contains(&"I4-loop-header-no-boundary"), "{found:?}");
    }

    #[test]
    fn empty_region_is_a_warning_not_error() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        bld.push(e, Inst::Boundary { id: RegionId(0) });
        bld.push(e, Inst::Boundary { id: RegionId(1) });
        bld.push(e, Inst::Halt);
        let f = bld.build();
        let mut out = Vec::new();
        check_function(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "I4-empty-region");
        assert_eq!(out[0].severity, Severity::Warning);
    }

    #[test]
    fn boundary_before_terminator_is_not_an_empty_region() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        bld.push(e, Inst::Boundary { id: RegionId(0) });
        bld.push(e, Inst::Halt);
        let f = bld.build();
        assert!(codes(&f).is_empty());
    }

    #[test]
    fn unreachable_join_is_not_checked() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let dead1 = bld.block();
        let dead2 = bld.block();
        bld.push(e, Inst::Halt);
        bld.push(dead1, Inst::Br { target: dead2 });
        bld.push(dead2, Inst::Br { target: dead2 });
        let f = bld.build();
        assert!(codes(&f).is_empty(), "{:?}", codes(&f));
    }
}
