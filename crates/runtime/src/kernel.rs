//! The simulated kernel entry path (§VI).
//!
//! Every system call enters through `entry_syscall`, the analogue of
//! `entry_SYSCALL_64` in `entry_64.S`. Like the paper's hand-patched
//! assembly, the function carries *manually delineated* region boundaries —
//! at entry, right before the dispatch, and at exit — which the cWSP compiler
//! preserves (and renumbers) when it processes the module. Kernel services
//! mutate persistent kernel state (a tick counter, a console cursor) through
//! the same NVM machinery as everything else, giving the whole stack crash
//! consistency.

use cwsp_ir::builder::FunctionBuilder;
use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
use cwsp_ir::module::{FuncId, GlobalId, Module};
use cwsp_ir::types::{RegionId, Word};

/// `syscall(SYS_WRITE, value, _)`: append `value` to the kernel console
/// buffer and emit it; returns the new console cursor.
pub const SYS_WRITE: Word = 1;
/// `syscall(SYS_GETPID, _, _)`: returns the (fixed) pid.
pub const SYS_GETPID: Word = 39;
/// `syscall(SYS_BRK, words, _)`: extend the heap; returns the old break.
pub const SYS_BRK: Word = 12;
/// `syscall(SYS_TIME, _, _)`: a deterministic monotonic tick counter.
pub const SYS_TIME: Word = 201;

/// Word indices within the kernel-state global.
const PID: i64 = 0;
const TICKS: i64 = 1;
const CONSOLE_CURSOR: i64 = 2;
/// Console ring buffer of 32 words starting here.
const CONSOLE_BUF: i64 = 8;
const CONSOLE_WORDS: u64 = 32;

/// Install the kernel substrate; returns `(kernel_state, entry_syscall)`.
pub fn install(m: &mut Module, sbrk: FuncId) -> (GlobalId, FuncId) {
    let state = m.add_global_init("kernel_state", 8 + CONSOLE_WORDS, vec![4242, 0, 0]);

    // sys_write(value): buf[cursor % N] = value; cursor += 1; out value.
    let sys_write = {
        let mut b = FunctionBuilder::new("sys_write", 1);
        let e = b.entry();
        let v = b.param(0);
        let cur = b.load(e, MemRef::global(state, CONSOLE_CURSOR));
        let slot = b.bin(e, BinOp::RemU, cur.into(), Operand::imm(CONSOLE_WORDS));
        let byt = b.bin(e, BinOp::Shl, slot.into(), Operand::imm(3));
        let base = m.global_addr(state) + CONSOLE_BUF as Word * 8;
        let addr = b.bin(e, BinOp::Add, byt.into(), Operand::imm(base));
        b.store(e, v.into(), MemRef::reg(addr, 0));
        let nxt = b.bin(e, BinOp::Add, cur.into(), Operand::imm(1));
        b.store(e, nxt.into(), MemRef::global(state, CONSOLE_CURSOR));
        b.push(e, Inst::Out { val: v.into() });
        b.push(
            e,
            Inst::Ret {
                val: Some(nxt.into()),
            },
        );
        m.add_function(b.build())
    };

    // sys_time(): ticks += 1; return ticks.
    let sys_time = {
        let mut b = FunctionBuilder::new("sys_time", 0);
        let e = b.entry();
        let t = b.load(e, MemRef::global(state, TICKS));
        let t2 = b.bin(e, BinOp::Add, t.into(), Operand::imm(1));
        b.store(e, t2.into(), MemRef::global(state, TICKS));
        b.push(
            e,
            Inst::Ret {
                val: Some(t2.into()),
            },
        );
        m.add_function(b.build())
    };

    // sys_getpid(): load pid.
    let sys_getpid = {
        let mut b = FunctionBuilder::new("sys_getpid", 0);
        let e = b.entry();
        let p = b.load(e, MemRef::global(state, PID));
        b.push(
            e,
            Inst::Ret {
                val: Some(p.into()),
            },
        );
        m.add_function(b.build())
    };

    // entry_syscall(nr, a0, a1) — hand-annotated with region boundaries like
    // the patched entry_SYSCALL_64 (§VI). Placeholder ids are renumbered by
    // the compiler.
    let entry = {
        let mut b = FunctionBuilder::new("entry_syscall", 3);
        let e = b.entry();
        let d_write = b.block();
        let d_brk = b.block();
        let d_time = b.block();
        let d_pid = b.block();
        let chain1 = b.block();
        let chain2 = b.block();
        let chain3 = b.block();
        let (nr, a0, _a1) = (b.param(0), b.param(1), b.param(2));
        // Manual boundary at kernel entry (the user→kernel context switch).
        b.push(
            e,
            Inst::Boundary {
                id: RegionId(u32::MAX),
            },
        );
        let is_write = b.bin(e, BinOp::CmpEq, nr.into(), Operand::imm(SYS_WRITE));
        b.push(
            e,
            Inst::CondBr {
                cond: is_write.into(),
                if_true: d_write,
                if_false: chain1,
            },
        );
        let is_brk = b.bin(chain1, BinOp::CmpEq, nr.into(), Operand::imm(SYS_BRK));
        b.push(
            chain1,
            Inst::CondBr {
                cond: is_brk.into(),
                if_true: d_brk,
                if_false: chain2,
            },
        );
        let is_time = b.bin(chain2, BinOp::CmpEq, nr.into(), Operand::imm(SYS_TIME));
        b.push(
            chain2,
            Inst::CondBr {
                cond: is_time.into(),
                if_true: d_time,
                if_false: chain3,
            },
        );
        b.push(chain3, Inst::Br { target: d_pid });
        // Manual boundary right before each dispatch (the `do_syscall_64`
        // callsite boundary of Fig 11), then the call and kernel exit.
        for (bb, func, args) in [
            (d_write, sys_write, vec![Operand::Reg(a0)]),
            (d_brk, sbrk, vec![Operand::Reg(a0)]),
            (d_time, sys_time, vec![]),
            (d_pid, sys_getpid, vec![]),
        ] {
            b.push(
                bb,
                Inst::Boundary {
                    id: RegionId(u32::MAX),
                },
            );
            let r = b.call(bb, func, args, true).expect("ret");
            // Manual boundary at kernel exit (sysret back to user space).
            b.push(
                bb,
                Inst::Boundary {
                    id: RegionId(u32::MAX),
                },
            );
            b.push(
                bb,
                Inst::Ret {
                    val: Some(r.into()),
                },
            );
        }
        m.add_function(b.build())
    };

    (state, entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use cwsp_ir::interp::run;

    fn syscall_main(nr: Word, a0: Word, repeat: u64) -> Module {
        let mut m = Module::new("t");
        let rt = Runtime::install(&mut m);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let mut last = None;
        for _ in 0..repeat {
            let r = b
                .call(
                    e,
                    rt.syscall,
                    vec![Operand::imm(nr), Operand::imm(a0), Operand::imm(0)],
                    true,
                )
                .unwrap();
            last = Some(r);
        }
        b.push(
            e,
            Inst::Ret {
                val: Some(last.unwrap().into()),
            },
        );
        let main = m.add_function(b.build());
        m.set_entry(main);
        m
    }

    #[test]
    fn getpid_returns_fixed_pid() {
        let m = syscall_main(SYS_GETPID, 0, 1);
        assert_eq!(run(&m, 10_000).unwrap().return_value, Some(4242));
    }

    #[test]
    fn time_ticks_monotonically() {
        let m = syscall_main(SYS_TIME, 0, 3);
        assert_eq!(run(&m, 10_000).unwrap().return_value, Some(3));
    }

    #[test]
    fn write_emits_output_and_advances_cursor() {
        let m = syscall_main(SYS_WRITE, 77, 2);
        let out = run(&m, 10_000).unwrap();
        assert_eq!(out.return_value, Some(2), "cursor after two writes");
        assert_eq!(out.output, vec![77, 77]);
    }

    #[test]
    fn brk_goes_through_kernel_path() {
        let m = syscall_main(SYS_BRK, 4, 1);
        let out = run(&m, 10_000).unwrap();
        assert_eq!(out.return_value, Some(cwsp_ir::layout::HEAP_BASE));
    }

    #[test]
    fn unknown_syscall_falls_back_to_getpid() {
        let m = syscall_main(999, 0, 1);
        assert_eq!(run(&m, 10_000).unwrap().return_value, Some(4242));
    }

    #[test]
    fn manual_boundaries_survive_compilation() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        let m = syscall_main(SYS_WRITE, 5, 3);
        let oracle = run(&m, 100_000).unwrap();
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        // The entry function keeps (renumbered) boundaries.
        let entry_fn = c.module.find_function("entry_syscall").unwrap();
        let f = c.module.function(entry_fn);
        let boundaries = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Boundary { .. }))
            .count();
        assert!(
            boundaries >= 9,
            "manual + structural boundaries: {boundaries}"
        );
        let out = run(&c.module, 200_000).unwrap();
        assert_eq!(out.output, oracle.output);
        cwsp_compiler::verify::check_all(&m, &c.module, &c.slices, 200_000).unwrap();
    }
}
