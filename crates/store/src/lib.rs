//! # cwsp-store — tiered storage backends
//!
//! Two storage layers that let the reproduction outgrow host RAM (the
//! paper's evaluation runs 2.5–6 GB footprints over a CXL-tiered hierarchy,
//! §IX-C) and keep an incrementally-mergeable history of every experiment:
//!
//! * [`spill`] — an append-only page file backing the cold tier of
//!   [`cwsp_ir::Memory`]'s page table. Hot pages stay in RAM under a
//!   configurable resident budget (`CWSP_MEM_BUDGET`); evicted pages land
//!   here and fault back on demand. Reads go through one shared `mmap` when
//!   the platform provides it, with a `pread`/`pwrite` fallback.
//! * [`spine`] — an LSM-style result store: experiment results commit as
//!   immutable sorted batches with a manifest; merging compacts levels, and
//!   a cursor API supports point lookups by fingerprint plus time-travel
//!   queries (the store as of any committed batch).
//! * [`tier`] — process-wide counters (faults, evictions, writebacks,
//!   resident/spilled gauges) published into the observability registry by
//!   `cwsp-obs` and asserted by the `fig_beyond_ram` storage smoke test.
//!
//! The crate is dependency-free (like the rest of the workspace) and sits
//! below `cwsp-ir`, so the memory model can use it without layering cycles.

pub mod spill;
pub mod spine;
pub mod tier;

pub use spill::{SpillStore, PAGE_BYTES, PAGE_WORDS};
pub use spine::{Batch, Key, Spine};
