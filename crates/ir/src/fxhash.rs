//! A local FxHash-style hasher for hot sparse maps.
//!
//! `std::collections::HashMap`'s default SipHash is DoS-resistant but costs
//! tens of cycles per lookup — measurable when the paged [`crate::Memory`]
//! or the simulator's cache model performs one map operation per simulated
//! memory access. Page numbers, set indices, and line addresses are not
//! attacker-controlled, so these maps use the rustc-style multiply-rotate
//! hash instead (the same trade rustc itself makes): one rotate, one xor,
//! one multiply per 8 bytes.
//!
//! This is the canonical definition; `cwsp-sim` re-exports it as `sim::hash`
//! so both the memory model and the cache model key their maps identically.

use std::hash::{BuildHasher, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-rotate hasher (FxHash); not DoS-resistant, not for untrusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s; plug into `HashMap::with_hasher`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed with [`FxHasher`] — the hot-map type.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_spreading() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        // Consecutive small keys (the common set-index pattern) must not
        // collide and should differ in their low bits (HashMap bucket bits).
        let hs: Vec<u64> = (0..1024u64).map(hash_one).collect();
        let mut uniq = hs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hs.len(), "no collisions on 1k consecutive keys");
        let low_bits: std::collections::HashSet<u64> = hs.iter().map(|h| h & 0xff).collect();
        assert!(low_bits.len() > 200, "low bits spread: {}", low_bits.len());
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        // Not required by the Hasher contract, but documents that the
        // bytewise path chunks by little-endian u64 words.
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&50), Some(&100));
        assert_eq!(m.len(), 100);
    }
}
