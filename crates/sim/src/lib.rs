//! # cwsp-sim — the cWSP architecture simulator
//!
//! An execution-driven, cycle-accounted model of the machine evaluated in
//! *Compiler-Directed Whole-System Persistence* (ISCA 2024, §IX): Skylake-like
//! cores, a multi-level sparse-tag cache hierarchy with a direct-mapped DRAM
//! cache (Intel PMEM memory mode) or CXL-attached NVM, and the cWSP persist
//! hardware — persist buffer (PB), region boundary table (RBT), FIFO persist
//! path, battery-backed write-pending queues (WPQ), and per-region hardware
//! undo logs for memory-controller speculation.
//!
//! The simulator drives the *same* interpreter the correctness oracle uses, so
//! architectural semantics are exact; a separate NVM image advances only as
//! stores drain through the persist machinery. Power can be cut at any cycle
//! ([`machine::Machine::run`] with a crash cycle +
//! [`machine::Machine::into_crash_image`]), yielding the precise post-failure
//! NVM state the recovery protocol (in `cwsp-core`) operates on.
//!
//! Baselines: [`scheme::Scheme`] selects cWSP (with per-feature ablation
//! toggles for Fig 15), Capri, ReplayCache, the ideal PSP configuration, or
//! the plain baseline machine.
//!
//! ## Example
//!
//! ```
//! use cwsp_ir::prelude::*;
//! use cwsp_sim::config::SimConfig;
//! use cwsp_sim::machine::{Machine, RunEnd};
//! use cwsp_sim::scheme::Scheme;
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", 0);
//! let e = b.entry();
//! b.store(e, Operand::imm(42), MemRef::abs(4096));
//! b.push(e, Inst::Halt);
//! let f = m.add_function(b.build());
//! m.set_entry(f);
//!
//! let cfg = SimConfig::default();
//! let mut machine = Machine::new(&m, &cfg, Scheme::Baseline);
//! let result = machine.run(1_000, None).unwrap();
//! assert_eq!(result.end, RunEnd::Completed);
//! assert!(result.stats.cycles > 0);
//! ```

pub mod cache;
pub mod config;
pub mod energy;
pub mod hash;
pub mod iodevice;
pub mod machine;
pub mod mc;
pub mod persist;
pub mod profiler;
pub mod race;
pub mod scheme;
pub mod stats;
pub mod threaded;
pub mod trace;
pub mod wbuf;

pub use config::{CxlDevice, MainMemory, NvmTech, SimConfig, CXL_DEVICES};
pub use machine::{CrashImage, Machine, RunEnd, RunResult};
pub use scheme::{CwspFeatures, Scheme};
pub use stats::SimStats;
