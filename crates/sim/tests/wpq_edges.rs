//! WPQ edge cases: full-queue backpressure, drain-at-halt, and persist
//! ordering when two cores share one memory controller (§V-B, Fig 26).

use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp_ir::memory::Memory;
use cwsp_ir::types::{DynRegionId, Word};
use cwsp_sim::config::SimConfig;
use cwsp_sim::machine::{Machine, RunEnd};
use cwsp_sim::mc::MemoryController;
use cwsp_sim::scheme::Scheme;
use cwsp_workloads::multicore;

const DRAIN: u64 = 10;

/// A full WPQ rejects arrivals until `tick` frees a drained slot; the NVM
/// image is untouched by the rejected store.
#[test]
fn full_wpq_backpressures_until_a_slot_drains() {
    let mut mc = MemoryController::new(0, 2, DRAIN, 0);
    let mut nvm = Memory::new();
    let r = DynRegionId(1);

    assert!(mc.accept(0, r, 0x1000, 1, false, &mut nvm));
    assert!(mc.accept(0, r, 0x1008, 2, false, &mut nvm));
    assert_eq!(mc.wpq_occupancy(), 2);
    assert!(!mc.wpq_has_space());

    // Third arrival bounces: no slot, no NVM write, no occupancy change.
    assert!(!mc.accept(0, r, 0x1010, 3, false, &mut nvm));
    assert_eq!(mc.wpq_occupancy(), 2);
    assert_eq!(nvm.load(0x1010), 0);

    // The media pipeline serializes drains: entry 0 frees at DRAIN, entry 1
    // at 2*DRAIN. Ticking before the first drain completes frees nothing.
    mc.tick(DRAIN - 1);
    assert!(!mc.wpq_has_space());

    mc.tick(DRAIN);
    assert_eq!(mc.wpq_occupancy(), 1);
    assert!(mc.accept(DRAIN, r, 0x1010, 3, false, &mut nvm));
    assert_eq!(nvm.load(0x1010), 3);

    mc.tick(3 * DRAIN);
    assert_eq!(mc.wpq_occupancy(), 0);
    // Entries were persistent on acceptance (ADR domain), not at drain.
    assert_eq!(nvm.load(0x1000), 1);
    assert_eq!(nvm.load(0x1008), 2);
}

/// WPQ slots free in FIFO arrival order, and a pending entry delays loads to
/// its address until exactly its drain cycle.
#[test]
fn wpq_drains_fifo_and_delays_matching_loads() {
    let mut mc = MemoryController::new(0, 4, DRAIN, 0);
    let mut nvm = Memory::new();

    for i in 0..4u64 {
        assert!(mc.accept(0, DynRegionId(i), 0x2000 + i * 8, i, false, &mut nvm));
    }
    // Serialized media: entry i drains at (i+1)*DRAIN, in arrival order.
    for i in 0..4u64 {
        assert_eq!(mc.wpq_hit(0x2000 + i * 8), Some((i + 1) * DRAIN));
    }
    mc.tick(2 * DRAIN);
    assert_eq!(mc.wpq_occupancy(), 2);
    assert_eq!(mc.wpq_hit(0x2000), None);
    assert_eq!(mc.wpq_hit(0x2008), None);
    assert_eq!(mc.wpq_hit(0x2010), Some(3 * DRAIN));
}

fn compile(module: &cwsp_ir::module::Module) -> cwsp_ir::module::Module {
    CwspCompiler::new(CompileOptions::default())
        .compile(module)
        .module
}

fn run<'a>(module: &'a cwsp_ir::module::Module, cfg: &'a SimConfig) -> Machine<'a> {
    let mut machine = Machine::new(module, cfg, Scheme::cwsp());
    let result = machine.run(u64::MAX, None).expect("run");
    assert_eq!(result.end, RunEnd::Completed);
    machine
}

/// A one-slot WPQ maximizes backpressure but must not wedge the machine: the
/// run still completes, the squeeze is visible as extra RBT stall (regions
/// retire slower when arrivals head-of-line block), and every store still
/// persists with the right value.
#[test]
fn tiny_wpq_stalls_but_completes_and_persists() {
    let (m, _, sums_addr, _) = multicore::drf_partition_sum(2);
    let m = compile(&m);

    let tiny_cfg = SimConfig {
        cores: 2,
        wpq_entries: 1,
        ..SimConfig::default()
    };
    let roomy_cfg = SimConfig {
        cores: 2,
        ..SimConfig::default()
    };
    let tiny = run(&m, &tiny_cfg);
    let roomy = run(&m, &roomy_cfg);
    assert!(tiny.all_halted());
    assert!(
        tiny.stats().cycles >= roomy.stats().cycles,
        "shrinking the WPQ must not speed the machine up ({} < {})",
        tiny.stats().cycles,
        roomy.stats().cycles
    );
    assert!(
        tiny.stats().stall_rbt > roomy.stats().stall_rbt,
        "a 1-entry WPQ must backpressure region retirement ({} <= {})",
        tiny.stats().stall_rbt,
        roomy.stats().stall_rbt
    );
    for tid in 0..2u64 {
        assert_eq!(
            tiny.nvm().load(sums_addr + tid * 8),
            multicore::expected_sum(tid),
            "sums[{tid}] must be persistent at halt"
        );
    }
}

/// `RunEnd::Completed` means the persist machinery drained: at halt the NVM
/// image agrees with architectural memory over every program-data word the
/// workload wrote.
#[test]
fn drain_at_halt_makes_nvm_match_arch_memory() {
    let (m, data_addr, sums_addr, counter_addr) = multicore::drf_partition_sum(2);
    let cfg = SimConfig {
        cores: 2,
        ..SimConfig::default()
    };
    let m = compile(&m);
    let machine = run(&m, &cfg);

    let mut addrs: Vec<Word> = (0..2 * multicore::PARTITION_WORDS)
        .map(|i| data_addr + i * 8)
        .collect();
    addrs.extend((0..2).map(|t| sums_addr + t * 8));
    addrs.push(counter_addr);
    for addr in addrs {
        assert_eq!(
            machine.nvm().load(addr),
            machine.arch_mem().load(addr),
            "NVM and arch memory diverge at {addr:#x} after drain-at-halt"
        );
    }
    // Sanity: the workload actually wrote data (the check above isn't 0==0).
    // Thread 1 writes data[P + i] = 1000 + i.
    let t1_base = data_addr + multicore::PARTITION_WORDS * 8;
    assert_eq!(machine.nvm().load(t1_base + 3 * 8), 1003);
    assert_ne!(machine.nvm().load(sums_addr + 8), 0);
}

/// Two cores funneled through a single memory controller: lock-ordered
/// critical sections persist in order, and the shared balance survives to
/// NVM with the exact expected value.
#[test]
fn two_cores_one_mc_persist_ordering() {
    let (m, balance_addr, ops_addr) = multicore::spinlock_ledger(2);
    let cfg = SimConfig {
        cores: 2,
        mem_controllers: 1,
        wpq_entries: 4,
        ..SimConfig::default()
    };
    let m = compile(&m);
    let machine = run(&m, &cfg);
    let expected = multicore::expected_balance(2);
    assert_eq!(machine.arch_mem().load(balance_addr), expected);
    assert_eq!(
        machine.nvm().load(balance_addr),
        expected,
        "final balance must be persistent through the single shared MC"
    );
    assert_eq!(
        machine.nvm().load(ops_addr),
        machine.arch_mem().load(ops_addr)
    );
}
