//! Figure 18: cWSP vs the ideal partial-system-persistence scheme
//! (BBB/eADR/LightPC) (paper: cWSP 1.03× thanks to the DRAM cache; ideal PSP
//! 1.52× because every LLC miss pays NVM latency).
//!
//! Uses the hierarchy probes on a scaled hierarchy so working sets actually
//! benefit from the DRAM cache (see `cwsp_workloads::probes`).

use cwsp_bench::{cached_stats, measure_all, print_results, scheme_stats};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;
use cwsp_workloads::probes::{hierarchy_probes, SCALE_SHIFT};

fn main() {
    cwsp_bench::harness_main("fig18_psp_comparison", run);
}

fn run() {
    let apps = hierarchy_probes();
    let cfg = SimConfig::default().scaled(SCALE_SHIFT);
    let cwsp = measure_all(&apps, |w| {
        let base = cached_stats(w.name, &w.module, &cfg, Scheme::Baseline).cycles;
        let s = scheme_stats(w, &cfg, Scheme::cwsp(), CompileOptions::default()).cycles;
        s as f64 / base as f64
    });
    print_results(
        "Fig 18a: cWSP (DRAM cache enabled; paper gmean 1.03)",
        "x",
        &cwsp,
    );
    // Ideal PSP: no DRAM cache; original binary (battery-backed hierarchy
    // needs no compiler support). Normalized to the DRAM-cache baseline.
    let psp = measure_all(&apps, |w| {
        let base = cached_stats(w.name, &w.module, &cfg, Scheme::Baseline).cycles;
        let mut nocache = cfg.clone();
        nocache.dram_cache = None;
        let c = cached_stats(w.name, &w.module, &nocache, Scheme::IdealPsp).cycles;
        c as f64 / base as f64
    });
    print_results(
        "Fig 18b: ideal PSP (no DRAM cache; paper gmean 1.52)",
        "x",
        &psp,
    );
}
