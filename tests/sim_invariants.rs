//! Simulator-level invariants across schemes and configurations.

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::{Machine, RunEnd};
use cwsp::sim::scheme::{CwspFeatures, Scheme};

fn compiled(name: &str) -> cwsp::ir::Module {
    let w = cwsp::workloads::by_name(name).unwrap();
    CwspCompiler::new(CompileOptions::default())
        .compile(&w.module)
        .module
}

#[test]
fn nvm_converges_to_architectural_state_at_completion() {
    for name in ["fft", "tatp", "h264ref"] {
        let m = compiled(name);
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, None).unwrap();
        assert_eq!(r.end, RunEnd::Completed, "{name}");
        let diffs = machine.nvm().diff_where(
            machine.arch_mem(),
            |a| !cwsp::ir::layout::is_hw_meta_addr(a),
            8,
        );
        assert!(
            diffs.is_empty(),
            "{name}: NVM lag at completion: {diffs:x?}"
        );
    }
}

#[test]
fn all_schemes_complete_and_order_sensibly() {
    let w = cwsp::workloads::by_name("ocg").unwrap();
    let m = CwspCompiler::new(CompileOptions::default())
        .compile(&w.module)
        .module;
    let cfg = SimConfig::default();
    let cycles = |scheme| {
        let mut machine = Machine::new(&m, &cfg, scheme);
        machine.run(u64::MAX, None).unwrap().stats.cycles
    };
    let base = cycles(Scheme::Baseline);
    let cwsp = cycles(Scheme::cwsp());
    let replay = cycles(Scheme::ReplayCache);
    assert!(base <= cwsp, "cwsp {cwsp} < baseline {base}");
    assert!(cwsp < replay, "replaycache {replay} should be slowest");
}

#[test]
fn disabling_speculation_never_speeds_things_up() {
    let w = cwsp::workloads::by_name("lu-cg").unwrap();
    let m = CwspCompiler::new(CompileOptions::default())
        .compile(&w.module)
        .module;
    let cfg = SimConfig::default();
    let with_spec = {
        let mut machine = Machine::new(&m, &cfg, Scheme::cwsp());
        machine.run(u64::MAX, None).unwrap().stats.cycles
    };
    let without = {
        let f = CwspFeatures {
            mc_speculation: false,
            ..CwspFeatures::default()
        };
        let mut machine = Machine::new(&m, &cfg, Scheme::Cwsp(f));
        machine.run(u64::MAX, None).unwrap().stats.cycles
    };
    assert!(without >= with_spec, "no-spec {without} < spec {with_spec}");
}

#[test]
fn smaller_rbt_is_never_faster() {
    let w = cwsp::workloads::by_name("radix").unwrap();
    let m = CwspCompiler::new(CompileOptions::default())
        .compile(&w.module)
        .module;
    let run = |rbt: usize| {
        let cfg = SimConfig {
            rbt_entries: rbt,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&m, &cfg, Scheme::cwsp());
        machine.run(u64::MAX, None).unwrap().stats.cycles
    };
    let tiny = run(2);
    let default = run(16);
    assert!(tiny >= default, "RBT-2 {tiny} < RBT-16 {default}");
}

#[test]
fn bandwidth_monotonicity() {
    let w = cwsp::workloads::by_name("lulesh").unwrap();
    let m = CwspCompiler::new(CompileOptions::default())
        .compile(&w.module)
        .module;
    let run = |bw: f64| {
        let cfg = SimConfig {
            persist_path_gbps: bw,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&m, &cfg, Scheme::cwsp());
        machine.run(u64::MAX, None).unwrap().stats.cycles
    };
    let slow = run(1.0);
    let fast = run(32.0);
    assert!(slow >= fast, "1GB/s {slow} < 32GB/s {fast}");
}

#[test]
fn multicore_machine_runs_workloads() {
    let w = cwsp::workloads::by_name("water-sp").unwrap();
    let m = CwspCompiler::new(CompileOptions::default())
        .compile(&w.module)
        .module;
    let cfg = SimConfig {
        cores: 4,
        ..SimConfig::default()
    };
    let mut machine = Machine::new(&m, &cfg, Scheme::cwsp());
    let r = machine.run(u64::MAX, None).unwrap();
    assert_eq!(r.end, RunEnd::Completed);
    assert!(machine.all_halted());
    // All cores execute; dynamic instruction count scales with core count.
    let single = {
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        machine.run(u64::MAX, None).unwrap().stats.insts
    };
    assert!(
        r.stats.insts > 3 * single,
        "4 cores ran {} vs single {}",
        r.stats.insts,
        single
    );
}

#[test]
fn region_statistics_match_paper_characteristics() {
    // Fig 19: the paper reports ~38 dynamic instructions per region; our
    // synthetic kernels land in the same regime (tens, not units or
    // thousands).
    let mut sizes = Vec::new();
    for name in ["lbm", "tpcc", "namd"] {
        let m = compiled(name);
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, None).unwrap();
        sizes.push(r.stats.avg_region_insts());
    }
    for s in &sizes {
        assert!(
            *s > 5.0 && *s < 200.0,
            "region size out of regime: {sizes:?}"
        );
    }
}
