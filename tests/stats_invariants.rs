//! `SimStats` internal-consistency invariants, checked over generated
//! programs across every scheme: the op mix must sum to the instruction
//! count, no stall counter may exceed `cycles × cores`, the region-size
//! histogram must total the region count, and L1 hits + misses must match
//! the cache-walked memory operations.
//!
//! The checks themselves live in `SimStats::check_invariants` so figure
//! binaries and other tests can reuse them; this suite drives them over a
//! spread of `genprog` workloads, both raw and cWSP-compiled.

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::core::genprog::generate_default;
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::{Machine, RunEnd};
use cwsp::sim::scheme::Scheme;

fn run_and_check(module: &cwsp::ir::Module, scheme: Scheme, label: &str) {
    let cfg = SimConfig::default();
    let mut machine = Machine::new(module, &cfg, scheme);
    let r = machine
        .run(u64::MAX, None)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(r.end, RunEnd::Completed, "{label}");
    let cores = cfg.cores as u64;
    if let Err(msg) = r.stats.check_invariants(cores) {
        panic!("{label}:\n{msg}");
    }
}

#[test]
fn generated_programs_satisfy_stats_invariants_under_every_scheme() {
    for seed in [3, 17, 42, 99] {
        let m = generate_default(seed);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
        for scheme in [
            Scheme::Baseline,
            Scheme::cwsp(),
            Scheme::Capri,
            Scheme::ReplayCache,
            Scheme::IdealPsp,
        ] {
            // The raw program on the baseline machine, and the compiled one
            // under the persistence scheme — both must be self-consistent.
            run_and_check(&m, Scheme::Baseline, &format!("gen-{seed} raw"));
            run_and_check(
                &compiled.module,
                scheme,
                &format!("gen-{seed} compiled/{}", scheme.name()),
            );
        }
    }
}

#[test]
fn real_workloads_satisfy_stats_invariants() {
    for name in ["namd", "rb", "sps"] {
        let w = cwsp::workloads::by_name(name).unwrap();
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
        run_and_check(&compiled.module, Scheme::cwsp(), name);
    }
}

#[test]
fn invariant_checker_rejects_corrupted_stats() {
    let m = generate_default(7);
    let cfg = SimConfig::default();
    let mut machine = Machine::new(&m, &cfg, Scheme::Baseline);
    let r = machine.run(u64::MAX, None).unwrap();
    let mut s = r.stats.clone();
    s.insts += 1; // now op_mix cannot sum to insts
    let err = s.check_invariants(cfg.cores as u64).unwrap_err();
    assert!(err.contains("op_mix"), "{err}");
}

/// Superblock fusion is a dispatch optimization, not a semantic change: a
/// fused machine must report a `SimStats` byte-identical to the unfused
/// path — same cycles, same per-opcode `op_mix`, same stall and occupancy
/// counters — on completed runs and at power-failure cuts alike.
#[test]
fn fused_and_unfused_machines_report_identical_stats() {
    for seed in [7, 21, 63] {
        let m = generate_default(seed);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
        let cfg = SimConfig::default();
        for scheme in [Scheme::Baseline, Scheme::cwsp()] {
            for crash in [None, Some(25_000)] {
                let label = format!("gen-{seed}/{}/crash={crash:?}", scheme.name());
                let mut fused = Machine::new(&compiled.module, &cfg, scheme);
                fused.set_fuse(true);
                let rf = fused
                    .run(u64::MAX, crash)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let mut plain = Machine::new(&compiled.module, &cfg, scheme);
                plain.set_fuse(false);
                let rp = plain
                    .run(u64::MAX, crash)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(rf.end, rp.end, "{label}");
                assert_eq!(rf.stats, rp.stats, "{label}");
                if let Err(msg) = rf.stats.check_invariants(cfg.cores as u64) {
                    panic!("{label}:\n{msg}");
                }
            }
        }
    }
}
