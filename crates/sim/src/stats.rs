//! Simulation statistics — the raw material of every figure in §IX.

/// Counters collected during one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Dynamic instructions executed (all cores).
    pub insts: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores (program data, excluding checkpoints).
    pub stores: u64,
    /// Checkpoint stores (§IV-B traffic).
    pub ckpt_stores: u64,
    /// Frame spill/restore words written by calls and returns.
    pub frame_stores: u64,
    /// Atomics and fences committed.
    pub syncs: u64,
    /// Dynamic regions started.
    pub regions: u64,
    /// Dynamic instructions accumulated over finished regions (Fig 19's
    /// numerator; divide by [`SimStats::regions`]).
    pub region_insts: u64,
    /// Loads that hit a pending WPQ entry and were delayed (Fig 8).
    pub wpq_hits: u64,
    /// WB drains held back by a PB match (§V-A1).
    pub wb_delays: u64,
    /// Σ WB occupancy per cycle (Fig 6's numerator).
    pub wb_occupancy_sum: u64,
    /// Σ PB occupancy per cycle.
    pub pb_occupancy_sum: u64,
    /// Cycles stalled because the PB was full.
    pub stall_pb: u64,
    /// Cycles stalled because the RBT was full (or boundary-drain without MC
    /// speculation).
    pub stall_rbt: u64,
    /// Cycles stalled because the WB was full.
    pub stall_wb: u64,
    /// Cycles stalled draining at synchronization points.
    pub stall_sync: u64,
    /// Cycles stalled on WPQ-hit load delays.
    pub stall_wpq: u64,
    /// Cycles stalled waiting for a redo-buffer slot (Capri) or synchronous
    /// persist completion (ReplayCache).
    pub stall_scheme: u64,
    /// L1 data cache (hits, misses).
    pub l1: (u64, u64),
    /// Deepest shared SRAM level (hits, misses).
    pub llc_sram: (u64, u64),
    /// DRAM cache (hits, misses).
    pub dram_cache: (u64, u64),
    /// Reads serviced by main memory (NVM).
    pub nvm_reads: u64,
    /// NVM word writes (data + log amplification).
    pub nvm_writes: u64,
    /// Undo-log records appended across all MCs.
    pub log_appends: u64,
    /// Peak live undo-log records across all MCs.
    pub peak_live_logs: usize,
    /// Histogram of dynamic region sizes in instruction-count buckets
    /// `[1-4, 5-8, 9-16, 17-32, 33-64, 65-128, 129+]` (Fig 19's
    /// distribution, not just its average).
    pub region_size_hist: [u64; 7],
    /// Dynamic instruction mix, indexed by decoded opcode (see
    /// [`cwsp_ir::decoded::OPCODE_NAMES`]); summed over all cores.
    pub op_mix: [u64; cwsp_ir::decoded::OPCODE_COUNT],
}

impl SimStats {
    /// Average WB occupancy in entries (Fig 6).
    pub fn avg_wb_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.wb_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average PB occupancy in entries.
    pub fn avg_pb_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.pb_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// WPQ hits per million instructions (Fig 8).
    pub fn wpq_hits_per_minst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.wpq_hits as f64 * 1e6 / self.insts as f64
        }
    }

    /// Record one finished region of `n` instructions into the histogram.
    pub fn record_region_size(&mut self, n: u64) {
        let b = match n {
            0..=4 => 0,
            5..=8 => 1,
            9..=16 => 2,
            17..=32 => 3,
            33..=64 => 4,
            65..=128 => 5,
            _ => 6,
        };
        self.region_size_hist[b] += 1;
    }

    /// Histogram bucket labels matching [`SimStats::region_size_hist`].
    pub const REGION_BUCKETS: [&'static str; 7] =
        ["1-4", "5-8", "9-16", "17-32", "33-64", "65-128", "129+"];

    /// Average dynamic instructions per region (Fig 19).
    pub fn avg_region_insts(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.region_insts as f64 / self.regions as f64
        }
    }

    /// Instructions per cycle across all cores.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// L1 data cache miss ratio.
    pub fn l1_miss_ratio(&self) -> f64 {
        ratio(self.l1)
    }

    /// Shared-LLC (deepest SRAM) miss ratio.
    pub fn llc_miss_ratio(&self) -> f64 {
        ratio(self.llc_sram)
    }
}

fn ratio((h, m): (u64, u64)) -> f64 {
    if h + m == 0 {
        0.0
    } else {
        m as f64 / (h + m) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            insts: 2_000_000,
            wb_occupancy_sum: 39,
            pb_occupancy_sum: 250,
            wpq_hits: 3,
            regions: 10,
            region_insts: 381,
            l1: (90, 10),
            llc_sram: (1, 1),
            ..Default::default()
        };
        assert!((s.avg_wb_occupancy() - 0.39).abs() < 1e-12);
        assert!((s.avg_pb_occupancy() - 2.5).abs() < 1e-12);
        assert!((s.wpq_hits_per_minst() - 1.5).abs() < 1e-12);
        assert!((s.avg_region_insts() - 38.1).abs() < 1e-12);
        assert!((s.ipc() - 20000.0).abs() < 1e-9);
        assert!((s.l1_miss_ratio() - 0.1).abs() < 1e-12);
        assert!((s.llc_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn region_histogram_buckets() {
        let mut s = SimStats::default();
        for n in [1, 4, 5, 16, 17, 64, 65, 500] {
            s.record_region_size(n);
        }
        assert_eq!(s.region_size_hist, [2, 1, 1, 1, 1, 1, 1]);
        assert_eq!(SimStats::REGION_BUCKETS.len(), s.region_size_hist.len());
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.avg_wb_occupancy(), 0.0);
        assert_eq!(s.wpq_hits_per_minst(), 0.0);
        assert_eq!(s.avg_region_insts(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l1_miss_ratio(), 0.0);
    }
}
