//! [`CwspSystem`] — the one-stop API: compile a module, simulate it under any
//! scheme, inject power failures, and recover.

use crate::recovery::{recover, RecoveredRun, RecoveryError};
use cwsp_compiler::pipeline::{CompileOptions, Compiled, CwspCompiler};
use cwsp_ir::interp::{InterpError, Outcome};
use cwsp_ir::module::Module;
use cwsp_sim::config::SimConfig;
use cwsp_sim::machine::{Machine, RunEnd, RunResult};
use cwsp_sim::scheme::Scheme;
use cwsp_sim::stats::SimStats;

/// A fully compiled cWSP program plus the machine configuration to run it on.
#[derive(Debug, Clone)]
pub struct CwspSystem {
    /// The compiled program (module + recovery slices + static stats).
    pub compiled: Compiled,
    /// Machine configuration (defaults to the paper's §IX parameters).
    pub config: SimConfig,
}

/// Result of a completed (non-crashing) simulated run.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// How the run ended.
    pub end: RunEnd,
    /// Timing statistics.
    pub stats: SimStats,
    /// Released output.
    pub output: Vec<cwsp_ir::types::Word>,
    /// Core 0's return value, if it halted via `Ret`.
    pub return_value: Option<cwsp_ir::types::Word>,
}

impl CwspSystem {
    /// Compile `module` with default options and the paper's default machine.
    pub fn compile(module: &Module) -> Self {
        Self::compile_with(module, CompileOptions::default(), SimConfig::default())
    }

    /// Compile with explicit compiler options and machine configuration.
    pub fn compile_with(module: &Module, opts: CompileOptions, config: SimConfig) -> Self {
        CwspSystem {
            compiled: CwspCompiler::new(opts).compile(module),
            config,
        }
    }

    /// Run the *compiled* program in the reference interpreter (the oracle).
    ///
    /// # Errors
    /// Propagates interpreter traps and step-limit overruns.
    pub fn oracle(&self, max_steps: u64) -> Result<Outcome, InterpError> {
        cwsp_ir::interp::run(&self.compiled.module, max_steps)
    }

    /// Simulate under `scheme` for up to `max_insts` instructions.
    ///
    /// # Errors
    /// Propagates interpreter traps.
    pub fn simulate(&self, scheme: Scheme, max_insts: u64) -> Result<SystemRun, InterpError> {
        let mut machine = Machine::new(&self.compiled.module, &self.config, scheme);
        let RunResult { end, stats } = machine.run(max_insts, None)?;
        Ok(SystemRun {
            end,
            stats,
            output: machine.output().to_vec(),
            return_value: machine.return_value(0),
        })
    }

    /// Simulate under full cWSP, cut power at `crash_cycle`, then run the
    /// recovery protocol to completion. If the program finished before the
    /// crash cycle, the completed run is returned as a (trivially) recovered
    /// run.
    ///
    /// # Errors
    /// Interpreter traps during simulation, or [`RecoveryError`] afterwards.
    pub fn run_with_crash(
        &self,
        crash_cycle: u64,
        max_steps: u64,
    ) -> Result<RecoveredRun, RecoveryError> {
        let mut machine = Machine::new(&self.compiled.module, &self.config, Scheme::cwsp());
        let result = machine
            .run(u64::MAX, Some(crash_cycle))
            .map_err(|e| RecoveryError::Trap(e.to_string()))?;
        if result.end == RunEnd::Completed {
            let rv = machine.return_value(0);
            let output = machine.output().to_vec();
            return Ok(RecoveredRun {
                memory: machine.arch_mem().clone(),
                output,
                return_value: rv,
                replayed_steps: 0,
                reverted_records: 0,
            });
        }
        let image = machine.into_crash_image();
        recover(&self.compiled, image, 0, max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};

    fn module() -> Module {
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(30), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn simulate_all_schemes() {
        let sys = CwspSystem::compile(&module());
        let oracle = sys.oracle(100_000).unwrap();
        for scheme in [
            Scheme::Baseline,
            Scheme::cwsp(),
            Scheme::Capri,
            Scheme::ReplayCache,
        ] {
            let run = sys.simulate(scheme, u64::MAX).unwrap();
            assert_eq!(run.end, RunEnd::Completed, "{scheme:?}");
            assert_eq!(run.return_value, oracle.return_value, "{scheme:?}");
        }
    }

    #[test]
    fn crash_after_completion_returns_completed_run() {
        let sys = CwspSystem::compile(&module());
        let oracle = sys.oracle(100_000).unwrap();
        let rec = sys.run_with_crash(u64::MAX - 1, 1_000_000).unwrap();
        assert_eq!(rec.return_value, oracle.return_value);
        assert_eq!(rec.replayed_steps, 0);
    }

    #[test]
    fn crash_mid_run_recovers() {
        let sys = CwspSystem::compile(&module());
        let oracle = sys.oracle(100_000).unwrap();
        let rec = sys.run_with_crash(300, 1_000_000).unwrap();
        assert_eq!(rec.return_value, oracle.return_value);
        assert_eq!(rec.output, oracle.output);
    }
}
