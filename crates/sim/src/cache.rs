//! Set-associative cache models with a dense/sparse split.
//!
//! Tags only — data always lives in the interpreter's architectural memory and
//! the machine's NVM image. Small geometries (L1, L2) store their sets as one
//! flat fixed-way array indexed by `set * assoc`: no hashing, no per-set
//! allocation, and the whole tag store is cache-friendly for the *host* too.
//! Giant geometries (the 4 GB direct-mapped DRAM cache has 64 M sets) stay
//! sparse — a map from set index to its way array, hashed with the local
//! [`crate::hash::FxHasher`] — which is what lets multi-GB footprints
//! simulate in megabytes of host memory.

use crate::config::CacheParams;
use crate::hash::FxHashMap;

/// Cacheline size in bytes (fixed at 64, as in the paper).
pub const LINE_BYTES: u64 = 64;

/// Above this many total ways (`sets * assoc`), set storage switches from the
/// dense flat array to the sparse map. 2^18 ways ≈ 6 MB of host tag store —
/// covers the default L1/L2 geometries; the 128 MB L4 and the DRAM cache go
/// sparse.
const DENSE_WAY_LIMIT: u64 = 1 << 18;

/// The line-aligned address of `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty line evicted to make room, if any (line-aligned address).
    pub writeback: Option<u64>,
}

/// One way: `last_use == 0` marks an empty slot (ticks start at 1, so a
/// resident line always has a nonzero timestamp and empty slots are always
/// preferred as victims by the LRU scan).
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    dirty: bool,
    last_use: u64,
}

impl Way {
    const EMPTY: Way = Way {
        tag: 0,
        dirty: false,
        last_use: 0,
    };

    #[inline]
    fn valid(&self) -> bool {
        self.last_use != 0
    }
}

/// Set storage: dense flat array for small geometries, sparse map otherwise.
#[derive(Debug, Clone)]
enum SetStore {
    /// `sets * assoc` ways at `set * assoc + way`.
    Dense(Vec<Way>),
    /// Set index → its `assoc` ways, allocated on first touch.
    Sparse(FxHashMap<u64, Box<[Way]>>),
}

/// One set-associative, write-back, write-allocate cache level (LRU).
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    store: SetStore,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(params: CacheParams) -> Self {
        let ways = params.sets() * params.assoc as u64;
        let store = if ways <= DENSE_WAY_LIMIT {
            SetStore::Dense(vec![Way::EMPTY; ways as usize])
        } else {
            SetStore::Sparse(FxHashMap::default())
        };
        Cache {
            params,
            store,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (u64, u64) {
        let line = line_of(addr) / LINE_BYTES;
        let sets = self.params.sets();
        (line % sets, line / sets)
    }

    /// The ways of set `index`, allocating in sparse mode.
    #[inline]
    fn set_mut(&mut self, index: u64) -> &mut [Way] {
        let assoc = self.params.assoc as usize;
        match &mut self.store {
            SetStore::Dense(v) => {
                let base = index as usize * assoc;
                &mut v[base..base + assoc]
            }
            SetStore::Sparse(m) => m
                .entry(index)
                .or_insert_with(|| vec![Way::EMPTY; assoc].into_boxed_slice()),
        }
    }

    /// The ways of set `index`, if materialized (read-only).
    #[inline]
    fn set_ref(&self, index: u64) -> Option<&[Way]> {
        let assoc = self.params.assoc as usize;
        match &self.store {
            SetStore::Dense(v) => {
                let base = index as usize * assoc;
                Some(&v[base..base + assoc])
            }
            SetStore::Sparse(m) => m.get(&index).map(|b| &b[..]),
        }
    }

    /// Access `addr`; allocates on miss. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (index, tag) = self.index_tag(addr);
        let sets = self.params.sets();
        let result = {
            let ways = self.set_mut(index);
            // One scan finds both the hit and the LRU victim: empty slots
            // carry `last_use == 0` and therefore win the min comparison
            // automatically.
            let mut victim = 0usize;
            let mut victim_use = u64::MAX;
            let mut hit = false;
            for (i, w) in ways.iter_mut().enumerate() {
                if w.valid() && w.tag == tag {
                    w.last_use = tick;
                    w.dirty |= write;
                    hit = true;
                    break;
                }
                if w.last_use < victim_use {
                    victim_use = w.last_use;
                    victim = i;
                }
            }
            if hit {
                AccessResult {
                    hit: true,
                    writeback: None,
                }
            } else {
                let v = &mut ways[victim];
                let writeback = (v.valid() && v.dirty).then(|| (v.tag * sets + index) * LINE_BYTES);
                *v = Way {
                    tag,
                    dirty: write,
                    last_use: tick,
                };
                AccessResult {
                    hit: false,
                    writeback,
                }
            }
        };
        if result.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        result
    }

    /// Whether `addr`'s line is present (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let (index, tag) = self.index_tag(addr);
        self.set_ref(index)
            .is_some_and(|ws| ws.iter().any(|w| w.valid() && w.tag == tag))
    }

    /// Invalidate `addr`'s line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (index, tag) = self.index_tag(addr);
        // Avoid allocating an empty sparse set just to invalidate nothing.
        if matches!(&self.store, SetStore::Sparse(m) if !m.contains_key(&index)) {
            return false;
        }
        let ways = self.set_mut(index);
        for w in ways {
            if w.valid() && w.tag == tag {
                let dirty = w.dirty;
                *w = Way::EMPTY;
                return dirty;
            }
        }
        false
    }

    /// Resident (valid) lines — host-memory introspection for tests/debug.
    pub fn resident_lines(&self) -> usize {
        match &self.store {
            SetStore::Dense(v) => v.iter().filter(|w| w.valid()).count(),
            SetStore::Sparse(m) => m
                .values()
                .map(|ws| ws.iter().filter(|w| w.valid()).count())
                .sum(),
        }
    }

    /// Line-aligned addresses of every dirty resident line, ascending —
    /// the dirty-in-cache store set the crash forensics frontier reports.
    /// Addresses are reconstructed exactly like eviction writebacks:
    /// `(tag * sets + index) * LINE_BYTES`.
    pub fn dirty_lines(&self) -> Vec<u64> {
        let sets = self.params.sets();
        let assoc = self.params.assoc as usize;
        let mut out = Vec::new();
        match &self.store {
            SetStore::Dense(v) => {
                for (i, w) in v.iter().enumerate() {
                    if w.valid() && w.dirty {
                        let index = (i / assoc) as u64;
                        out.push((w.tag * sets + index) * LINE_BYTES);
                    }
                }
            }
            SetStore::Sparse(m) => {
                for (&index, ws) in m.iter() {
                    for w in ws.iter() {
                        if w.valid() && w.dirty {
                            out.push((w.tag * sets + index) * LINE_BYTES);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio so far (0.0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets × 2 ways × 64 B = 256 B
        Cache::new(CacheParams {
            size_bytes: 256,
            assoc: 2,
            hit_cycles: 1,
        })
    }

    #[test]
    fn hit_after_allocate() {
        let mut c = small();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(8, false).hit, "same line");
        assert!(!c.access(64, false).hit, "different set");
        assert_eq!(c.stats(), (2, 2));
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut c = small();
        // set 0 holds lines 0 and 128 (2 ways); 256 evicts LRU (0).
        c.access(0, true); // dirty
        c.access(128, false);
        let r = c.access(256, false);
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(0), "dirty line 0 written back");
        // line 0 is gone
        assert!(!c.probe(0));
        assert!(c.probe(128) && c.probe(256));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0, false);
        c.access(128, false);
        let r = c.access(256, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = small();
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // refresh 0; 128 becomes LRU
        let r = c.access(256, false);
        assert_eq!(r.writeback, None);
        assert!(c.probe(0), "recently used line survives");
        assert!(!c.probe(128));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access(0, true);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(!c.invalidate(0), "second invalidate is a no-op");
        c.access(64, false);
        assert!(!c.invalidate(64), "clean line");
    }

    #[test]
    fn invalidated_slot_is_refilled_before_evictions() {
        let mut c = small();
        c.access(0, true);
        c.access(128, true);
        c.invalidate(0);
        // The freed slot must absorb the next allocation with no writeback.
        let r = c.access(256, false);
        assert_eq!(r.writeback, None, "empty slot reused, dirty 128 survives");
        assert!(c.probe(128) && c.probe(256));
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 2 sets × 1 way
        let mut c = Cache::new(CacheParams {
            size_bytes: 128,
            assoc: 1,
            hit_cycles: 1,
        });
        c.access(0, true);
        let r = c.access(128, false); // same set (sets=2 ⇒ line 2 maps to set 0)
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn writeback_address_reconstruction() {
        // Verify tag/index round trip for a larger geometry.
        let mut c = Cache::new(CacheParams {
            size_bytes: 64 << 10,
            assoc: 2,
            hit_cycles: 1,
        });
        let a = 0xdead_b000u64;
        c.access(a, true);
        // fill the set with conflicting lines to force eviction of `a`
        let sets = c.params().sets();
        let conflict1 = a + sets * LINE_BYTES;
        let conflict2 = a + 2 * sets * LINE_BYTES;
        c.access(conflict1, false);
        let r = c.access(conflict2, false);
        assert_eq!(r.writeback, Some(line_of(a)));
    }

    #[test]
    fn small_geometries_use_dense_storage() {
        let c = Cache::new(CacheParams {
            size_bytes: 16 << 20,
            assoc: 16,
            hit_cycles: 44,
        });
        assert!(
            matches!(c.store, SetStore::Dense(_)),
            "16 MB L2 stays dense"
        );
        let c = Cache::new(CacheParams {
            size_bytes: 64 << 10,
            assoc: 8,
            hit_cycles: 4,
        });
        assert!(
            matches!(c.store, SetStore::Dense(_)),
            "64 KB L1 stays dense"
        );
    }

    #[test]
    fn sparse_storage_stays_small_for_giant_caches() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 4 << 30,
            assoc: 1,
            hit_cycles: 1,
        });
        assert!(
            matches!(c.store, SetStore::Sparse(_)),
            "4 GB DRAM cache goes sparse"
        );
        for i in 0..1000u64 {
            c.access(i * 4096, true);
        }
        assert!(c.resident_lines() <= 1000);
    }

    #[test]
    fn dense_and_sparse_agree_on_the_same_trace() {
        // Same geometry forced into both modes must produce identical
        // hit/miss/writeback behaviour for an adversarial mixed trace.
        let params = CacheParams {
            size_bytes: 8 << 10,
            assoc: 4,
            hit_cycles: 1,
        };
        let mut dense = Cache::new(params);
        assert!(matches!(dense.store, SetStore::Dense(_)));
        let mut sparse = Cache::new(params);
        sparse.store = SetStore::Sparse(FxHashMap::default());
        let mut x = 0x9e3779b97f4a7c15u64;
        for k in 0..20_000u64 {
            // xorshift mixing: hits, conflicts, and strided sweeps
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = match k % 3 {
                0 => (x >> 12) & 0xFFFF8,
                1 => (k * 64) & 0x3FFF,
                _ => (k * 4096) & 0xFFFFF,
            };
            let write = k % 5 == 0;
            assert_eq!(
                dense.access(addr, write),
                sparse.access(addr, write),
                "k={k}"
            );
            if k % 97 == 0 {
                assert_eq!(dense.invalidate(addr), sparse.invalidate(addr));
            }
        }
        assert_eq!(dense.stats(), sparse.stats());
        assert_eq!(dense.resident_lines(), sparse.resident_lines());
    }
}
