//! Dynamic verification of the compiler's crash-consistency invariants.
//!
//! These checkers execute a compiled program in the reference interpreter and
//! validate, at runtime, the two properties power-failure recovery depends on:
//!
//! 1. **Idempotence** ([`check_antidependence`]): no dynamic region ever
//!    stores to a memory word it previously loaded in the same region
//!    (§IV-A). If it did, re-executing the region after a crash would read
//!    its own output.
//! 2. **Slice exactness** ([`check_slices`]): at every explicit region
//!    boundary, evaluating the region's recovery slice against current NVM
//!    state reproduces the region's live-in register values bit-for-bit
//!    (§IV-B/C). This is the invariant that makes resumption correct.
//!
//! Both are used pervasively by unit, integration, and property tests.

use crate::slice::{RsSource, SliceTable};
use cwsp_ir::interp::{Interp, InterpError, StepEffect};
use cwsp_ir::layout;
use cwsp_ir::module::Module;
use cwsp_ir::types::Word;
use std::collections::HashSet;

/// Run `module` for up to `max_steps`, asserting the no-intra-region-WAR
/// invariant on memory.
///
/// Checkpoint-slot writes and call-frame traffic are subject to the same rule
/// — the implementation does not special-case them, which is exactly why the
/// structural boundaries around calls matter.
///
/// # Errors
/// Returns a description of the first violation, or propagates interpreter
/// traps. Programs that do not halt within the budget pass (the prefix was
/// checked).
pub fn check_antidependence(module: &Module, max_steps: u64) -> Result<(), String> {
    let mut mem = cwsp_ir::memory::Memory::new();
    let mut interp = Interp::new(module, 0, &mut mem).map_err(|e| e.to_string())?;
    let mut loaded: HashSet<Word> = HashSet::new();
    let mut region_seq = 0u64;
    let mut eff = StepEffect::default();
    for _ in 0..max_steps {
        if interp.is_halted() {
            break;
        }
        interp
            .step_into(&mut mem, &mut eff)
            .map_err(|e| e.to_string())?;
        check_effect(&eff, &mut loaded, region_seq)?;
        if eff.boundary.is_some() {
            region_seq += 1;
            loaded.clear();
        }
    }
    Ok(())
}

fn check_effect(
    eff: &StepEffect,
    loaded: &mut HashSet<Word>,
    region_seq: u64,
) -> Result<(), String> {
    // Chronology matters: a `Ret` writes the return-value slot *before*
    // reloading it (write→read is a harmless RAW); everything else reads
    // before it writes. Atomics (read-modify-write in one step) are
    // structurally boundary-protected, so their same-address pair is exempt.
    let writes_first = matches!(eff.kind, cwsp_ir::interp::EffectKind::Ret);
    let exempt = matches!(eff.kind, cwsp_ir::interp::EffectKind::Atomic);
    let check_writes = |loaded: &HashSet<Word>| -> Result<(), String> {
        for (a, _) in &eff.writes {
            if loaded.contains(a) {
                return Err(format!(
                    "intra-region antidependence: dynamic region {region_seq} stores to {a:#x} after loading it"
                ));
            }
        }
        Ok(())
    };
    if writes_first {
        check_writes(loaded)?;
        loaded.extend(eff.reads.iter().copied());
    } else if exempt {
        loaded.extend(eff.reads.iter().copied());
    } else {
        loaded.extend(eff.reads.iter().copied());
        check_writes(loaded)?;
    }
    Ok(())
}

/// Run `module` for up to `max_steps`, asserting that at every explicit
/// boundary the recovery slice reconstructs the exact live-in values.
///
/// # Errors
/// Returns a description of the first mismatch (register, expected, got), a
/// missing slice, or an interpreter trap.
pub fn check_slices(module: &Module, slices: &SliceTable, max_steps: u64) -> Result<(), String> {
    let core = 0;
    let mut mem = cwsp_ir::memory::Memory::new();
    let mut interp = Interp::new(module, core, &mut mem).map_err(|e| e.to_string())?;
    let mut boundaries_checked = 0u64;
    let mut eff = StepEffect::default();
    for _ in 0..max_steps {
        if interp.is_halted() {
            break;
        }
        interp
            .step_into(&mut mem, &mut eff)
            .map_err(|e| e.to_string())?;
        let Some(b) = eff.boundary else { continue };
        let Some(region) = b.static_region else {
            continue;
        };
        let Some(slice) = slices.get(region) else {
            return Err(format!("no recovery slice for {region}"));
        };
        for (r, src) in &slice.restores {
            let expected = match src {
                RsSource::Slot => mem.load(layout::ckpt_slot_addr(core, *r)),
                RsSource::Const(c) => *c,
                RsSource::Expr(e) => e.eval(&mem, core),
            };
            let got = interp.reg(*r);
            if expected != got {
                return Err(format!(
                    "slice mismatch at {region} (boundary #{boundaries_checked}): \
                     {r} is {got:#x} but the slice restores {expected:#x} ({src:?})"
                ));
            }
        }
        boundaries_checked += 1;
    }
    Ok(())
}

/// Statically assert that no function retains an uncut antidependence: the
/// region-formation fixpoint converged. Complements the *dynamic*
/// [`check_antidependence`] (which only covers executed paths).
///
/// # Errors
/// Names the first function with residual antidependences.
pub fn check_static_antidependence(module: &Module) -> Result<(), String> {
    for (fid, f) in module.iter_functions() {
        let residual = crate::region::residual_antidependences(f, module);
        if residual > 0 {
            return Err(format!(
                "function {fid} ({}) has {residual} uncut antidependences",
                f.name
            ));
        }
    }
    Ok(())
}

/// Run both checkers and also compare against the uncompiled oracle.
///
/// # Errors
/// Any checker failure or output/return-value divergence.
pub fn check_all(
    original: &Module,
    compiled: &Module,
    slices: &SliceTable,
    max_steps: u64,
) -> Result<(), String> {
    check_static_antidependence(compiled)?;
    check_antidependence(compiled, max_steps)?;
    check_slices(compiled, slices, max_steps)?;
    let a = run_or_err(original, max_steps)?;
    let b = run_or_err(compiled, max_steps)?;
    if a.return_value != b.return_value {
        return Err(format!(
            "return value diverged: {:?} vs {:?}",
            a.return_value, b.return_value
        ));
    }
    if a.output != b.output {
        return Err(format!("output diverged: {:?} vs {:?}", a.output, b.output));
    }
    Ok(())
}

fn run_or_err(m: &Module, max_steps: u64) -> Result<cwsp_ir::interp::Outcome, String> {
    match cwsp_ir::interp::run(m, max_steps) {
        Ok(o) => Ok(o),
        Err(InterpError::StepLimit(_)) => Err("program did not halt in budget".into()),
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CompileOptions, CwspCompiler};
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
    use cwsp_ir::types::RegionId;

    #[test]
    fn raw_war_program_fails_the_checker() {
        // Uncompiled read-modify-write: the checker must flag it.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.load(e, MemRef::abs(64));
        let s = b.bin(e, BinOp::Add, r.into(), Operand::imm(1));
        b.store(e, s.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let err = check_antidependence(&m, 1000).unwrap_err();
        assert!(err.contains("antidependence"), "{err}");
    }

    #[test]
    fn compiled_program_passes_both_checkers() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 2);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(25), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
            b.store(bb, i.into(), MemRef::global(g, 1));
        });
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        for pruning in [true, false] {
            let c = CwspCompiler::new(CompileOptions {
                pruning,
                ..Default::default()
            })
            .compile(&m);
            check_all(&m, &c.module, &c.slices, 100_000)
                .unwrap_or_else(|e| panic!("pruning={pruning}: {e}"));
        }
    }

    #[test]
    fn stale_slot_is_detected() {
        // Hand-build a broken program: value live across a boundary with NO
        // checkpoint, but a slice that claims Slot — the checker must catch
        // the mismatch.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(42));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let mut slices = SliceTable::new();
        slices.insert(
            RegionId(0),
            crate::slice::RecoverySlice {
                restores: vec![(r, RsSource::Slot)],
            },
        );
        let err = check_slices(&m, &slices, 1000).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn static_checker_flags_raw_war_and_passes_compiled() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.load(e, MemRef::abs(64));
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        assert!(check_static_antidependence(&m).is_err());
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        check_static_antidependence(&c.module).unwrap();
    }

    #[test]
    fn non_halting_program_passes_on_its_checked_prefix() {
        // An infinite loop with no WAR: the budget runs out without a
        // violation, and the checker passes — the checked prefix was clean.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let body = b.block();
        b.push(e, Inst::Br { target: body });
        b.store(body, Operand::imm(7), MemRef::abs(64));
        b.push(body, Inst::Br { target: body });
        let f = m.add_function(b.build());
        m.set_entry(f);
        check_antidependence(&m, 1000).unwrap();
    }

    #[test]
    fn checkpoint_slot_writes_are_subject_to_the_war_rule() {
        // Loading a checkpoint slot and then checkpointing the same register
        // in the same region is a WAR on the slot word — not special-cased.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r0 = b.vreg();
        let spy = b.load(e, MemRef::abs(cwsp_ir::layout::ckpt_slot_addr(0, r0)));
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(e, Inst::Out { val: spy.into() });
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let err = check_antidependence(&m, 1000).unwrap_err();
        assert!(err.contains("antidependence"), "{err}");
    }

    #[test]
    fn empty_module_is_rejected_by_both_checkers() {
        let m = Module::new("t");
        let err = check_antidependence(&m, 1000).unwrap_err();
        assert!(err.contains("no entry"), "{err}");
        let err = check_slices(&m, &SliceTable::new(), 1000).unwrap_err();
        assert!(err.contains("no entry"), "{err}");
    }

    #[test]
    fn calls_pass_the_antidependence_checker() {
        let mut m = Module::new("t");
        let mut leaf = FunctionBuilder::new("leaf", 1);
        let le = leaf.entry();
        let p = leaf.param(0);
        let v = leaf.bin(le, BinOp::Mul, p.into(), Operand::imm(2));
        leaf.push(
            le,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let leaf = m.add_function(leaf.build());
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let keep = b.mov(e, Operand::imm(7));
        let r1 = b.call(e, leaf, vec![Operand::imm(3)], true).unwrap();
        let r2 = b.call(e, leaf, vec![r1.into()], true).unwrap();
        let s = b.bin(e, BinOp::Add, r2.into(), keep.into());
        b.push(
            e,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        check_all(&m, &c.module, &c.slices, 100_000).unwrap();
        let out = cwsp_ir::interp::run(&c.module, 100_000).unwrap();
        assert_eq!(out.return_value, Some(19));
    }
}
