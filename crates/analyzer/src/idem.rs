//! Idempotence verification (invariant family I1, §IV-A).
//!
//! A region re-executes from its boundary after a crash, so it must never
//! overwrite state it previously read from *pre-region* context:
//!
//! * **memory WAR** — a store that may hit a word an earlier load of the
//!   same region read (the undo-log granularity makes the region's own
//!   stores revertible, but a load/store pair spanning the region start is
//!   not);
//! * **register WAR** — a definition of a register used earlier in the
//!   region: under def-site checkpointing the slot is overwritten at the
//!   def, so the recovery slice would restore the *new* value.
//!
//! Region roots are the function entry and the position after every
//! `Boundary`/`Call` — exactly the roots the region-formation pass uses.
//! With the structural rules of [`crate::structure`] in force, each root's
//! fragment is a tree of straight-line code, so a DFS that forks at
//! `CondBr` and stops at revisited blocks is exhaustive *and* linear. On
//! malformed input (missing join/header boundaries, separately reported as
//! I4 errors) the revisit cutoff keeps the traversal bounded.
//!
//! The traversal shares only `cwsp_compiler::alias` with the compiler; the
//! walk itself is independent of the cut-placement code it verifies.

use crate::diag::{Diagnostic, Invariant, Location, PathWitness, Severity, WitnessStep};
use cwsp_compiler::alias::{may_alias, AbstractAddr, PathState};
use cwsp_compiler::liveness::defs;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_ir::pretty::fmt_inst;
use cwsp_ir::types::{Reg, RegionId};
use std::collections::{HashMap, HashSet};

/// Summary of the idempotence pass over one function.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdemSummary {
    /// Region roots traversed.
    pub roots: usize,
    /// Roots with no WAR finding.
    pub clean_roots: usize,
}

#[derive(Clone)]
struct PathCtx<'m> {
    pos: (BlockId, usize),
    st: PathState<'m>,
    /// `(address, path position of the load)` for every load on this path.
    loads: Vec<(AbstractAddr, usize)>,
    /// Last use position of each register on this path.
    last_use: HashMap<Reg, usize>,
    /// The concrete trace: `(block, idx, rendered instruction)`.
    trace: Vec<(u32, usize, String)>,
}

fn witness_from(trace: &[(u32, usize, String)], from: usize) -> PathWitness {
    let steps: Vec<WitnessStep> = trace[from..]
        .iter()
        .map(|(b, i, note)| WitnessStep {
            block: *b,
            idx: *i,
            note: note.clone(),
        })
        .collect();
    PathWitness::elided(steps, 14)
}

/// Verify every region fragment of `f`, appending findings to `out`.
pub fn check_function(
    module: &Module,
    f: &Function,
    region_of_root: &HashMap<(u32, usize), RegionId>,
    out: &mut Vec<Diagnostic>,
) -> IdemSummary {
    // Roots: function entry plus the position after every boundary/call —
    // the same root set `cwsp_compiler::region` enumerates.
    let mut roots: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    for (bid, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if matches!(inst, Inst::Boundary { .. } | Inst::Call { .. }) {
                roots.push((bid, i + 1));
            }
        }
    }

    let mut summary = IdemSummary::default();
    // Dedup key: one finding per (code, store location) per function.
    let mut reported: HashSet<(&'static str, u32, usize)> = HashSet::new();

    for root in roots {
        summary.roots += 1;
        let region = region_of_root.get(&(root.0 .0, root.1)).copied();
        let errors_before = out.len();
        let mut visited = vec![false; f.blocks.len()];
        let mut stack: Vec<PathCtx<'_>> = vec![PathCtx {
            pos: root,
            st: PathState::new(module),
            loads: Vec::new(),
            last_use: HashMap::new(),
            trace: Vec::new(),
        }];

        while let Some(mut ctx) = stack.pop() {
            'path: loop {
                let (b, idx) = ctx.pos;
                let insts = &f.block(b).insts;
                let Some(inst) = insts.get(idx) else {
                    break 'path; // fell off a (malformed) block
                };
                let p = ctx.trace.len();
                ctx.trace.push((b.0, idx, fmt_inst(inst)));

                // --- memory WAR ---
                match inst {
                    Inst::Load { addr, .. } => {
                        let a = ctx.st.addr_of(addr);
                        ctx.loads.push((a, p));
                    }
                    Inst::Store { addr, .. } => {
                        let a = ctx.st.addr_of(addr);
                        if let Some(&(_, lp)) = ctx.loads.iter().find(|(la, _)| may_alias(*la, a)) {
                            if reported.insert(("I1-mem-war", b.0, idx)) {
                                out.push(Diagnostic {
                                    severity: Severity::Error,
                                    invariant: Invariant::Idempotence,
                                    code: "I1-mem-war",
                                    message: format!(
                                        "{} may overwrite a word loaded earlier in the same region (antidependence)",
                                        fmt_inst(inst)
                                    ),
                                    location: Location {
                                        function: f.name.clone(),
                                        block: b.0,
                                        inst: Some(idx),
                                    },
                                    region: region.map(|r| r.0),
                                    witness: Some(witness_from(&ctx.trace, lp)),
                                });
                            }
                        }
                    }
                    _ => {}
                }

                // --- register WAR ---
                // Boundary/Call end the region before their defs take
                // effect, and an atomic's def executes post-sync in its own
                // single-instruction region — all exempt, as in the
                // compiler's cut analysis.
                if !matches!(
                    inst,
                    Inst::Boundary { .. } | Inst::Call { .. } | Inst::AtomicRmw { .. }
                ) {
                    let uses = inst.uses();
                    for d in defs(inst) {
                        let hazard_at = if uses.contains(&d) {
                            // `r = f(r, ...)` reads region-entry state only
                            // when it is the region's first instruction.
                            (p > 0).then_some(p)
                        } else {
                            ctx.last_use.get(&d).copied()
                        };
                        if let Some(up) = hazard_at {
                            if reported.insert(("I1-reg-war", b.0, idx)) {
                                out.push(Diagnostic {
                                    severity: Severity::Error,
                                    invariant: Invariant::Idempotence,
                                    code: "I1-reg-war",
                                    message: format!(
                                        "{} overwrites {d}, which was read earlier in the same region",
                                        fmt_inst(inst)
                                    ),
                                    location: Location {
                                        function: f.name.clone(),
                                        block: b.0,
                                        inst: Some(idx),
                                    },
                                    region: region.map(|r| r.0),
                                    witness: Some(witness_from(&ctx.trace, up)),
                                });
                            }
                        }
                    }
                    for u in uses {
                        ctx.last_use.insert(u, p);
                    }
                }

                // --- advance ---
                match inst {
                    Inst::Boundary { .. } | Inst::Call { .. } | Inst::Ret { .. } | Inst::Halt => {
                        break 'path
                    }
                    Inst::Br { target } => {
                        if at_boundary_entry(f, *target) || visited[target.index()] {
                            break 'path;
                        }
                        visited[target.index()] = true;
                        ctx.st.transfer(inst);
                        ctx.pos = (*target, 0);
                    }
                    Inst::CondBr {
                        if_true, if_false, ..
                    } => {
                        ctx.st.transfer(inst);
                        let mut continued = false;
                        for t in [*if_true, *if_false] {
                            if at_boundary_entry(f, t) || visited[t.index()] {
                                continue;
                            }
                            visited[t.index()] = true;
                            if continued {
                                let mut fork = ctx.clone();
                                fork.pos = (t, 0);
                                stack.push(fork);
                            } else {
                                ctx.pos = (t, 0);
                                continued = true;
                            }
                        }
                        if !continued {
                            break 'path;
                        }
                    }
                    _ => {
                        ctx.st.transfer(inst);
                        ctx.pos = (b, idx + 1);
                    }
                }
            }
        }

        if out.len() == errors_before {
            summary.clean_roots += 1;
        }
    }
    summary
}

fn at_boundary_entry(f: &Function, b: BlockId) -> bool {
    matches!(f.block(b).insts.first(), Some(Inst::Boundary { .. }))
}

/// Map each region root position `(block, idx)` to the `RegionId` of the
/// boundary that starts it (the instruction at `idx - 1`). The entry root
/// and post-call roots have no explicit boundary and are absent.
pub fn root_regions(f: &Function) -> HashMap<(u32, usize), RegionId> {
    let mut map = HashMap::new();
    for (bid, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::Boundary { id } = inst {
                map.insert((bid.0, i + 1), *id);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, MemRef, Operand};
    use cwsp_ir::layout::GLOBAL_BASE;

    fn run(f: &Function) -> (Vec<Diagnostic>, IdemSummary) {
        let m = Module::new("t");
        let mut out = Vec::new();
        let s = check_function(&m, f, &root_regions(f), &mut out);
        (out, s)
    }

    #[test]
    fn load_then_store_same_word_is_flagged_with_witness() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(e, Inst::load(r0, MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::Halt);
        let f = b.build();
        let (diags, s) = run(&f);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I1-mem-war");
        let w = diags[0].witness.as_ref().unwrap();
        assert!(w.steps.first().unwrap().note.contains("ldr"), "{w:?}");
        assert!(w.steps.last().unwrap().note.contains("str"), "{w:?}");
        assert_eq!(s.clean_roots, 0);
    }

    #[test]
    fn boundary_between_load_and_store_clears_the_hazard() {
        use cwsp_ir::types::RegionId;
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(e, Inst::load(r0, MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::Halt);
        let f = b.build();
        let (diags, s) = run(&f);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(s.roots, 2);
        assert_eq!(s.clean_roots, 2);
    }

    #[test]
    fn distinct_words_do_not_alias() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(e, Inst::load(r0, MemRef::abs(GLOBAL_BASE)));
        b.push(
            e,
            Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE + 8)),
        );
        b.push(e, Inst::Halt);
        let f = b.build();
        let (diags, _) = run(&f);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn register_war_is_flagged_beyond_position_zero() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(1)); // p0: def only, fine
        let _r1 = b.bin(e, BinOp::Add, r0.into(), Operand::imm(1)); // p1: use r0
        b.push(
            e,
            Inst::Mov {
                dst: r0,
                src: Operand::imm(9), // p2: def after use -> WAR
            },
        );
        b.push(e, Inst::Halt);
        let f = b.build();
        let (diags, _) = run(&f);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I1-reg-war");
        assert!(diags[0].message.contains("r0"));
    }

    #[test]
    fn same_inst_use_def_exempt_only_at_region_start() {
        use cwsp_ir::types::RegionId;
        // `r0 = r0 + 1` as the first region instruction: exempt.
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::binary(BinOp::Add, r0, r0.into(), Operand::imm(1)));
        b.push(e, Inst::Halt);
        let f = b.build();
        let (diags, _) = run(&f);
        assert!(diags.is_empty(), "{diags:?}");

        // The same instruction mid-region: flagged.
        let mut b = FunctionBuilder::new("g", 0);
        let e = b.entry();
        let r0 = b.vreg();
        let r9 = b.vreg();
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(
            e,
            Inst::Mov {
                dst: r9,
                src: Operand::imm(0),
            },
        );
        b.push(e, Inst::binary(BinOp::Add, r0, r0.into(), Operand::imm(1)));
        b.push(e, Inst::Halt);
        let f = b.build();
        let (diags, _) = run(&f);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "I1-reg-war");
    }

    #[test]
    fn condbr_forks_are_both_explored() {
        // Hazard only on the false arm.
        let mut bld = FunctionBuilder::new("f", 1);
        let e = bld.entry();
        let t = bld.block();
        let fl = bld.block();
        let r1 = bld.vreg();
        bld.push(e, Inst::load(r1, MemRef::abs(GLOBAL_BASE)));
        bld.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: t,
                if_false: fl,
            },
        );
        bld.push(t, Inst::Halt);
        bld.push(fl, Inst::store(Operand::imm(2), MemRef::abs(GLOBAL_BASE)));
        bld.push(fl, Inst::Halt);
        let f = bld.build();
        let (diags, _) = run(&f);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].location.block, fl.0);
    }

    #[test]
    fn cyclic_cfg_without_boundaries_terminates() {
        // Malformed (loop header without boundary): the traversal must not
        // hang; the structure pass owns reporting that defect.
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let header = bld.block();
        let c = bld.vreg();
        bld.push(e, Inst::Br { target: header });
        bld.push(
            header,
            Inst::CondBr {
                cond: c.into(),
                if_true: header,
                if_false: header,
            },
        );
        let f = bld.build();
        let (_, s) = run(&f);
        assert_eq!(s.roots, 1);
    }

    #[test]
    fn region_id_attribution_via_root_map() {
        use cwsp_ir::types::RegionId;
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(e, Inst::Boundary { id: RegionId(7) });
        b.push(e, Inst::load(r0, MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::Halt);
        let f = b.build();
        let (diags, _) = run(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].region, Some(7));
    }
}
