//! §VIII "Recovery for Multi-Cores": DRF programs recover per-thread,
//! independently, from each core's own oldest unpersisted region.

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::core::recovery::recover_multicore;
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::{Machine, RunEnd};
use cwsp::sim::scheme::Scheme;
use cwsp::workloads::multicore::{drf_partition_sum, expected_sum, PARTITION_WORDS};

fn verify_final_state(mem: &cwsp::ir::Memory, data: u64, sums: u64, counter: u64, ncores: u64) {
    for tid in 0..ncores {
        assert_eq!(mem.load(sums + tid * 8), expected_sum(tid), "sums[{tid}]");
        for i in [0u64, 1, PARTITION_WORDS - 1] {
            assert_eq!(
                mem.load(data + (tid * PARTITION_WORDS + i) * 8),
                tid * 1000 + i,
                "data[{tid}][{i}]"
            );
        }
    }
    assert_eq!(mem.load(counter), 2 * ncores, "atomic counter");
}

#[test]
fn four_core_drf_program_completes_under_cwsp() {
    let ncores = 4u64;
    let (m, data, sums, counter) = drf_partition_sum(ncores);
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
    let cfg = SimConfig {
        cores: ncores as usize,
        ..SimConfig::default()
    };
    let mut machine = Machine::new(&compiled.module, &cfg, Scheme::cwsp());
    let r = machine.run(u64::MAX, None).unwrap();
    assert_eq!(r.end, RunEnd::Completed);
    verify_final_state(machine.arch_mem(), data, sums, counter, ncores);
    // Whole-system persistence: the NVM image converged too.
    verify_final_state(machine.nvm(), data, sums, counter, ncores);
}

#[test]
fn four_core_drf_program_survives_crash_sweep() {
    let ncores = 4u64;
    let (m, data, sums, counter) = drf_partition_sum(ncores);
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
    for crash_cycle in [50u64, 400, 1_500, 4_000, 9_000, 20_000] {
        let cfg = SimConfig {
            cores: ncores as usize,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&compiled.module, &cfg, Scheme::cwsp());
        let r = machine.run(u64::MAX, Some(crash_cycle)).unwrap();
        if r.end != RunEnd::PowerFailure {
            continue; // finished before the crash point
        }
        let image = machine.into_crash_image();
        let rec = recover_multicore(&compiled, image, 10_000_000)
            .unwrap_or_else(|e| panic!("crash@{crash_cycle}: {e}"));
        verify_final_state(&rec.memory, data, sums, counter, ncores);
        for (tid, rv) in rec.return_values.iter().enumerate() {
            assert_eq!(*rv, Some(expected_sum(tid as u64)), "core {tid} return");
        }
    }
}

#[test]
fn eight_core_crash_recovers() {
    let ncores = 8u64;
    let (m, data, sums, counter) = drf_partition_sum(ncores);
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
    let cfg = SimConfig {
        cores: ncores as usize,
        ..SimConfig::default()
    };
    let mut machine = Machine::new(&compiled.module, &cfg, Scheme::cwsp());
    let r = machine.run(u64::MAX, Some(3_000)).unwrap();
    assert_eq!(r.end, RunEnd::PowerFailure);
    let image = machine.into_crash_image();
    let rec = recover_multicore(&compiled, image, 10_000_000).unwrap();
    verify_final_state(&rec.memory, data, sums, counter, ncores);
}

#[test]
fn spinlock_ledger_survives_crashes() {
    use cwsp::workloads::multicore::{expected_balance, spinlock_ledger, DEPOSITS};
    let ncores = 3u64;
    let (m, balance, ops) = spinlock_ledger(ncores);
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
    for crash_cycle in [200u64, 2_000, 8_000, 25_000] {
        let cfg = SimConfig {
            cores: ncores as usize,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&compiled.module, &cfg, Scheme::cwsp());
        let r = machine.run(u64::MAX, Some(crash_cycle)).unwrap();
        if r.end != RunEnd::PowerFailure {
            continue;
        }
        let image = machine.into_crash_image();
        let rec = recover_multicore(&compiled, image, 50_000_000)
            .unwrap_or_else(|e| panic!("crash@{crash_cycle}: {e}"));
        assert_eq!(
            rec.memory.load(balance),
            expected_balance(ncores),
            "ledger balance after crash@{crash_cycle}"
        );
        assert_eq!(
            rec.memory.load(ops),
            ncores * DEPOSITS,
            "op count @ {crash_cycle}"
        );
    }
}
