//! Sparse word-granular memory, stored as 4 KiB pages.
//!
//! Both the interpreter's architectural memory and the simulator's NVM image
//! are [`Memory`] instances: sparse maps from 8-byte-aligned addresses to
//! words. Sparsity is what lets the reproduction simulate the paper's
//! multi-gigabyte footprints (2.5–6 GB, §IX-C) without allocating them.
//!
//! ## Representation
//!
//! Earlier versions kept one `HashMap<Word, Word>` entry per non-zero word,
//! which made every simulated load and store a hash probe. Real footprints
//! are page-clustered (stacks, globals, heap arenas), so the map now keys
//! 4 KiB pages (`[Word; 512]`) with an [`FxHashMap`] page table plus a
//! one-entry last-page cache: sequential and strided access patterns resolve
//! to an index into the cached page with no hashing at all.
//!
//! The observable semantics are unchanged and load-bearing for crash
//! consistency checks:
//!
//! * unwritten words read as zero;
//! * storing zero restores "never written" ([`Memory::nonzero_words`] counts
//!   only non-zero words, and two memories are equal iff their non-zero
//!   contents agree — a page left allocated but all-zero equals no page);
//! * [`Memory::iter`] visits exactly the non-zero words.

use crate::fxhash::FxHashMap;
use crate::types::Word;
use std::cell::Cell;
use std::fmt;

/// Words per page (4 KiB / 8 bytes).
const PAGE_WORDS: usize = 512;
/// log2 of the page size in bytes.
const PAGE_SHIFT: u32 = 12;
/// Mask extracting the word offset within a page from `addr >> 3`.
const OFF_MASK: Word = PAGE_WORDS as Word - 1;
/// Sentinel page number marking the last-page cache invalid (real page
/// numbers are `addr >> 12`, which cannot reach `u64::MAX`).
const NO_PAGE: Word = Word::MAX;

type Page = Box<[Word; PAGE_WORDS]>;

fn new_page() -> Page {
    // Heap-allocate directly; `Box::new([0; 512])` would build 4 KiB on the
    // stack first in debug builds.
    vec![0; PAGE_WORDS].into_boxed_slice().try_into().unwrap()
}

/// Sparse, word-granular memory. Unwritten words read as zero.
///
/// # Example
/// ```
/// use cwsp_ir::Memory;
/// let mut m = Memory::new();
/// assert_eq!(m.load(0x1000), 0);
/// m.store(0x1000, 42);
/// assert_eq!(m.load(0x1000), 42);
/// ```
#[derive(Clone)]
pub struct Memory {
    /// Page number (`addr >> 12`) → slot in `pages`.
    index: FxHashMap<Word, u32>,
    /// Allocated pages, in allocation order.
    pages: Vec<Page>,
    /// Slot → page number (for iteration without touching the map).
    page_ids: Vec<Word>,
    /// Last-page-hit cache: `(page number, slot)`; `NO_PAGE` when invalid.
    /// A `Cell` so read hits can refresh it through `&self`.
    last: Cell<(Word, u32)>,
    /// Global count of non-zero words across all pages.
    nonzero: usize,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            index: FxHashMap::default(),
            pages: Vec::new(),
            page_ids: Vec::new(),
            last: Cell::new((NO_PAGE, 0)),
            nonzero: 0,
        }
    }
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Read the word at `addr`.
    ///
    /// # Panics
    /// Debug-asserts 8-byte alignment.
    #[inline]
    pub fn load(&self, addr: Word) -> Word {
        debug_assert_eq!(addr % 8, 0, "unaligned load at {addr:#x}");
        let page = addr >> PAGE_SHIFT;
        let off = ((addr >> 3) & OFF_MASK) as usize;
        let (cached, slot) = self.last.get();
        if cached == page {
            return self.pages[slot as usize][off];
        }
        match self.index.get(&page) {
            Some(&slot) => {
                self.last.set((page, slot));
                self.pages[slot as usize][off]
            }
            None => 0,
        }
    }

    /// Write the word at `addr`, returning the previous value.
    ///
    /// # Panics
    /// Debug-asserts 8-byte alignment.
    #[inline]
    pub fn store(&mut self, addr: Word, value: Word) -> Word {
        debug_assert_eq!(addr % 8, 0, "unaligned store at {addr:#x}");
        let page = addr >> PAGE_SHIFT;
        let off = ((addr >> 3) & OFF_MASK) as usize;
        let (cached, cached_slot) = self.last.get();
        let slot = if cached == page {
            cached_slot
        } else if let Some(&slot) = self.index.get(&page) {
            self.last.set((page, slot));
            slot
        } else {
            if value == 0 {
                // Keep the map sparse: a zero store to an unallocated page
                // is a no-op.
                return 0;
            }
            let slot = self.pages.len() as u32;
            self.pages.push(new_page());
            self.page_ids.push(page);
            self.index.insert(page, slot);
            self.last.set((page, slot));
            slot
        };
        let w = &mut self.pages[slot as usize][off];
        let prev = *w;
        *w = value;
        self.nonzero += (value != 0) as usize;
        self.nonzero -= (prev != 0) as usize;
        prev
    }

    /// Number of non-zero words currently stored.
    pub fn nonzero_words(&self) -> usize {
        self.nonzero
    }

    /// Iterate `(addr, value)` over non-zero words (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (Word, Word)> + '_ {
        self.pages
            .iter()
            .zip(self.page_ids.iter())
            .flat_map(|(p, &page)| {
                let base = page << PAGE_SHIFT;
                p.iter()
                    .enumerate()
                    .filter_map(move |(i, &v)| (v != 0).then_some((base + i as Word * 8, v)))
            })
    }

    /// Compare this memory with `other` over addresses `filter` accepts,
    /// returning up to `limit` differing addresses as
    /// `(addr, self_value, other_value)`.
    ///
    /// Used by the consistency verifier to compare a recovered run's NVM image
    /// against the failure-free oracle while ignoring hardware metadata.
    pub fn diff_where(
        &self,
        other: &Memory,
        mut filter: impl FnMut(Word) -> bool,
        limit: usize,
    ) -> Vec<(Word, Word, Word)> {
        let mut out = Vec::new();
        for (a, v) in self.iter() {
            if out.len() >= limit {
                break;
            }
            if filter(a) && other.load(a) != v {
                out.push((a, v, other.load(a)));
            }
        }
        // Words non-zero only in `other`: the first loop cannot see them.
        for (a, v) in other.iter() {
            if out.len() >= limit {
                break;
            }
            if filter(a) && self.load(a) == 0 {
                out.push((a, 0, v));
            }
        }
        out
    }
}

/// Equality over non-zero contents only: a page that was written and then
/// zeroed again stays allocated but compares equal to never-written memory.
impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        // Same non-zero count + every non-zero word of `self` matches
        // `other` ⇒ the non-zero sets coincide exactly.
        self.nonzero == other.nonzero && self.iter().all(|(a, v)| other.load(a) == v)
    }
}

impl Eq for Memory {}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print only the non-zero words, sorted, so assertion failures stay
        // readable regardless of page-allocation order.
        let mut words: Vec<(Word, Word)> = self.iter().collect();
        words.sort_unstable();
        f.debug_struct("Memory")
            .field("nonzero", &self.nonzero)
            .field("words", &words)
            .finish()
    }
}

impl FromIterator<(Word, Word)> for Memory {
    fn from_iter<T: IntoIterator<Item = (Word, Word)>>(iter: T) -> Self {
        let mut m = Memory::new();
        for (a, v) in iter {
            m.store(a, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_and_roundtrip() {
        let mut m = Memory::new();
        assert_eq!(m.load(8), 0);
        assert_eq!(m.store(8, 5), 0);
        assert_eq!(m.store(8, 7), 5);
        assert_eq!(m.load(8), 7);
    }

    #[test]
    fn zero_store_keeps_sparse() {
        let mut m = Memory::new();
        m.store(16, 9);
        assert_eq!(m.nonzero_words(), 1);
        assert_eq!(m.store(16, 0), 9);
        assert_eq!(m.nonzero_words(), 0);
        assert_eq!(m.load(16), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    #[cfg(debug_assertions)]
    fn unaligned_traps_in_debug() {
        Memory::new().load(3);
    }

    #[test]
    fn diff_where_finds_asymmetric_differences() {
        let a: Memory = [(8, 1), (16, 2)].into_iter().collect();
        let b: Memory = [(8, 1), (24, 3)].into_iter().collect();
        let mut d = a.diff_where(&b, |_| true, 10);
        d.sort();
        assert_eq!(d, vec![(16, 2, 0), (24, 0, 3)]);
        // filter excludes
        let d2 = a.diff_where(&b, |addr| addr < 16, 10);
        assert!(d2.is_empty());
        // limit respected
        let d3 = a.diff_where(&b, |_| true, 1);
        assert_eq!(d3.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let m: Memory = [(8, 1), (16, 0)].into_iter().collect();
        assert_eq!(m.nonzero_words(), 1);
    }

    #[test]
    fn page_boundaries_are_seamless() {
        let mut m = Memory::new();
        // Last word of page 0, first word of page 1, and a far page.
        for (i, a) in [4096 - 8, 4096, 7 << 40].into_iter().enumerate() {
            m.store(a, i as Word + 1);
        }
        assert_eq!(m.load(4096 - 8), 1);
        assert_eq!(m.load(4096), 2);
        assert_eq!(m.load(7 << 40), 3);
        assert_eq!(m.nonzero_words(), 3);
        // Neighbors within the same pages still read zero.
        assert_eq!(m.load(4096 - 16), 0);
        assert_eq!(m.load(4096 + 8), 0);
    }

    #[test]
    fn zeroed_page_equals_never_written() {
        let mut a = Memory::new();
        a.store(0x5000, 1);
        a.store(0x5000, 0); // page stays allocated, contents all-zero
        let b = Memory::new();
        assert_eq!(a, b);
        assert_eq!(b, a);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn equality_ignores_page_allocation_order() {
        let a: Memory = [(0x1000, 1), (0x9000, 2)].into_iter().collect();
        let b: Memory = [(0x9000, 2), (0x1000, 1)].into_iter().collect();
        assert_eq!(a, b);
        let c: Memory = [(0x1000, 1), (0x9000, 3)].into_iter().collect();
        assert_ne!(a, c);
        let d: Memory = [(0x1000, 1)].into_iter().collect();
        assert_ne!(a, d);
        assert_ne!(d, a);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.store(64, 10);
        let mut b = a.clone();
        b.store(64, 20);
        b.store(1 << 30, 5);
        assert_eq!(a.load(64), 10);
        assert_eq!(a.load(1 << 30), 0);
        assert_eq!(b.load(64), 20);
        assert_eq!(a.nonzero_words(), 1);
        assert_eq!(b.nonzero_words(), 2);
    }

    #[test]
    fn iter_yields_exactly_nonzero_words() {
        let mut m = Memory::new();
        m.store(0, 1);
        m.store(8, 2);
        m.store(8, 0);
        m.store(0x10_0000, 3);
        let mut got: Vec<(Word, Word)> = m.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0x10_0000, 3)]);
        assert_eq!(m.nonzero_words(), 2);
    }

    #[test]
    fn interleaved_pages_exercise_the_page_cache() {
        let mut m = Memory::new();
        // Alternate between two pages so the one-entry cache keeps flipping.
        for i in 0..PAGE_WORDS as Word {
            m.store(i * 8, i);
            m.store((1 << 20) + i * 8, i * 2);
        }
        for i in 1..PAGE_WORDS as Word {
            assert_eq!(m.load(i * 8), i);
            assert_eq!(m.load((1 << 20) + i * 8), i * 2);
        }
        assert_eq!(m.nonzero_words(), 2 * (PAGE_WORDS - 1));
    }
}
