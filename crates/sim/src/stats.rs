//! Simulation statistics — the raw material of every figure in §IX.

/// Counters collected during one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Dynamic instructions executed (all cores).
    pub insts: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores (program data, excluding checkpoints).
    pub stores: u64,
    /// Checkpoint stores (§IV-B traffic).
    pub ckpt_stores: u64,
    /// Frame spill/restore words written by calls and returns.
    pub frame_stores: u64,
    /// Atomics and fences committed.
    pub syncs: u64,
    /// Dynamic regions started.
    pub regions: u64,
    /// Dynamic instructions accumulated over finished regions (Fig 19's
    /// numerator; divide by [`SimStats::regions`]).
    pub region_insts: u64,
    /// Loads that hit a pending WPQ entry and were delayed (Fig 8).
    pub wpq_hits: u64,
    /// WB drains held back by a PB match (§V-A1).
    pub wb_delays: u64,
    /// Σ WB occupancy per cycle (Fig 6's numerator).
    pub wb_occupancy_sum: u64,
    /// Σ PB occupancy per cycle.
    pub pb_occupancy_sum: u64,
    /// Cycles stalled because the PB was full.
    pub stall_pb: u64,
    /// Cycles stalled because the RBT was full (or boundary-drain without MC
    /// speculation).
    pub stall_rbt: u64,
    /// Cycles stalled because the WB was full.
    pub stall_wb: u64,
    /// Cycles stalled draining at synchronization points.
    pub stall_sync: u64,
    /// Cycles stalled on WPQ-hit load delays.
    pub stall_wpq: u64,
    /// Cycles stalled waiting for a redo-buffer slot (Capri) or synchronous
    /// persist completion (ReplayCache).
    pub stall_scheme: u64,
    /// L1 data cache (hits, misses).
    pub l1: (u64, u64),
    /// Deepest shared SRAM level (hits, misses).
    pub llc_sram: (u64, u64),
    /// DRAM cache (hits, misses).
    pub dram_cache: (u64, u64),
    /// Reads serviced by main memory (NVM).
    pub nvm_reads: u64,
    /// NVM word writes (data + log amplification).
    pub nvm_writes: u64,
    /// Undo-log records appended across all MCs.
    pub log_appends: u64,
    /// Peak live undo-log records across all MCs.
    pub peak_live_logs: usize,
    /// Histogram of dynamic region sizes in instruction-count buckets
    /// `[1-4, 5-8, 9-16, 17-32, 33-64, 65-128, 129+]` (Fig 19's
    /// distribution, not just its average).
    pub region_size_hist: [u64; 7],
    /// Dynamic instruction mix, indexed by decoded opcode (see
    /// [`cwsp_ir::decoded::OPCODE_NAMES`]); summed over all cores.
    pub op_mix: [u64; cwsp_ir::decoded::OPCODE_COUNT],
}

impl SimStats {
    /// Average WB occupancy in entries (Fig 6).
    pub fn avg_wb_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.wb_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average PB occupancy in entries.
    pub fn avg_pb_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.pb_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// WPQ hits per million instructions (Fig 8).
    pub fn wpq_hits_per_minst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.wpq_hits as f64 * 1e6 / self.insts as f64
        }
    }

    /// Record one finished region of `n` instructions into the histogram.
    pub fn record_region_size(&mut self, n: u64) {
        let b = match n {
            0..=4 => 0,
            5..=8 => 1,
            9..=16 => 2,
            17..=32 => 3,
            33..=64 => 4,
            65..=128 => 5,
            _ => 6,
        };
        self.region_size_hist[b] += 1;
    }

    /// Histogram bucket labels matching [`SimStats::region_size_hist`].
    pub const REGION_BUCKETS: [&'static str; 7] =
        ["1-4", "5-8", "9-16", "17-32", "33-64", "65-128", "129+"];

    /// Average dynamic instructions per region (Fig 19).
    pub fn avg_region_insts(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.region_insts as f64 / self.regions as f64
        }
    }

    /// Instructions per cycle across all cores.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// L1 data cache miss ratio.
    pub fn l1_miss_ratio(&self) -> f64 {
        ratio(self.l1)
    }

    /// Shared-LLC (deepest SRAM) miss ratio.
    pub fn llc_miss_ratio(&self) -> f64 {
        ratio(self.llc_sram)
    }

    /// Publish every counter into a metrics registry under the `sim.`
    /// namespace (counters for raw counts, gauges for derived ratios,
    /// histograms for the region-size and opcode-mix distributions).
    pub fn publish(&self, r: &mut cwsp_obs::Registry) {
        for (name, v) in [
            ("sim.cycles", self.cycles),
            ("sim.insts", self.insts),
            ("sim.loads", self.loads),
            ("sim.stores", self.stores),
            ("sim.ckpt_stores", self.ckpt_stores),
            ("sim.frame_stores", self.frame_stores),
            ("sim.syncs", self.syncs),
            ("sim.regions", self.regions),
            ("sim.region_insts", self.region_insts),
            ("sim.wpq_hits", self.wpq_hits),
            ("sim.wb_delays", self.wb_delays),
            ("sim.wb_occupancy_sum", self.wb_occupancy_sum),
            ("sim.pb_occupancy_sum", self.pb_occupancy_sum),
            ("sim.stall.pb", self.stall_pb),
            ("sim.stall.rbt", self.stall_rbt),
            ("sim.stall.wb", self.stall_wb),
            ("sim.stall.sync", self.stall_sync),
            ("sim.stall.wpq", self.stall_wpq),
            ("sim.stall.scheme", self.stall_scheme),
            ("sim.cache.l1.hits", self.l1.0),
            ("sim.cache.l1.misses", self.l1.1),
            ("sim.cache.llc.hits", self.llc_sram.0),
            ("sim.cache.llc.misses", self.llc_sram.1),
            ("sim.cache.dram.hits", self.dram_cache.0),
            ("sim.cache.dram.misses", self.dram_cache.1),
            ("sim.nvm.reads", self.nvm_reads),
            ("sim.nvm.writes", self.nvm_writes),
            ("sim.log.appends", self.log_appends),
            ("sim.log.peak_live", self.peak_live_logs as u64),
        ] {
            r.add_counter(name, v);
        }
        r.set_gauge("sim.ipc", self.ipc());
        r.set_gauge("sim.wb.avg_occupancy", self.avg_wb_occupancy());
        r.set_gauge("sim.pb.avg_occupancy", self.avg_pb_occupancy());
        r.set_gauge("sim.wpq.hits_per_minst", self.wpq_hits_per_minst());
        r.set_histogram(
            "sim.region_size",
            &Self::REGION_BUCKETS,
            &self.region_size_hist,
        );
        r.set_histogram("sim.op_mix", &cwsp_ir::decoded::OPCODE_NAMES, &self.op_mix);
    }

    /// Check the cross-counter invariants the accounting must uphold:
    /// `op_mix` sums to `insts`, every stall counter is bounded by
    /// `cycles × cores`, the region-size histogram totals `regions`, and L1
    /// accesses (hits + misses) equal the memory operations that walk the
    /// hierarchy (`loads + stores + ckpt_stores + frame_stores` — sync
    /// writes persist at commit and bypass the cache walk).
    ///
    /// # Errors
    /// Returns every violated invariant as one newline-joined message.
    pub fn check_invariants(&self, cores: u64) -> Result<(), String> {
        let mut errs = Vec::new();
        let mix: u64 = self.op_mix.iter().sum();
        if mix != self.insts {
            errs.push(format!("op_mix sums to {mix}, insts is {}", self.insts));
        }
        let bound = self.cycles * cores;
        for (name, v) in [
            ("stall_pb", self.stall_pb),
            ("stall_rbt", self.stall_rbt),
            ("stall_wb", self.stall_wb),
            ("stall_sync", self.stall_sync),
            ("stall_wpq", self.stall_wpq),
            ("stall_scheme", self.stall_scheme),
        ] {
            if v > bound {
                errs.push(format!("{name} = {v} exceeds cycles×cores = {bound}"));
            }
        }
        let hist: u64 = self.region_size_hist.iter().sum();
        if hist != self.regions {
            errs.push(format!(
                "region_size_hist totals {hist}, regions is {}",
                self.regions
            ));
        }
        let accesses = self.l1.0 + self.l1.1;
        let memops = self.loads + self.stores + self.ckpt_stores + self.frame_stores;
        if accesses != memops {
            errs.push(format!(
                "l1 hits+misses = {accesses}, loads+stores+ckpt+frame = {memops}"
            ));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs.join("\n"))
        }
    }
}

fn ratio((h, m): (u64, u64)) -> f64 {
    if h + m == 0 {
        0.0
    } else {
        m as f64 / (h + m) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            insts: 2_000_000,
            wb_occupancy_sum: 39,
            pb_occupancy_sum: 250,
            wpq_hits: 3,
            regions: 10,
            region_insts: 381,
            l1: (90, 10),
            llc_sram: (1, 1),
            ..Default::default()
        };
        assert!((s.avg_wb_occupancy() - 0.39).abs() < 1e-12);
        assert!((s.avg_pb_occupancy() - 2.5).abs() < 1e-12);
        assert!((s.wpq_hits_per_minst() - 1.5).abs() < 1e-12);
        assert!((s.avg_region_insts() - 38.1).abs() < 1e-12);
        assert!((s.ipc() - 20000.0).abs() < 1e-9);
        assert!((s.l1_miss_ratio() - 0.1).abs() < 1e-12);
        assert!((s.llc_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn region_histogram_buckets() {
        let mut s = SimStats::default();
        for n in [1, 4, 5, 16, 17, 64, 65, 500] {
            s.record_region_size(n);
        }
        assert_eq!(s.region_size_hist, [2, 1, 1, 1, 1, 1, 1]);
        assert_eq!(SimStats::REGION_BUCKETS.len(), s.region_size_hist.len());
    }

    #[test]
    fn publish_exports_counters_gauges_histograms() {
        let mut s = SimStats {
            cycles: 100,
            insts: 3,
            stall_pb: 7,
            ..Default::default()
        };
        s.op_mix[0] = 3;
        s.record_region_size(2);
        let mut r = cwsp_obs::Registry::new();
        s.publish(&mut r);
        assert_eq!(r.counter_value("sim.cycles"), 100);
        assert_eq!(r.counter_value("sim.stall.pb"), 7);
        assert!((r.gauge_value("sim.ipc") - 0.03).abs() < 1e-12);
        match r.get("sim.region_size") {
            Some(cwsp_obs::MetricValue::Histogram(b)) => {
                assert_eq!(b[0], ("1-4".to_string(), 1));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!(r.get("sim.op_mix").is_some());
    }

    #[test]
    fn invariant_checker_catches_violations() {
        let mut s = SimStats {
            cycles: 10,
            insts: 5,
            loads: 2,
            stores: 1,
            l1: (2, 1),
            regions: 1,
            ..Default::default()
        };
        s.op_mix[0] = 5;
        s.record_region_size(3);
        assert!(s.check_invariants(1).is_ok(), "{:?}", s.check_invariants(1));
        // Break each invariant and check it is reported.
        let mut bad = s.clone();
        bad.op_mix[0] = 4;
        assert!(bad.check_invariants(1).unwrap_err().contains("op_mix"));
        let mut bad = s.clone();
        bad.stall_sync = 11;
        assert!(bad.check_invariants(1).unwrap_err().contains("stall_sync"));
        let mut bad = s.clone();
        bad.regions = 2;
        assert!(bad
            .check_invariants(1)
            .unwrap_err()
            .contains("region_size_hist"));
        let mut bad = s.clone();
        bad.loads = 3;
        assert!(bad.check_invariants(1).unwrap_err().contains("l1"));
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.avg_wb_occupancy(), 0.0);
        assert_eq!(s.wpq_hits_per_minst(), 0.0);
        assert_eq!(s.avg_region_insts(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l1_miss_ratio(), 0.0);
    }
}
