//! Publish the storage tier's process-wide telemetry (faults, evictions,
//! writeback batches, resident/spilled gauges — see `cwsp_store::tier`)
//! into a metrics registry under the `store.tier.*` namespace.
//!
//! The bench engine calls [`publish`] from its own registry dump, so any
//! figure binary run with `CWSP_OBS` set reports its paging traffic next to
//! its cache hit rates; the `storage-smoke` CI job reads the same snapshot
//! through [`snapshot_json`] (via `CWSP_TIER_JSON`).

use crate::Registry;
use cwsp_store::tier::{snapshot, TierSnapshot};

/// Publish the current [`TierSnapshot`] into `r`.
pub fn publish(r: &mut Registry) {
    publish_snapshot(r, &snapshot());
}

/// Publish an explicit snapshot (unit-testable without global state).
pub fn publish_snapshot(r: &mut Registry, s: &TierSnapshot) {
    for (name, v) in [
        ("store.tier.faults", s.faults),
        ("store.tier.evictions", s.evictions),
        ("store.tier.writebacks", s.writebacks),
        ("store.tier.writeback_batches", s.writeback_batches),
        ("store.tier.writeback_ns", s.writeback_ns),
        ("store.tier.spilled_loads", s.spilled_loads),
        ("store.tier.resident_hits", s.resident_hits),
        ("store.tier.zero_drops", s.zero_drops),
        ("store.tier.spill_bytes", s.spill_bytes),
    ] {
        let id = r.counter(name);
        r.add(id, v);
    }
    for (name, v) in [
        ("store.tier.resident_pages", s.resident_pages),
        ("store.tier.resident_peak", s.resident_peak),
        (
            "store.tier.resident_peak_per_instance",
            s.resident_peak_per_instance,
        ),
        ("store.tier.spilled_pages", s.spilled_pages),
    ] {
        let id = r.gauge(name);
        r.set(id, v as f64);
    }
}

/// The current tier telemetry as a flat JSON object.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_publishes_every_field() {
        let s = TierSnapshot {
            faults: 1,
            evictions: 2,
            writebacks: 3,
            writeback_batches: 4,
            writeback_ns: 5,
            spilled_loads: 6,
            resident_hits: 7,
            zero_drops: 8,
            spill_bytes: 9,
            resident_pages: 10,
            resident_peak: 11,
            resident_peak_per_instance: 12,
            spilled_pages: 13,
        };
        let mut r = Registry::new();
        publish_snapshot(&mut r, &s);
        assert_eq!(r.counter_value("store.tier.faults"), 1);
        assert_eq!(r.counter_value("store.tier.spill_bytes"), 9);
        assert_eq!(r.gauge_value("store.tier.resident_peak_per_instance"), 12.0);
        assert_eq!(r.gauge_value("store.tier.spilled_pages"), 13.0);
    }

    #[test]
    fn snapshot_json_parses_as_flat_object() {
        let j = snapshot_json();
        assert!(j.contains("\"resident_peak_per_instance\""));
        assert!(j.trim_start().starts_with('{'));
    }
}
