//! Per-function mod/ref + synchronization summaries, computed bottom-up
//! over the call graph's SCCs, plus the interprocedural lints they enable.
//!
//! A summary answers, for one function *including everything it may call*:
//! which constant addresses can it store to / load from (and whether any
//! access has a non-constant address), which words does it synchronize on
//! (`AtomicRmw` targets), does it fence, does it cross a region boundary,
//! does it write into the reserved checkpoint range, and what is its net
//! lock balance per lock word (CAS-acquires minus Swap-releases). The race
//! detector uses summaries as the conservative fallback when it cannot
//! descend into a callee; the intra-procedural I1–I3 passes get sharper
//! call handling from the same data.
//!
//! SCCs of size one are summarized in a single pass; recursion cycles are
//! iterated to a fixed point (all summary components are monotone — sets
//! grow, flags latch — so the iteration converges).

use crate::callgraph::CallGraph;
use crate::consts::ConstProp;
use crate::diag::{Diagnostic, Invariant, Location, Severity};
use cwsp_ir::function::Function;
use cwsp_ir::inst::{AtomicOp, Inst, Operand};
use cwsp_ir::layout;
use cwsp_ir::module::{FuncId, Module};
use cwsp_ir::types::Word;
use std::collections::{BTreeMap, BTreeSet};

/// Transitive may-effect summary of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncSummary {
    /// Constant program-data addresses the function (or a callee) may
    /// store to.
    pub stores: BTreeSet<Word>,
    /// Some store has an address the analysis could not resolve.
    pub stores_unknown: bool,
    /// Constant program-data addresses the function (or a callee) may
    /// load from.
    pub loads: BTreeSet<Word>,
    /// Some load has an address the analysis could not resolve.
    pub loads_unknown: bool,
    /// Constant addresses targeted by `AtomicRmw` (locks, flags, counters).
    pub sync_addrs: BTreeSet<Word>,
    /// Some atomic targets an unresolvable address.
    pub sync_unknown: bool,
    /// The function (or a callee) executes a `Fence`.
    pub has_fence: bool,
    /// The function (or a callee) publishes output (`Out`) — a durability
    /// commit point for the I6 pass ([`crate::persist`]).
    pub has_out: bool,
    /// The function (or a callee) crosses a region boundary.
    pub has_boundary: bool,
    /// The function (or a callee) performs a raw `Store` into the reserved
    /// checkpoint/metadata range — a hazard for every caller's slot state.
    pub writes_ckpt_range: bool,
    /// Net lock balance per constant lock word: +1 for each CAS(0→_)
    /// acquire site, −1 for each Swap(→0) release site, summed over the
    /// function body only (not callees — balance is a per-body shape lint).
    pub lock_balance: BTreeMap<Word, i64>,
}

impl FuncSummary {
    /// Whether the function may touch (read or write) `addr`.
    pub fn may_access(&self, addr: Word) -> bool {
        self.stores_unknown
            || self.loads_unknown
            || self.stores.contains(&addr)
            || self.loads.contains(&addr)
    }

    /// Whether the function may write `addr`.
    pub fn may_store(&self, addr: Word) -> bool {
        self.stores_unknown || self.stores.contains(&addr)
    }

    /// Fold a callee's transitive effects into this summary. Returns true
    /// when anything changed (drives the SCC fixed point).
    pub(crate) fn absorb(&mut self, callee: &FuncSummary) -> bool {
        let mut changed = false;
        for &a in &callee.stores {
            changed |= self.stores.insert(a);
        }
        for &a in &callee.loads {
            changed |= self.loads.insert(a);
        }
        for &a in &callee.sync_addrs {
            changed |= self.sync_addrs.insert(a);
        }
        macro_rules! latch {
            ($field:ident) => {
                if callee.$field && !self.$field {
                    self.$field = true;
                    changed = true;
                }
            };
        }
        latch!(stores_unknown);
        latch!(loads_unknown);
        latch!(sync_unknown);
        latch!(has_fence);
        latch!(has_out);
        latch!(has_boundary);
        latch!(writes_ckpt_range);
        changed
    }
}

/// Summaries for every function of a module.
#[derive(Debug, Clone, Default)]
pub struct Summaries {
    by_func: Vec<FuncSummary>,
}

impl Summaries {
    /// Compute all summaries bottom-up over `cg`'s SCCs.
    pub fn compute(module: &Module, cg: &CallGraph) -> Self {
        let n = module.function_count();
        let mut by_func: Vec<FuncSummary> = vec![FuncSummary::default(); n];
        for scc in cg.sccs_bottom_up() {
            // Seed each member with its own body effects, then iterate
            // callee absorption to a fixed point (1 pass for acyclic SCCs).
            for &fid in scc {
                if fid.index() < n {
                    by_func[fid.index()] = body_summary(module, module.function(fid));
                }
            }
            loop {
                let mut changed = false;
                for &fid in scc {
                    for &callee in cg.callees(fid) {
                        if callee == fid {
                            continue;
                        }
                        let callee_sum = by_func[callee.index()].clone();
                        changed |= by_func[fid.index()].absorb(&callee_sum);
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        Summaries { by_func }
    }

    /// Assemble summaries from per-function parts (indexed by `FuncId`) —
    /// the constructor the incremental layer ([`crate::incr`]) uses after
    /// recomputing only the dirty SCCs.
    pub(crate) fn from_parts(by_func: Vec<FuncSummary>) -> Self {
        Summaries { by_func }
    }

    /// Summary of `f` (default-empty for out-of-range ids).
    pub fn get(&self, f: FuncId) -> &FuncSummary {
        static EMPTY: FuncSummary = FuncSummary {
            stores: BTreeSet::new(),
            stores_unknown: false,
            loads: BTreeSet::new(),
            loads_unknown: false,
            sync_addrs: BTreeSet::new(),
            sync_unknown: false,
            has_fence: false,
            has_out: false,
            has_boundary: false,
            writes_ckpt_range: false,
            lock_balance: BTreeMap::new(),
        };
        self.by_func.get(f.index()).unwrap_or(&EMPTY)
    }
}

/// Summarize one function body (no callee effects).
pub(crate) fn body_summary(module: &Module, f: &Function) -> FuncSummary {
    let mut s = FuncSummary::default();
    let consts = ConstProp::compute(f);
    for (b, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            match inst {
                Inst::Store { addr, .. } => {
                    match crate::races::resolve_addr(module, &consts, f, b, i, addr) {
                        Some(a) => {
                            if layout::is_ckpt_addr(a) || layout::is_hw_meta_addr(a) {
                                s.writes_ckpt_range = true;
                            } else {
                                s.stores.insert(a);
                            }
                        }
                        None => s.stores_unknown = true,
                    }
                }
                Inst::Load { addr, .. } => {
                    match crate::races::resolve_addr(module, &consts, f, b, i, addr) {
                        Some(a) => {
                            s.loads.insert(a);
                        }
                        None => s.loads_unknown = true,
                    }
                }
                Inst::AtomicRmw {
                    op,
                    addr,
                    src,
                    expected,
                    ..
                } => match crate::races::resolve_addr(module, &consts, f, b, i, addr) {
                    Some(a) => {
                        s.sync_addrs.insert(a);
                        match op {
                            AtomicOp::Cas => {
                                if matches!(expected, Operand::Imm(0)) {
                                    *s.lock_balance.entry(a).or_insert(0) += 1;
                                }
                            }
                            AtomicOp::Swap => {
                                if matches!(src, Operand::Imm(0)) {
                                    *s.lock_balance.entry(a).or_insert(0) -= 1;
                                }
                            }
                            AtomicOp::FetchAdd => {}
                        }
                    }
                    None => s.sync_unknown = true,
                },
                Inst::Fence => s.has_fence = true,
                Inst::Out { .. } => s.has_out = true,
                Inst::Boundary { .. } => s.has_boundary = true,
                _ => {}
            }
        }
    }
    s
}

/// Interprocedural lints enabled by the call graph + summaries:
/// `L-recursive-call` (the bounded-stack argument of the recovery model
/// cannot be made for unbounded recursion), `L-dead-function`, and the
/// I2 sharpening `I2-callee-clobbers-slot` (a call's `save_regs` rely on
/// checkpoint slots the callee may raw-write).
pub fn check_module(module: &Module, cg: &CallGraph, sums: &Summaries) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let has_entry = module.entry().is_some();
    for (fid, f) in module.iter_functions() {
        if has_entry && !cg.is_reachable(fid) {
            out.push(Diagnostic {
                severity: Severity::Info,
                invariant: Invariant::Lint,
                code: "L-dead-function",
                message: format!("function `{}` is never called from the entry", f.name),
                location: Location {
                    function: f.name.clone(),
                    block: f.entry().0,
                    inst: None,
                },
                region: None,
                witness: None,
            });
        }
        for (b, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let Inst::Call {
                    func, save_regs, ..
                } = inst
                else {
                    continue;
                };
                let callee_name = if func.index() < module.function_count() {
                    module.function(*func).name.clone()
                } else {
                    format!("fn#{}", func.index())
                };
                if cg.is_recursive(fid) && in_same_scc(cg, fid, *func) {
                    out.push(Diagnostic {
                        severity: Severity::Warning,
                        invariant: Invariant::Lint,
                        code: "L-recursive-call",
                        message: format!(
                            "call to `{callee_name}` closes a recursion cycle; \
                             frame depth (and checkpoint pressure) is unbounded",
                        ),
                        location: Location {
                            function: f.name.clone(),
                            block: b.0,
                            inst: Some(i),
                        },
                        region: None,
                        witness: None,
                    });
                }
                if !save_regs.is_empty() && sums.get(*func).writes_ckpt_range {
                    out.push(Diagnostic {
                        severity: Severity::Warning,
                        invariant: Invariant::CheckpointCoverage,
                        code: "I2-callee-clobbers-slot",
                        message: format!(
                            "call spills {} register(s) to checkpoint slots, but callee \
                             `{callee_name}` may raw-write the reserved checkpoint range",
                            save_regs.len(),
                        ),
                        location: Location {
                            function: f.name.clone(),
                            block: b.0,
                            inst: Some(i),
                        },
                        region: None,
                        witness: None,
                    });
                }
            }
        }
    }
    out
}

fn in_same_scc(cg: &CallGraph, a: FuncId, b: FuncId) -> bool {
    cg.sccs_bottom_up()
        .iter()
        .any(|scc| scc.contains(&a) && scc.contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::MemRef;
    use cwsp_ir::types::Reg;

    fn summarize(m: &Module) -> (CallGraph, Summaries) {
        let cg = CallGraph::compute(m);
        let sums = Summaries::compute(m, &cg);
        (cg, sums)
    }

    #[test]
    fn body_effects_are_collected() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        b.push(
            e,
            Inst::store(Operand::imm(1), MemRef::abs(layout::GLOBAL_BASE)),
        );
        let r = b.vreg();
        b.push(e, Inst::load(r, MemRef::abs(layout::GLOBAL_BASE + 8)));
        b.push(e, Inst::Fence);
        b.push(e, Inst::Ret { val: None });
        let mut m = Module::new("t");
        let fid = m.add_function(b.build());
        m.set_entry(fid);
        let (_, sums) = summarize(&m);
        let s = sums.get(fid);
        assert!(s.stores.contains(&layout::GLOBAL_BASE));
        assert!(s.loads.contains(&(layout::GLOBAL_BASE + 8)));
        assert!(s.has_fence);
        assert!(!s.stores_unknown && !s.loads_unknown);
        assert!(s.may_store(layout::GLOBAL_BASE));
        assert!(!s.may_store(layout::GLOBAL_BASE + 8));
    }

    #[test]
    fn callee_effects_flow_into_caller() {
        let mut leaf = FunctionBuilder::new("leaf", 0);
        let le = leaf.entry();
        leaf.push(
            le,
            Inst::store(Operand::imm(7), MemRef::abs(layout::GLOBAL_BASE + 64)),
        );
        leaf.push(le, Inst::Ret { val: None });

        let mut m = Module::new("t");
        let leaf_id = m.add_function(leaf.build());

        let mut main = FunctionBuilder::new("main", 0);
        let me = main.entry();
        main.push(
            me,
            Inst::Call {
                func: leaf_id,
                args: vec![],
                ret: None,
                save_regs: vec![],
            },
        );
        main.push(me, Inst::Halt);
        let main_id = m.add_function(main.build());
        m.set_entry(main_id);

        let (_, sums) = summarize(&m);
        assert!(sums
            .get(main_id)
            .stores
            .contains(&(layout::GLOBAL_BASE + 64)));
        // Leaf's own summary is unchanged by its caller.
        assert!(sums.get(leaf_id).stores.len() == 1);
    }

    #[test]
    fn recursion_reaches_fixed_point() {
        // a -> b -> a, with a storing X and b storing Y: both summaries see
        // both addresses.
        let x = layout::GLOBAL_BASE;
        let y = layout::GLOBAL_BASE + 8;
        let a_id = FuncId(0);
        let b_id = FuncId(1);
        let mut a = FunctionBuilder::new("a", 0);
        let ae = a.entry();
        a.push(ae, Inst::store(Operand::imm(1), MemRef::abs(x)));
        a.push(
            ae,
            Inst::Call {
                func: b_id,
                args: vec![],
                ret: None,
                save_regs: vec![],
            },
        );
        a.push(ae, Inst::Ret { val: None });
        let mut b = FunctionBuilder::new("b", 0);
        let be = b.entry();
        b.push(be, Inst::store(Operand::imm(2), MemRef::abs(y)));
        b.push(
            be,
            Inst::Call {
                func: a_id,
                args: vec![],
                ret: None,
                save_regs: vec![],
            },
        );
        b.push(be, Inst::Ret { val: None });
        let mut m = Module::new("t");
        m.add_function(a.build());
        m.add_function(b.build());
        m.set_entry(a_id);
        let (cg, sums) = summarize(&m);
        for fid in [a_id, b_id] {
            assert!(sums.get(fid).stores.contains(&x), "{fid:?}");
            assert!(sums.get(fid).stores.contains(&y), "{fid:?}");
        }
        let diags = check_module(&m, &cg, &sums);
        let rec: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "L-recursive-call")
            .collect();
        assert_eq!(rec.len(), 2, "{diags:?}");
        assert!(rec.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn lock_balance_tracks_cas_and_swap() {
        let lock = layout::GLOBAL_BASE + 256;
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let got = b.vreg();
        b.push(
            e,
            Inst::AtomicRmw {
                op: AtomicOp::Cas,
                dst: got,
                addr: MemRef::abs(lock),
                src: Operand::imm(1),
                expected: Operand::imm(0),
            },
        );
        b.push(
            e,
            Inst::AtomicRmw {
                op: AtomicOp::Swap,
                dst: got,
                addr: MemRef::abs(lock),
                src: Operand::imm(0),
                expected: Operand::imm(0),
            },
        );
        b.push(e, Inst::Ret { val: None });
        let mut m = Module::new("t");
        let fid = m.add_function(b.build());
        m.set_entry(fid);
        let (_, sums) = summarize(&m);
        let s = sums.get(fid);
        assert_eq!(s.lock_balance.get(&lock), Some(&0), "acquire+release");
        assert!(s.sync_addrs.contains(&lock));
    }

    #[test]
    fn dead_function_and_callee_slot_clobber_lints() {
        let mut evil = FunctionBuilder::new("evil", 0);
        let ee = evil.entry();
        evil.push(
            ee,
            Inst::store(
                Operand::imm(9),
                MemRef::abs(layout::ckpt_slot_addr(0, Reg(2))),
            ),
        );
        evil.push(ee, Inst::Ret { val: None });
        let mut m = Module::new("t");
        let evil_id = m.add_function(evil.build());

        let mut main = FunctionBuilder::new("main", 0);
        let me = main.entry();
        let r = main.mov(me, Operand::imm(5));
        main.push(me, Inst::Ckpt { reg: r });
        main.push(
            me,
            Inst::Call {
                func: evil_id,
                args: vec![],
                ret: None,
                save_regs: vec![r],
            },
        );
        main.push(me, Inst::Halt);
        let main_id = m.add_function(main.build());

        let mut dead = FunctionBuilder::new("unused", 0);
        let de = dead.entry();
        dead.push(de, Inst::Ret { val: None });
        m.add_function(dead.build());
        m.set_entry(main_id);

        let (cg, sums) = summarize(&m);
        assert!(sums.get(evil_id).writes_ckpt_range);
        let diags = check_module(&m, &cg, &sums);
        assert!(
            diags.iter().any(|d| d.code == "I2-callee-clobbers-slot"
                && d.severity == Severity::Warning
                && d.location.function == "main"),
            "{diags:?}"
        );
        let dead_lints: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "L-dead-function")
            .collect();
        assert_eq!(dead_lints.len(), 1, "{diags:?}");
        assert_eq!(dead_lints[0].location.function, "unused");
        assert_eq!(dead_lints[0].severity, Severity::Info);
    }
}
