//! Figure 8: loads hitting a pending WPQ entry, per million instructions
//! (paper: 0.98 average — rare enough that delaying such loads is free).

use cwsp_bench::{measure_all, print_results, scheme_stats};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig08_wpq_hits", run);
}

fn run() {
    let cfg = SimConfig::default();
    let apps = cwsp_workloads::all();
    let results = measure_all(&apps, |w| {
        scheme_stats(w, &cfg, Scheme::cwsp(), CompileOptions::default()).wpq_hits_per_minst()
    });
    print_results(
        "Fig 8: WPQ hits per 1M instructions (paper avg: 0.98)",
        "HPMI",
        &results,
    );
}
