//! SPLASH-3 stand-ins (10 apps): cholesky, fft, lu-cg (contiguous), lu-ncg,
//! ocean-cg (ocg), ocean-ncg (oncg), radix, raytrace, water-nsquared
//! (water-ns), water-spatial (water-sp).
//!
//! The paper singles SPLASH-3 out as cWSP's worst case: short regions with
//! many sequential/repeated writes and good locality — fast baselines plus
//! heavy pressure on the persist path and WPQ (§IX-A, Fig 26). These
//! stand-ins are therefore write-dense, L1/L2-resident, and sprinkled with
//! synchronization points (barrier/lock behaviour of the original
//! multithreaded kernels).

use crate::footprint::*;
use crate::kernels::*;
use crate::{app, arena, checksum, Suite, Workload};

fn w(name: &'static str, module: cwsp_ir::module::Module) -> Workload {
    Workload {
        name,
        suite: Suite::Splash3,
        module,
        window: 120_000,
    }
}

/// Build all ten SPLASH-3 workloads.
pub fn all() -> Vec<Workload> {
    vec![
        w(
            "cholesky",
            app("cholesky", |m, b, mut bb| {
                let mat = arena(m, "matrix", L2);
                let lock = arena(m, "lock", 1);
                bb = rmw_sweep(b, bb, mat, L2, 17, 2_500);
                sync_point(b, bb, lock);
                bb = rmw_sweep(b, bb, mat, L2, 1, 2_500);
                checksum(b, bb, mat);
                bb
            }),
        ),
        w(
            "fft",
            app("fft", |m, b, mut bb| {
                let data = arena(m, "data", L2);
                let lock = arena(m, "lock", 1);
                // Butterfly-ish strided RMW passes with a barrier between stages.
                for stage in 0..3u64 {
                    bb = rmw_sweep(b, bb, data, L2, 1 << (stage + 1), 1_600);
                    sync_point(b, bb, lock);
                }
                checksum(b, bb, data);
                bb
            }),
        ),
        w(
            "lu-cg",
            app("lu-cg", |m, b, mut bb| {
                let mat = arena(m, "matrix", L1);
                let lock = arena(m, "lock", 1);
                // Contiguous blocks: dense sequential writes, tiny regions.
                bb = rmw_sweep_frac(b, bb, mat, L1, 1, 3_500, 2);
                sync_point(b, bb, lock);
                bb = rmw_sweep_frac(b, bb, mat, L1, 1, 3_500, 2);
                checksum(b, bb, mat);
                bb
            }),
        ),
        w(
            "lu-ncg",
            app("lu-ncg", |m, b, mut bb| {
                let mat = arena(m, "matrix", L2);
                let lock = arena(m, "lock", 1);
                bb = rmw_sweep_frac(b, bb, mat, L2, 33, 3_000, 2);
                sync_point(b, bb, lock);
                bb = rmw_sweep_frac(b, bb, mat, L2, 33, 3_000, 2);
                checksum(b, bb, mat);
                bb
            }),
        ),
        w(
            "ocg",
            app("ocg", |m, b, mut bb| {
                let grid = arena(m, "grid", L2);
                let lock = arena(m, "lock", 1);
                bb = stencil3(b, bb, grid, grid + (L2 / 2) * 8, 2_800);
                sync_point(b, bb, lock);
                bb = stencil3(b, bb, grid + (L2 / 2) * 8, grid, 2_800);
                checksum(b, bb, grid + 8);
                bb
            }),
        ),
        w(
            "oncg",
            app("oncg", |m, b, mut bb| {
                let grid = arena(m, "grid", L2);
                let lock = arena(m, "lock", 1);
                bb = rmw_sweep(b, bb, grid, L2, 9, 2_800);
                sync_point(b, bb, lock);
                bb = stencil3(b, bb, grid, grid + (L2 / 2) * 8, 2_500);
                checksum(b, bb, grid);
                bb
            }),
        ),
        w(
            "radix",
            app("radix", |m, b, mut bb| {
                let keys = arena(m, "keys", L2);
                let buckets = arena(m, "buckets", L1);
                let lock = arena(m, "lock", 1);
                // Counting pass (dense RMW) then scatter pass (the write storm
                // the paper blames for radix's overhead).
                bb = rmw_sweep(b, bb, buckets, L1, 1, 2_500);
                sync_point(b, bb, lock);
                bb = scatter(b, bb, keys, keys + (L2 / 2) * 8, L2 / 2, 3_000);
                checksum(b, bb, buckets);
                bb
            }),
        ),
        w(
            "raytrace",
            app("raytrace", |m, b, mut bb| {
                let bvh = arena(m, "bvh", L2);
                let fb = arena(m, "framebuf", L1);
                bb = pointer_chase(b, bb, bvh, L2, 2_500, 0x8A7);
                bb = rmw_sweep(b, bb, fb, L1, 1, 1_800);
                checksum(b, bb, fb);
                bb
            }),
        ),
        w(
            "water-ns",
            app("water-ns", |m, b, mut bb| {
                let mol = arena(m, "molecules", L1);
                let lock = arena(m, "lock", 1);
                bb = compute_loop(b, bb, mol, 450, 40);
                bb = rmw_sweep_frac(b, bb, mol, L1, 1, 2_500, 2);
                sync_point(b, bb, lock);
                bb = rmw_sweep_frac(b, bb, mol, L1, 1, 2_000, 2);
                checksum(b, bb, mol);
                bb
            }),
        ),
        w(
            "water-sp",
            app("water-sp", |m, b, mut bb| {
                let cells = arena(m, "cells", L2);
                let lock = arena(m, "lock", 1);
                bb = compute_loop(b, bb, cells, 450, 40);
                bb = rmw_sweep(b, bb, cells, L2, 5, 2_500);
                sync_point(b, bb, lock);
                checksum(b, bb, cells);
                bb
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_apps_exist_and_run() {
        let ws = all();
        assert_eq!(ws.len(), 10);
        for w in &ws {
            let out = cwsp_ir::interp::run(&w.module, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.steps > 5_000, "{}", w.name);
        }
    }

    #[test]
    fn splash_apps_contain_sync_points() {
        for w in all() {
            if w.name == "raytrace" {
                continue; // data-parallel phase without locks
            }
            let has_atomic = w
                .module
                .iter_functions()
                .flat_map(|(_, f)| f.blocks.iter())
                .flat_map(|b| &b.insts)
                .any(|i| i.is_sync());
            assert!(has_atomic, "{} should synchronize", w.name);
        }
    }
}
