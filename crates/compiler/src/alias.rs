//! Lightweight symbolic alias analysis.
//!
//! Region formation must decide, for a load followed by a store on the same
//! path, whether the two accesses *may* touch the same word — that pair is a
//! memory antidependence and must be cut (§IV-A). The paper uses LLVM's alias
//! analysis; we use a small abstract interpretation over the path being
//! analyzed: registers carry either an exactly-known constant, a symbolic
//! base plus a known byte delta, or nothing.
//!
//! Because all accesses are 8-byte words at 8-byte alignment, two accesses
//! alias exactly when their addresses are equal — so "known distinct" is easy
//! to prove for same-base/different-delta and different-constant cases, and
//! everything else conservatively may-alias.

use cwsp_ir::inst::{Inst, MemRef, Operand};
use cwsp_ir::module::Module;
use cwsp_ir::types::{Reg, Word};
use std::collections::HashMap;

/// Abstract value of a register along a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractVal {
    /// Exactly-known constant.
    Const(Word),
    /// Unknown base value identified by a symbol, plus a known delta.
    /// Two occurrences of the same symbol denote the *same* runtime value.
    Base(u32, i64),
}

/// Abstract address of a memory access.
pub type AbstractAddr = AbstractVal;

/// Decide whether two abstract addresses may refer to the same word.
///
/// # Example
/// ```
/// use cwsp_compiler::alias::{may_alias, AbstractVal};
/// assert!(!may_alias(AbstractVal::Const(64), AbstractVal::Const(72)));
/// assert!(may_alias(AbstractVal::Const(64), AbstractVal::Const(64)));
/// assert!(!may_alias(AbstractVal::Base(1, 0), AbstractVal::Base(1, 8)));
/// assert!(may_alias(AbstractVal::Base(1, 0), AbstractVal::Base(2, 0)));
/// ```
pub fn may_alias(a: AbstractAddr, b: AbstractAddr) -> bool {
    match (a, b) {
        (AbstractVal::Const(x), AbstractVal::Const(y)) => x == y,
        (AbstractVal::Base(s1, d1), AbstractVal::Base(s2, d2)) => s1 != s2 || d1 == d2,
        // A constant and an unknown base: cannot disprove.
        _ => true,
    }
}

/// Tracks abstract register values along one straight-line path.
///
/// Feed instructions in path order with [`PathState::transfer`]; query access
/// addresses with [`PathState::addr_of`] *before* transferring the
/// instruction that performs the access.
#[derive(Debug, Clone)]
pub struct PathState<'m> {
    module: &'m Module,
    vals: HashMap<Reg, AbstractVal>,
    next_sym: u32,
}

impl<'m> PathState<'m> {
    /// Fresh path state (all registers unknown).
    pub fn new(module: &'m Module) -> Self {
        PathState {
            module,
            vals: HashMap::new(),
            next_sym: 0,
        }
    }

    fn fresh(&mut self) -> AbstractVal {
        let s = self.next_sym;
        self.next_sym += 1;
        AbstractVal::Base(s, 0)
    }

    fn operand(&mut self, op: Operand) -> AbstractVal {
        match op {
            Operand::Imm(v) => AbstractVal::Const(self.module.resolve_addr(v)),
            Operand::Reg(r) => match self.vals.get(&r) {
                Some(v) => *v,
                None => {
                    let v = self.fresh();
                    self.vals.insert(r, v);
                    v
                }
            },
        }
    }

    /// Abstract address of `m` in the current state.
    pub fn addr_of(&mut self, m: &MemRef) -> AbstractAddr {
        match self.operand(m.base) {
            AbstractVal::Const(c) => AbstractVal::Const(c.wrapping_add(m.offset as Word)),
            AbstractVal::Base(s, d) => AbstractVal::Base(s, d.wrapping_add(m.offset)),
        }
    }

    /// Update the state across `inst`.
    pub fn transfer(&mut self, inst: &Inst) {
        use cwsp_ir::inst::BinOp;
        match inst {
            Inst::Mov { dst, src } => {
                let v = self.operand(*src);
                self.vals.insert(*dst, v);
            }
            Inst::Binary { op, dst, lhs, rhs } => {
                let l = self.operand(*lhs);
                let r = self.operand(*rhs);
                let v = match (op, l, r) {
                    (_, AbstractVal::Const(a), AbstractVal::Const(b)) => {
                        AbstractVal::Const(op.eval(a, b))
                    }
                    (BinOp::Add, AbstractVal::Base(s, d), AbstractVal::Const(c)) => {
                        AbstractVal::Base(s, d.wrapping_add(c as i64))
                    }
                    (BinOp::Add, AbstractVal::Const(c), AbstractVal::Base(s, d)) => {
                        AbstractVal::Base(s, d.wrapping_add(c as i64))
                    }
                    (BinOp::Sub, AbstractVal::Base(s, d), AbstractVal::Const(c)) => {
                        AbstractVal::Base(s, d.wrapping_sub(c as i64))
                    }
                    _ => self.fresh(),
                };
                self.vals.insert(*dst, v);
            }
            _ => {
                // Any other definition (loads, calls, atomics…) produces an
                // unknown value.
                for d in crate::liveness::defs(inst) {
                    let v = self.fresh();
                    self.vals.insert(d, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::inst::BinOp;

    fn state(m: &Module) -> PathState<'_> {
        PathState::new(m)
    }

    #[test]
    fn constant_addresses_disambiguate() {
        let m = Module::new("t");
        let mut st = state(&m);
        let a = st.addr_of(&MemRef::abs(64));
        let b = st.addr_of(&MemRef::abs(72));
        assert!(!may_alias(a, b));
        let c = st.addr_of(&MemRef::abs(64));
        assert!(may_alias(a, c));
    }

    #[test]
    fn same_base_different_offset_disambiguates() {
        let m = Module::new("t");
        let mut st = state(&m);
        // r0 unknown; [r0] vs [r0+8] vs [r0]
        let a = st.addr_of(&MemRef::reg(Reg(0), 0));
        let b = st.addr_of(&MemRef::reg(Reg(0), 8));
        let c = st.addr_of(&MemRef::reg(Reg(0), 0));
        assert!(!may_alias(a, b));
        assert!(may_alias(a, c));
    }

    #[test]
    fn add_const_tracks_delta() {
        let m = Module::new("t");
        let mut st = state(&m);
        // r1 = r0 + 8  =>  [r1] aliases [r0+8], not [r0]
        let base = st.addr_of(&MemRef::reg(Reg(0), 0));
        st.transfer(&Inst::binary(
            BinOp::Add,
            Reg(1),
            Reg(0).into(),
            Operand::imm(8),
        ));
        let derived = st.addr_of(&MemRef::reg(Reg(1), 0));
        assert!(!may_alias(base, derived));
        let plus8 = st.addr_of(&MemRef::reg(Reg(0), 8));
        assert!(may_alias(derived, plus8));
    }

    #[test]
    fn redefinition_invalidates_tracking() {
        let m = Module::new("t");
        let mut st = state(&m);
        let before = st.addr_of(&MemRef::reg(Reg(0), 0));
        // r0 = load [...] -> unknown new value
        st.transfer(&Inst::load(Reg(0), MemRef::abs(64)));
        let after = st.addr_of(&MemRef::reg(Reg(0), 0));
        assert!(
            may_alias(before, after),
            "different symbols conservatively alias"
        );
        assert_ne!(before, after);
    }

    #[test]
    fn tagged_globals_resolve_to_distinct_constants() {
        let mut m = Module::new("t");
        let g1 = m.add_global("a", 8);
        let g2 = m.add_global("b", 8);
        let mut st = state(&m);
        let a = st.addr_of(&MemRef::global(g1, 0));
        let b = st.addr_of(&MemRef::global(g2, 0));
        assert!(!may_alias(a, b), "distinct globals never alias");
        let a0 = st.addr_of(&MemRef::global(g1, 0));
        assert!(may_alias(a, a0));
    }

    #[test]
    fn const_folding_through_mov_chains() {
        let m = Module::new("t");
        let mut st = state(&m);
        st.transfer(&Inst::Mov {
            dst: Reg(0),
            src: Operand::imm(100),
        });
        st.transfer(&Inst::binary(
            BinOp::Shl,
            Reg(1),
            Reg(0).into(),
            Operand::imm(3),
        ));
        let a = st.addr_of(&MemRef::reg(Reg(1), 0));
        assert_eq!(a, AbstractVal::Const(800));
    }

    #[test]
    fn sub_const_tracks_delta() {
        let m = Module::new("t");
        let mut st = state(&m);
        let base = st.addr_of(&MemRef::reg(Reg(0), 0));
        st.transfer(&Inst::binary(
            BinOp::Sub,
            Reg(1),
            Reg(0).into(),
            Operand::imm(8),
        ));
        let d = st.addr_of(&MemRef::reg(Reg(1), 0));
        assert!(!may_alias(base, d));
        assert!(may_alias(d, st.addr_of(&MemRef::reg(Reg(0), -8))));
    }
}
