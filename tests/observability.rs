//! End-to-end checks on the observability layer: tracing and profiling must
//! never perturb simulation results, the Chrome trace-event export must be
//! well-formed with complete spans on every core track, and the cycle
//! profiler must attribute ≥95% of core-cycles to program sites across
//! workloads and schemes (the exactness guarantee, measured for real).

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::obs::chrome::PID;
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::{Machine, RunEnd};
use cwsp::sim::scheme::Scheme;

fn compiled(name: &str) -> cwsp::ir::Module {
    let w = cwsp::workloads::by_name(name).unwrap();
    CwspCompiler::new(CompileOptions::default())
        .compile(&w.module)
        .module
}

#[test]
fn tracing_and_profiling_do_not_perturb_results() {
    for name in ["namd", "rb"] {
        let m = compiled(name);
        let cfg = SimConfig::default();
        let mut plain = Machine::new(&m, &cfg, Scheme::cwsp());
        let r_plain = plain.run(u64::MAX, None).unwrap();
        let mut observed = Machine::new(&m, &cfg, Scheme::cwsp());
        observed.enable_trace(4096);
        observed.enable_profiler();
        let r_obs = observed.run(u64::MAX, None).unwrap();
        assert_eq!(
            r_plain.stats, r_obs.stats,
            "{name}: observation changed the run"
        );
        assert_eq!(r_plain.end, r_obs.end, "{name}");
    }
}

#[test]
fn chrome_trace_has_complete_spans_on_every_core_track() {
    let m = compiled("namd");
    let cfg = SimConfig::default();
    let mut machine = Machine::new(&m, &cfg, Scheme::cwsp());
    machine.enable_trace(65_536);
    let r = machine.run(u64::MAX, None).unwrap();
    assert_eq!(r.end, RunEnd::Completed);
    let chrome = machine.chrome_trace().unwrap();
    for core in 0..cfg.cores as u64 {
        assert!(
            chrome.complete_spans_on(core) >= 1,
            "core {core} track has no complete spans"
        );
    }
    // The JSON text form is loadable: our own parser accepts it and the
    // document has the trace-event envelope.
    let text = chrome.to_json();
    let doc = cwsp_bench::json::parse(&text).expect("trace JSON parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    for e in events {
        assert_eq!(e.get("pid").unwrap().as_u64(), Some(PID));
        let ph = e.get("ph").unwrap();
        if matches!(ph, cwsp_bench::json::Value::Str(s) if s == "X") {
            assert!(e.get("dur").unwrap().as_u64().unwrap() >= 1);
        }
    }
}

#[test]
fn profiler_attributes_at_least_95_percent_of_cycles() {
    // The PR's acceptance bar: ≥3 workloads × 2 schemes, ≥95% of cycles at
    // resolvable program sites.
    for name in ["namd", "rb", "sps"] {
        let m = compiled(name);
        for scheme in [Scheme::cwsp(), Scheme::Baseline] {
            let cfg = SimConfig::default();
            let mut machine = Machine::new(&m, &cfg, scheme);
            machine.enable_profiler();
            let r = machine.run(u64::MAX, None).unwrap();
            let flat = machine.flat_profile().unwrap();
            assert_eq!(
                flat.total_cycles,
                r.stats.cycles * cfg.cores as u64,
                "{name}/{}: attribution is not exact",
                scheme.name()
            );
            assert_eq!(flat.accounted_cycles(), flat.total_cycles);
            assert!(
                flat.coverage() >= 0.95,
                "{name}/{}: coverage {:.3} < 0.95",
                scheme.name(),
                flat.coverage()
            );
        }
    }
}

#[test]
fn profiler_attributes_exec_cycles_to_superblocks() {
    // Superblock-granularity attribution under fusion: ≥99% of exec cycles
    // must resolve to a decoded super-op, and the superblock profile must
    // account for every cycle it claims.
    for name in ["namd", "rb", "sps"] {
        let m = compiled(name);
        for scheme in [Scheme::cwsp(), Scheme::Baseline] {
            let cfg = SimConfig::default();
            let mut machine = Machine::new(&m, &cfg, scheme);
            machine.enable_profiler();
            machine.run(u64::MAX, None).unwrap();
            let cov = machine.superblock_coverage().unwrap();
            assert!(
                cov >= 0.99,
                "{name}/{}: superblock coverage {:.4} < 0.99",
                scheme.name(),
                cov
            );
            let sb = machine.superblock_profile().unwrap();
            assert!(sb.total_cycles > 0, "{name}: no exec cycles offered");
            assert_eq!(
                sb.accounted_cycles(),
                (sb.total_cycles as f64 * cov).round() as u64,
                "{name}/{}: superblock rows disagree with coverage",
                scheme.name()
            );
            // Every attributed row names a real function and a super-op.
            for row in &sb.rows {
                assert_ne!(row.func, "<machine>", "{name}: unresolved function");
                assert!(row.region.is_some(), "{name}: row without super-op index");
            }
        }
    }
}

#[test]
fn trace_post_mortem_reports_capacity_and_drops() {
    let m = compiled("lbm");
    let cfg = SimConfig::default();
    let mut machine = Machine::new(&m, &cfg, Scheme::cwsp());
    machine.enable_trace(64); // tiny ring: drops are certain
    let r = machine.run(u64::MAX, Some(20_000)).unwrap();
    assert_eq!(r.end, RunEnd::PowerFailure);
    let t = machine.trace().unwrap();
    assert!(t.dropped() > 0, "expected the 64-event ring to overflow");
    let pm = t.post_mortem(8);
    assert!(pm.contains("ring capacity 64"), "{pm}");
    assert!(pm.contains("TRUNCATED"), "{pm}");
    assert!(
        pm.contains(&format!("{} older events dropped", t.dropped())),
        "{pm}"
    );
}
