//! Table I: the CXL memory devices modelled for §IX-C.

use cwsp_sim::config::{CxlDevice, CXL_DEVICES};

fn main() {
    cwsp_bench::harness_main("table1_cxl_devices", run);
}

fn run() {
    println!("=== Table I: CXL memory devices ===");
    println!(
        "{:<16} {:<11} {:<12} {:>14} {:>18}",
        "Device", "CXL IP", "Technology", "Max BW (GB/s)", "Latency (r/w ns)"
    );
    // Fan the rows out over the engine pool (order-preserving) so even this
    // table records its achieved parallelism in the harness telemetry.
    let rows = cwsp_bench::par_map(&CXL_DEVICES, |d: &CxlDevice| {
        format!(
            "{:<16} {:<11} {:<12} {:>14.1} {:>11.0}/{:.0}",
            d.name, d.ip, d.technology, d.max_bandwidth_gbps, d.read_ns, d.write_ns
        )
    });
    for row in rows {
        println!("{row}");
    }
}
