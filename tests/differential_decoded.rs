//! Generator-driven differential tests: decoded core vs. reference
//! interpreter over *arbitrary* structured programs.
//!
//! The hand-written cases in `crates/ir/tests/differential.rs` pin down each
//! instruction's semantics; this suite sweeps `genprog`-generated programs
//! (raw and compiled — the compiled ones carry boundaries, checkpoints, and
//! pruned frames) through both interpreters in lockstep, including
//! crash/resume at generated boundaries.
//!
//! Two tiers share the same properties (the `tests/proptest_crash.rs`
//! pattern):
//!
//! * The **offline tier** (always compiled) sweeps deterministic,
//!   SplitMix64-driven samples so the zero-external-crate build exercises
//!   every property.
//! * The **proptest tier** (`--features proptest`, which also requires
//!   re-adding `proptest = "1"` to `[dev-dependencies]` — see README) layers
//!   randomized case generation on top.

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::core::genprog::{generate, ProgramSpec};
use cwsp::core::prng::SplitMix64;
use cwsp::ir::interp::Interp;
use cwsp::ir::memory::Memory;
use cwsp::ir::module::Module;
use cwsp::ir::reference::RefInterp;

const MAX_STEPS: u64 = 3_000_000;

/// Deterministically sample a [`ProgramSpec`] from one RNG draw sequence.
fn sample_spec(r: &mut SplitMix64) -> ProgramSpec {
    ProgramSpec {
        globals: r.range_u64(1, 4) as usize,
        global_words: r.range_u64(4, 32),
        segments: r.range_u64(4, 14) as usize,
        max_trip: r.range_u64(2, 10),
        calls: r.chance(0.5),
    }
}

/// Run decoded and reference interpreters in lockstep over `module`,
/// asserting identical effect streams, halt state, and final memories.
/// Returns how many steps executed.
fn assert_lockstep(module: &Module, label: &str) -> u64 {
    let mut mem_d = Memory::new();
    let mut mem_r = Memory::new();
    let mut dec =
        Interp::new(module, 0, &mut mem_d).unwrap_or_else(|e| panic!("{label}: decoded init: {e}"));
    let mut refi = RefInterp::new(module, 0, &mut mem_r)
        .unwrap_or_else(|e| panic!("{label}: reference init: {e}"));
    let mut steps = 0;
    while !dec.is_halted() && !refi.is_halted() && steps < MAX_STEPS {
        let ed = dec.step(&mut mem_d);
        let er = refi.step(&mut mem_r);
        assert_eq!(ed, er, "{label}: step {steps} diverges");
        if ed.is_err() {
            break;
        }
        steps += 1;
    }
    assert_eq!(dec.is_halted(), refi.is_halted(), "{label}: halt state");
    assert_eq!(dec.return_value(), refi.return_value(), "{label}: retval");
    assert_eq!(mem_d, mem_r, "{label}: final memories");
    steps
}

/// Crash `module` at its `n`-th boundary (if the run produces one), resume
/// both interpreters from the persisted frame chain, and run them to
/// completion in lockstep.
fn assert_resume_lockstep(module: &Module, nth_boundary: usize, label: &str) {
    let mut mem = Memory::new();
    let Ok(mut i) = Interp::new(module, 0, &mut mem) else {
        return;
    };
    let mut snapshot = None;
    let mut seen = 0;
    let mut steps = 0;
    while !i.is_halted() && steps < MAX_STEPS {
        let Ok(eff) = i.step(&mut mem) else { return };
        steps += 1;
        if let Some(b) = eff.boundary {
            if seen == nth_boundary {
                snapshot = Some((b.resume, mem.clone()));
                break;
            }
            seen += 1;
        }
    }
    let Some((rp, snap)) = snapshot else { return };
    let mut mem_d = snap.clone();
    let mut mem_r = snap;
    let dec = Interp::resume(module, 0, &mem_d, rp);
    let refi = RefInterp::resume(module, 0, &mem_r, rp);
    let (Ok(mut dec), Ok(mut refi)) = (dec, refi) else {
        panic!("{label}: resume constructibility differs");
    };
    // Function-entry / post-call resumes are self-contained; Normal resumes
    // would need the recovery slice, so registers start zeroed in *both* —
    // still a valid differential case (identical inputs → identical stream).
    let mut steps = 0;
    while !dec.is_halted() && !refi.is_halted() && steps < MAX_STEPS {
        let ed = dec.step(&mut mem_d);
        let er = refi.step(&mut mem_r);
        assert_eq!(ed, er, "{label}: post-resume step {steps} diverges");
        if ed.is_err() {
            return;
        }
        steps += 1;
    }
    assert_eq!(dec.is_halted(), refi.is_halted(), "{label}: halt state");
    assert_eq!(mem_d, mem_r, "{label}: post-resume memories");
}

#[test]
fn generated_programs_execute_identically() {
    let mut r = SplitMix64::seed_from_u64(0xDEC0DE);
    for case in 0..16 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 100_000);
        let module = generate(&spec, seed);
        let steps = assert_lockstep(&module, &format!("case {case} seed {seed}"));
        assert!(steps > 0, "case {case}: trivial program");
    }
}

#[test]
fn autofenced_programs_execute_identically() {
    // Autofenced modules exercise FlushLine/PFence through both cores —
    // the decoded interpreter's effect stream must match the reference's
    // word-for-word on the new opcodes too.
    use cwsp::compiler::autofence;
    let mut r = SplitMix64::seed_from_u64(0xF1055);
    for case in 0..12 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 100_000);
        let mut module = generate(&spec, seed);
        let stats = autofence::run(&mut module);
        assert!(
            stats.flushes_inserted > 0,
            "case {case}: no flushes inserted"
        );
        assert_lockstep(&module, &format!("case {case} seed {seed} autofenced"));
    }
}

#[test]
fn compiled_programs_execute_identically() {
    // Compiled modules exercise Boundary/Ckpt and pruned save lists — paths
    // raw genprog output doesn't emit.
    let mut r = SplitMix64::seed_from_u64(0xC0DEC);
    for case in 0..8 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 100_000);
        let pruning = r.chance(0.5);
        let module = generate(&spec, seed);
        let compiled = CwspCompiler::new(CompileOptions {
            pruning,
            ..Default::default()
        })
        .compile(&module);
        assert_lockstep(
            &compiled.module,
            &format!("case {case} seed {seed} pruning={pruning}"),
        );
    }
}

#[test]
fn compiled_programs_resume_identically() {
    let mut r = SplitMix64::seed_from_u64(0x2E5);
    for case in 0..8 {
        let spec = sample_spec(&mut r);
        let seed = r.range_u64(0, 100_000);
        let nth = r.range_u64(0, 6) as usize;
        let module = generate(&spec, seed);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&module);
        assert_resume_lockstep(
            &compiled.module,
            nth,
            &format!("case {case} seed {seed} boundary {nth}"),
        );
    }
}

#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use proptest::prelude::*;

    fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
        (1usize..4, 4u64..32, 4usize..14, 2u64..10, any::<bool>()).prop_map(
            |(globals, words, segments, trip, calls)| ProgramSpec {
                globals,
                global_words: words,
                segments,
                max_trip: trip,
                calls,
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn random_programs_execute_identically(
            spec in spec_strategy(),
            seed in 0u64..100_000,
            compile in any::<bool>(),
            pruning in any::<bool>(),
        ) {
            let module = generate(&spec, seed);
            let module = if compile {
                CwspCompiler::new(CompileOptions { pruning, ..Default::default() })
                    .compile(&module)
                    .module
            } else {
                module
            };
            assert_lockstep(&module, &format!("seed {seed}"));
        }

        #[test]
        fn random_programs_resume_identically(
            spec in spec_strategy(),
            seed in 0u64..100_000,
            nth in 0usize..8,
        ) {
            let module = generate(&spec, seed);
            let compiled = CwspCompiler::new(CompileOptions::default()).compile(&module);
            assert_resume_lockstep(&compiled.module, nth, &format!("seed {seed}"));
        }
    }
}
