//! `cwsp-forensics` — post-crash investigation from the command line.
//!
//! Crash a workload at a chosen cycle (or a seeded sweep of cycles), rebuild
//! the persist frontier from the flight journal, and cross-check the
//! predicted replay set against an instrumented recovery. Exit code 2 means
//! the forensic prediction diverged from what recovery actually replayed —
//! the one outcome CI must never see.
//!
//! ```sh
//! cargo run --release -p cwsp-bench --bin cwsp-forensics -- -w tatp -k 20000
//! cargo run --release -p cwsp-bench --bin cwsp-forensics -- --sweep 25 --json
//! ```
//!
//! `--json` prints the machine-readable document (`--json=PATH` writes it to
//! a file instead); sweep summaries also land in the result spine's
//! telemetry keyspace. `CWSP_FLIGHT_DIR` persists the journal to disk so it
//! survives the process.

use cwsp_bench::forensics::{investigate, investigation_json, sweep, sweep_json, system_for};
use cwsp_bench::json::Value;
use std::cell::Cell;

const USAGE: &str = "\
cwsp-forensics: crash-injection forensics over the flight journal

USAGE:
    cwsp-forensics [OPTIONS]

OPTIONS:
    -w, --workload NAME   workload to crash (default: tatp; see list_workloads)
    -k, --kill-cycle N    power-fail cycle for a single investigation (default: 20000)
        --sweep N         run N seeded kill-cycle injections instead of one
        --seed N          sweep seed (default: 0)
        --json[=PATH]     emit JSON (to stdout, or to PATH)
    -h, --help            this text

EXIT CODES:
    0  every cross-check matched (or the run completed before the kill)
    1  bad arguments / unknown workload / simulation error
    2  forensic frontier diverged from the recovery replay";

struct Opts {
    workload: String,
    kill_cycle: u64,
    sweep: Option<usize>,
    seed: u64,
    json: Option<Option<String>>,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        workload: "tatp".to_string(),
        kill_cycle: 20_000,
        sweep: None,
        seed: 0,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match a.as_str() {
            "-w" | "--workload" => o.workload = take("--workload")?,
            "-k" | "--kill-cycle" => {
                o.kill_cycle = take("--kill-cycle")?
                    .parse()
                    .map_err(|e| format!("--kill-cycle: {e}"))?;
            }
            "--sweep" => {
                o.sweep = Some(
                    take("--sweep")?
                        .parse()
                        .map_err(|e| format!("--sweep: {e}"))?,
                );
            }
            "--seed" => {
                o.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--json" => o.json = Some(None),
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            _ if a.starts_with("--json=") => {
                o.json = Some(Some(a["--json=".len()..].to_string()));
            }
            _ => return Err(format!("unknown argument {a:?} (try --help)")),
        }
    }
    Ok(o)
}

fn emit(doc: &Value, dest: &Option<String>) {
    let text = doc.to_pretty();
    match dest {
        Some(path) => {
            std::fs::write(path, text.as_bytes())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("[forensics] wrote {path}");
        }
        None => println!("{text}"),
    }
}

/// Returns `true` when a forensic cross-check diverged (exit 2).
fn run() -> bool {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cwsp-forensics: {e}");
            std::process::exit(1);
        }
    };
    let result = match &opts.sweep {
        Some(n) => run_sweep(&opts, *n),
        None => run_single(&opts),
    };
    match result {
        Ok(diverged) => diverged,
        Err(e) => {
            eprintln!("cwsp-forensics: {e}");
            std::process::exit(1);
        }
    }
}

fn run_single(opts: &Opts) -> Result<bool, String> {
    let system = system_for(&opts.workload)?;
    let inv = investigate(&system, opts.kill_cycle)?;
    if let Some(dest) = &opts.json {
        emit(
            &investigation_json(&opts.workload, opts.kill_cycle, &inv),
            dest,
        );
    } else if inv.completed {
        println!(
            "{} completed before cycle {} — nothing to investigate",
            opts.workload, opts.kill_cycle
        );
    } else {
        let rep = inv.report.as_ref().expect("crashed run carries a report");
        println!("{}", rep.to_text());
        if let Some(p) = &inv.journal_path {
            println!("journal: {}", p.display());
        }
    }
    let diverged = inv.report.as_ref().is_some_and(|r| !r.all_matched());
    if diverged {
        eprintln!(
            "cwsp-forensics: {} crash@{}: frontier/replay DIVERGENCE",
            opts.workload, opts.kill_cycle
        );
    }
    Ok(diverged)
}

fn run_sweep(opts: &Opts, n: usize) -> Result<bool, String> {
    let sum = sweep(&opts.workload, n, opts.seed)?;
    let doc = sweep_json(&sum);
    // Every sweep accumulates in the spine's telemetry keyspace, keyed by
    // source, so the fleet's forensic history is queryable over time.
    cwsp_bench::engine().commit_telemetry("forensics-sweep", &doc);
    if let Some(dest) = &opts.json {
        emit(&doc, dest);
    } else {
        println!("\n=== forensic sweep: {} ===", sum.workload);
        println!("   injections     {:>8}", sum.injections);
        println!("   effective      {:>8}", sum.effective);
        println!("   matched        {:>8}", sum.matched);
        println!("   completed      {:>8}", sum.completed);
        println!("   lost stores    {:>8}", sum.lost_stores);
        println!("   undo-reverted  {:>8}", sum.reverted);
        println!(
            "--\n   verdict: {}",
            if sum.all_matched() {
                "all frontiers exact"
            } else {
                "DIVERGENCE"
            }
        );
    }
    if !sum.all_matched() {
        eprintln!(
            "cwsp-forensics: {}: {}/{} injections diverged",
            sum.workload,
            sum.effective - sum.matched,
            sum.effective
        );
    }
    Ok(!sum.all_matched())
}

fn main() {
    let diverged = Cell::new(false);
    cwsp_bench::harness_main("forensics", || diverged.set(run()));
    if diverged.get() {
        std::process::exit(2);
    }
}
