//! Ergonomic construction of IR functions.

use crate::function::{Block, BlockId, Function};
use crate::inst::{BinOp, Inst, MemRef, Operand};
use crate::module::FuncId;
use crate::types::Reg;

/// Incrementally builds a [`Function`].
///
/// The builder hands out fresh virtual registers and blocks; parameters occupy
/// registers `r0..r{param_count}` (retrieve them with [`FunctionBuilder::param`]).
///
/// # Example
/// ```
/// use cwsp_ir::prelude::*;
///
/// // fn add1(x) { return x + 1 }
/// let mut b = FunctionBuilder::new("add1", 1);
/// let entry = b.entry();
/// let x = b.param(0);
/// let y = b.vreg();
/// b.push(entry, Inst::binary(BinOp::Add, y, x.into(), Operand::imm(1)));
/// b.push(entry, Inst::Ret { val: Some(y.into()) });
/// let f = b.build();
/// assert!(f.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    param_count: u32,
    next_reg: u32,
    blocks: Vec<Block>,
}

impl FunctionBuilder {
    /// Start a function with `param_count` parameters. The entry block is
    /// created immediately.
    pub fn new(name: impl Into<String>, param_count: u32) -> Self {
        FunctionBuilder {
            name: name.into(),
            param_count,
            next_reg: param_count,
            blocks: vec![Block::default()],
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Parameter register `i`.
    ///
    /// # Panics
    /// Panics if `i >= param_count`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.param_count, "parameter index out of range");
        Reg(i)
    }

    /// Allocate a fresh virtual register.
    pub fn vreg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Create a new (empty) basic block.
    pub fn block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Append an instruction to `block`.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn push(&mut self, block: BlockId, inst: Inst) {
        self.blocks[block.index()].insts.push(inst);
    }

    // ---- convenience emitters (all append to the given block) ----

    /// Emit `dst = op(lhs, rhs)` into a fresh register and return it.
    pub fn bin(&mut self, block: BlockId, op: BinOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.vreg();
        self.push(block, Inst::Binary { op, dst, lhs, rhs });
        dst
    }

    /// Emit a move of `src` into a fresh register and return it.
    pub fn mov(&mut self, block: BlockId, src: Operand) -> Reg {
        let dst = self.vreg();
        self.push(block, Inst::Mov { dst, src });
        dst
    }

    /// Emit a load from `addr` into a fresh register and return it.
    pub fn load(&mut self, block: BlockId, addr: MemRef) -> Reg {
        let dst = self.vreg();
        self.push(block, Inst::Load { dst, addr });
        dst
    }

    /// Emit a store of `src` to `addr`.
    pub fn store(&mut self, block: BlockId, src: Operand, addr: MemRef) {
        self.push(block, Inst::Store { src, addr });
    }

    /// Emit a call; returns the destination register (fresh) if `want_ret`.
    ///
    /// `save_regs` is left empty — the compiler's call-save pass fills it with
    /// the registers live across the call.
    pub fn call(
        &mut self,
        block: BlockId,
        func: FuncId,
        args: Vec<Operand>,
        want_ret: bool,
    ) -> Option<Reg> {
        let ret = want_ret.then(|| self.vreg());
        self.push(
            block,
            Inst::Call {
                func,
                args,
                ret,
                save_regs: Vec::new(),
            },
        );
        ret
    }

    /// Finish and return the function.
    pub fn build(self) -> Function {
        Function {
            name: self.name,
            param_count: self.param_count,
            reg_count: self.next_reg.max(1),
            blocks: self.blocks,
        }
    }
}

/// Build a counted loop skeleton: `for i in 0..n { body(i) }`.
///
/// Calls `body(builder, body_block, i_reg)`; the body must not terminate
/// `body_block`. Returns `(loop_header, exit_block)`; the builder's insertion
/// should continue in `exit_block`. `before` must be an unterminated block —
/// this helper adds the branch into the loop.
///
/// # Example
/// ```
/// use cwsp_ir::prelude::*;
/// use cwsp_ir::builder::build_counted_loop;
///
/// let mut m = Module::new("loop");
/// let g = m.add_global("sum", 1);
/// let mut b = FunctionBuilder::new("main", 0);
/// let entry = b.entry();
/// let (_, exit) = build_counted_loop(&mut b, entry, Operand::imm(10), |b, bb, i| {
///     let old = b.load(bb, MemRef::global(g, 0));
///     let new = b.bin(bb, BinOp::Add, old.into(), i.into());
///     b.store(bb, new.into(), MemRef::global(g, 0));
/// });
/// b.push(exit, Inst::Halt);
/// let f = m.add_function(b.build());
/// m.set_entry(f);
/// let out = cwsp_ir::interp::run(&m, 10_000).unwrap();
/// assert_eq!(out.memory.load(m.global_addr(g)), 45);
/// ```
pub fn build_counted_loop(
    b: &mut FunctionBuilder,
    before: BlockId,
    n: Operand,
    body: impl FnOnce(&mut FunctionBuilder, BlockId, Reg),
) -> (BlockId, BlockId) {
    build_counted_loop_multi(b, before, n, |b, bb, i| {
        body(b, bb, i);
        bb
    })
}

/// Like [`build_counted_loop`], but the body may create internal control flow:
/// the closure receives the (unterminated) body entry block and must return
/// the (unterminated) block where the iteration ends; the helper appends the
/// branch to the loop latch there.
pub fn build_counted_loop_multi(
    b: &mut FunctionBuilder,
    before: BlockId,
    n: Operand,
    body: impl FnOnce(&mut FunctionBuilder, BlockId, Reg) -> BlockId,
) -> (BlockId, BlockId) {
    let header = b.block();
    let body_bb = b.block();
    let exit = b.block();

    let i = b.vreg();
    let i_next = b.vreg();
    b.push(
        before,
        Inst::Mov {
            dst: i_next,
            src: Operand::imm(0),
        },
    );
    b.push(before, Inst::Br { target: header });

    // Loop-carried updates live at the *top* of the header: `i` commits from
    // `i_next` before any body work, and the increment redefines `i_next`
    // right after its use. The region-formation pass places a boundary at the
    // header (loop header rule) and cuts the `i_next` use→def antidependence
    // inside it, so the *body* region never defines `i` — its checkpoint slot
    // stays stable, which is what lets the pruner rematerialize
    // address-computation chains from `slot_i` (§IV-C) without the
    // self-clobber hazard (DESIGN.md §3.1).
    let cond = b.vreg();
    b.push(
        header,
        Inst::Mov {
            dst: i,
            src: i_next.into(),
        },
    );
    b.push(
        header,
        Inst::Binary {
            op: BinOp::CmpLtU,
            dst: cond,
            lhs: i.into(),
            rhs: n,
        },
    );
    b.push(
        header,
        Inst::Binary {
            op: BinOp::Add,
            dst: i_next,
            lhs: i.into(),
            rhs: Operand::imm(1),
        },
    );
    b.push(
        header,
        Inst::CondBr {
            cond: cond.into(),
            if_true: body_bb,
            if_false: exit,
        },
    );

    let tail = body(b, body_bb, i);
    b.push(tail, Inst::Br { target: header });

    (header, exit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut b = FunctionBuilder::new("f", 2);
        assert_eq!(b.param(0), Reg(0));
        assert_eq!(b.param(1), Reg(1));
        let r = b.vreg();
        assert_eq!(r, Reg(2));
        let e = b.entry();
        let s = b.bin(e, BinOp::Add, b.param(0).into(), b.param(1).into());
        b.push(
            e,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let f = b.build();
        assert_eq!(f.param_count, 2);
        assert_eq!(f.reg_count, 4);
        assert!(f.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "parameter index")]
    fn param_out_of_range_panics() {
        let b = FunctionBuilder::new("f", 1);
        let _ = b.param(1);
    }

    #[test]
    fn counted_loop_structure() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let (header, exit) = build_counted_loop(&mut b, e, Operand::imm(3), |b, bb, i| {
            let _ = b.bin(bb, BinOp::Add, i.into(), Operand::imm(0));
        });
        b.push(exit, Inst::Halt);
        let f = b.build();
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        assert!(header.index() > 0 && exit.index() > header.index());
        // header ends in a conditional branch
        assert!(matches!(
            f.block(header).terminator(),
            Some(Inst::CondBr { .. })
        ));
    }

    #[test]
    fn call_reserves_ret_reg() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r = b.call(e, FuncId(0), vec![Operand::imm(1)], true);
        assert!(r.is_some());
        let none = b.call(e, FuncId(0), vec![], false);
        assert!(none.is_none());
        b.push(e, Inst::Halt);
        assert!(b.build().validate().is_ok());
    }
}
