//! Module call graph with strongly-connected components.
//!
//! The interprocedural passes (function summaries, the static race
//! detector) need two things from the call structure: a *bottom-up*
//! traversal order so callee summaries exist before their callers are
//! summarized, and cycle (recursion) detection so summary computation can
//! fall back to a conservative fixed point instead of recursing forever.
//! Both come from Tarjan's SCC algorithm: components are emitted in
//! reverse-topological (callee-first) order, and a component of size > 1 —
//! or a single function that calls itself — is a recursion cycle.

use cwsp_ir::inst::Inst;
use cwsp_ir::module::{FuncId, Module};
use std::collections::HashSet;

/// The call graph of one module.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// `callees[f]` — distinct functions `f` calls, in first-call order.
    callees: Vec<Vec<FuncId>>,
    /// `callers[f]` — distinct functions calling `f`.
    callers: Vec<Vec<FuncId>>,
    /// Strongly-connected components in bottom-up (callee-first) order.
    sccs: Vec<Vec<FuncId>>,
    /// Functions reachable from the module entry (empty when no entry).
    reachable: Vec<bool>,
    /// Whether the function participates in a call cycle (an SCC of size
    /// > 1, or a direct self-call).
    recursive: Vec<bool>,
}

impl CallGraph {
    /// Build the call graph of `module`.
    pub fn compute(module: &Module) -> Self {
        let n = module.function_count();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for (fid, f) in module.iter_functions() {
            let mut seen: HashSet<FuncId> = HashSet::new();
            for (_, block) in f.iter_blocks() {
                for inst in &block.insts {
                    if let Inst::Call { func, .. } = inst {
                        if func.index() < n && seen.insert(*func) {
                            callees[fid.index()].push(*func);
                            callers[func.index()].push(fid);
                        }
                    }
                }
            }
        }

        let sccs = tarjan_sccs(n, &callees);
        let mut recursive = vec![false; n];
        for scc in &sccs {
            if scc.len() > 1 {
                for &f in scc {
                    recursive[f.index()] = true;
                }
            } else if let Some(&f) = scc.first() {
                if callees[f.index()].contains(&f) {
                    recursive[f.index()] = true;
                }
            }
        }

        let mut reachable = vec![false; n];
        if let Some(entry) = module.entry() {
            let mut stack = vec![entry];
            reachable[entry.index()] = true;
            while let Some(f) = stack.pop() {
                for &c in &callees[f.index()] {
                    if !reachable[c.index()] {
                        reachable[c.index()] = true;
                        stack.push(c);
                    }
                }
            }
        }

        CallGraph {
            callees,
            callers,
            sccs,
            reachable,
            recursive,
        }
    }

    /// Distinct direct callees of `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Distinct direct callers of `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// Strongly-connected components in bottom-up (callee-first) order:
    /// when component `i` calls into component `j`, then `j < i`.
    pub fn sccs_bottom_up(&self) -> &[Vec<FuncId>] {
        &self.sccs
    }

    /// Whether `f` is reachable (through calls) from the module entry.
    pub fn is_reachable(&self, f: FuncId) -> bool {
        self.reachable.get(f.index()).copied().unwrap_or(false)
    }

    /// Whether `f` sits on a call cycle (including a direct self-call).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.recursive.get(f.index()).copied().unwrap_or(false)
    }
}

/// Tarjan's algorithm, iterative; components come out in
/// reverse-topological order (callees before callers).
fn tarjan_sccs(n: usize, callees: &[Vec<FuncId>]) -> Vec<Vec<FuncId>> {
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();

    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if let Some(w) = callees[v].get(*ci).map(|f| f.index()) {
                *ci += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(FuncId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_by_key(|f| f.index());
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::Inst;

    fn leaf(name: &str) -> cwsp_ir::function::Function {
        let mut b = FunctionBuilder::new(name, 0);
        let e = b.entry();
        b.push(e, Inst::Ret { val: None });
        b.build()
    }

    fn caller(name: &str, targets: &[FuncId]) -> cwsp_ir::function::Function {
        let mut b = FunctionBuilder::new(name, 0);
        let e = b.entry();
        for &t in targets {
            b.push(
                e,
                Inst::Call {
                    func: t,
                    args: vec![],
                    ret: None,
                    save_regs: vec![],
                },
            );
        }
        b.push(e, Inst::Ret { val: None });
        b.build()
    }

    #[test]
    fn chain_orders_bottom_up() {
        // main -> mid -> leaf
        let mut m = Module::new("t");
        let lf = m.add_function(leaf("leaf"));
        let mid = m.add_function(caller("mid", &[lf]));
        let main = m.add_function(caller("main", &[mid]));
        m.set_entry(main);
        let cg = CallGraph::compute(&m);
        assert_eq!(cg.callees(main), &[mid]);
        assert_eq!(cg.callers(lf), &[mid]);
        let order = cg.sccs_bottom_up();
        let pos = |f: FuncId| order.iter().position(|c| c.contains(&f)).unwrap();
        assert!(pos(lf) < pos(mid) && pos(mid) < pos(main));
        assert!(cg.is_reachable(lf) && cg.is_reachable(main));
        assert!(!cg.is_recursive(main));
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        // a <-> b, plus c calling itself, plus dead d.
        let mut m = Module::new("t");
        // Forward references: FuncIds are assigned in insertion order.
        let a_id = FuncId(0);
        let b_id = FuncId(1);
        m.add_function(caller("a", &[b_id]));
        m.add_function(caller("b", &[a_id]));
        let c = m.add_function(caller("c", &[FuncId(2)]));
        let d = m.add_function(leaf("d"));
        m.set_entry(a_id);
        let cg = CallGraph::compute(&m);
        assert!(cg.is_recursive(a_id) && cg.is_recursive(b_id));
        assert!(cg.is_recursive(c), "direct self-call is recursion");
        assert!(!cg.is_recursive(d));
        assert!(cg.is_reachable(b_id));
        assert!(!cg.is_reachable(c) && !cg.is_reachable(d));
        let scc_ab = cg
            .sccs_bottom_up()
            .iter()
            .find(|s| s.contains(&a_id))
            .unwrap();
        assert_eq!(scc_ab.len(), 2);
        assert!(scc_ab.contains(&b_id));
    }

    #[test]
    fn empty_module_yields_empty_graph() {
        let m = Module::new("t");
        let cg = CallGraph::compute(&m);
        assert!(cg.sccs_bottom_up().is_empty());
    }

    #[test]
    fn self_recursive_function_is_a_singleton_recursive_scc() {
        let mut m = Module::new("t");
        let f = m.add_function(caller("loops", &[FuncId(0)]));
        m.set_entry(f);
        let cg = CallGraph::compute(&m);
        assert!(cg.is_recursive(f));
        let scc = cg.sccs_bottom_up().iter().find(|s| s.contains(&f)).unwrap();
        assert_eq!(scc.len(), 1, "self-recursion stays a singleton component");
        assert_eq!(cg.callees(f), &[f], "self-edge recorded once");
        assert_eq!(cg.callers(f), &[f]);
    }

    #[test]
    fn mutual_recursion_scc_orders_below_its_callers() {
        // main -> a <-> b -> leaf: the {a, b} component must sit strictly
        // between leaf and main in bottom-up order.
        let mut m = Module::new("t");
        let lf = m.add_function(leaf("leaf"));
        let a_id = FuncId(1);
        let b_id = FuncId(2);
        m.add_function(caller("a", &[b_id]));
        m.add_function(caller("b", &[a_id, lf]));
        let main = m.add_function(caller("main", &[a_id]));
        m.set_entry(main);
        let cg = CallGraph::compute(&m);
        let order = cg.sccs_bottom_up();
        let pos = |f: FuncId| order.iter().position(|c| c.contains(&f)).unwrap();
        assert_eq!(pos(a_id), pos(b_id), "one component");
        assert!(pos(lf) < pos(a_id), "callee component first");
        assert!(pos(a_id) < pos(main), "caller component last");
        assert!(cg.is_recursive(a_id) && cg.is_recursive(b_id));
        assert!(!cg.is_recursive(main) && !cg.is_recursive(lf));
    }

    #[test]
    fn deleted_function_leaves_no_stale_edges_between_runs() {
        // The call graph is a pure snapshot: rebuilding it for a module
        // without the helper must not retain the old edges (the analysis
        // cache layered on top handles its own stale-summary eviction —
        // see `incr::tests::deleted_function_is_evicted_after_grace_generations`).
        let mut with = Module::new("t");
        let h = with.add_function(leaf("helper"));
        let main = with.add_function(caller("main", &[h]));
        with.set_entry(main);
        let cg1 = CallGraph::compute(&with);
        assert_eq!(cg1.callees(main), &[h]);

        let mut without = Module::new("t");
        let main2 = without.add_function(caller("main", &[]));
        without.set_entry(main2);
        let cg2 = CallGraph::compute(&without);
        assert!(cg2.callees(main2).is_empty());
        assert_eq!(cg2.sccs_bottom_up().len(), 1);
        assert!(!cg2.is_reachable(FuncId(1)), "out-of-range id is dead");
        assert!(!cg2.is_recursive(FuncId(1)));
    }
}
