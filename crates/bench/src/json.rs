//! A minimal JSON reader/writer for the harness caches.
//!
//! The repository builds with zero external crates, so the engine's on-disk
//! result cache and `results/BENCH_harness.json` use this hand-rolled subset
//! instead of serde: objects, arrays, strings, bools, null, and numbers.
//! Unsigned integers round-trip exactly (simulation counters exceed the f64
//! mantissa only past 2^53, but we keep them precise anyway); floats use
//! shortest-exact `{:?}` formatting.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for simulator counters).
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace an object field (no-op on non-objects).
    pub fn set(&mut self, key: &str, val: Value) {
        if let Value::Obj(fields) = self {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = val;
            } else {
                fields.push((key.to_string(), val));
            }
        }
    }

    /// The value as a u64 (integers only; floats are counters that were
    /// never written by us, so reject them).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an f64 (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
///
/// # Errors
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("version".into(), Value::Int(1)),
            (
                "figures".into(),
                Value::Obj(vec![(
                    "fig13".into(),
                    Value::Obj(vec![
                        ("wall_ms".into(), Value::Int(1234)),
                        ("hit_rate".into(), Value::Float(0.5)),
                        ("label".into(), Value::Str("a \"quoted\"\nname".into())),
                        (
                            "hist".into(),
                            Value::Arr(vec![Value::Int(1), Value::Int(2)]),
                        ),
                        ("none".into(), Value::Null),
                        ("ok".into(), Value::Bool(true)),
                    ]),
                )]),
            ),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let n = (1u64 << 53) + 1; // not representable as f64
        let v = Value::Arr(vec![Value::Int(n), Value::Int(u64::MAX)]);
        let back = parse(&v.to_pretty()).unwrap();
        assert_eq!(back.as_arr().unwrap()[0].as_u64(), Some(n));
        assert_eq!(back.as_arr().unwrap()[1].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut v = Value::Obj(vec![]);
        v.set("a", Value::Int(1));
        v.set("a", Value::Int(2));
        v.set("b", Value::Int(3));
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("b").unwrap().as_u64(), Some(3));
    }
}
