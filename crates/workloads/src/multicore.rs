//! Data-race-free multicore workloads (§VIII "Recovery for Multi-Cores").
//!
//! Each core runs `main(tid)`: it works on its own partition of shared data
//! and synchronizes only through atomics. For DRF programs the paper argues
//! each thread can recover *independently* — these workloads are built so
//! their final data is interleaving-independent, making that property
//! checkable: partitions are disjoint, and cross-thread communication is
//! commutative (atomic fetch-add).

use crate::kernels::sync_point;
use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
use cwsp_ir::module::Module;
use cwsp_ir::types::Word;

/// Words per per-core partition in [`drf_partition_sum`].
pub const PARTITION_WORDS: u64 = 64;

/// Build a DRF program for up to `max_cores` threads:
///
/// * thread `tid` fills `data[tid*P .. (tid+1)*P]` with `tid*1000 + i` and
///   folds a checksum into `sums[tid]`;
/// * it atomically bumps a shared `done` counter twice (start and finish) —
///   the synchronization points that §VIII's recovery argument hinges on.
///
/// Returns `(module, data_addr, sums_addr, counter_addr)`.
pub fn drf_partition_sum(max_cores: u64) -> (Module, Word, Word, Word) {
    let mut m = Module::new("drf-partition-sum");
    let data = m.add_global("data", PARTITION_WORDS * max_cores);
    let sums = m.add_global("sums", max_cores);
    let counter = m.add_global("done", 1);
    let data_addr = m.global_addr(data);
    let sums_addr = m.global_addr(sums);
    let counter_addr = m.global_addr(counter);

    let mut b = FunctionBuilder::new("main", 1);
    let e = b.entry();
    let tid = b.param(0);
    sync_point(&mut b, e, counter_addr);
    let base_off = b.bin(e, BinOp::Mul, tid.into(), Operand::imm(PARTITION_WORDS * 8));
    let part = b.bin(e, BinOp::Add, base_off.into(), Operand::imm(data_addr));
    let salt = b.bin(e, BinOp::Mul, tid.into(), Operand::imm(1000));
    let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(PARTITION_WORDS), |b, bb, i| {
        let off = b.bin(bb, BinOp::Shl, i.into(), Operand::imm(3));
        let addr = b.bin(bb, BinOp::Add, part.into(), off.into());
        let v = b.bin(bb, BinOp::Add, salt.into(), i.into());
        b.store(bb, v.into(), MemRef::reg(addr, 0));
        // fold into the per-thread checksum (private word — still DRF)
        let soff = b.bin(bb, BinOp::Shl, tid.into(), Operand::imm(3));
        let saddr = b.bin(bb, BinOp::Add, soff.into(), Operand::imm(sums_addr));
        let cur = b.load(bb, MemRef::reg(saddr, 0));
        let nxt = b.bin(bb, BinOp::Add, cur.into(), v.into());
        b.store(bb, nxt.into(), MemRef::reg(saddr, 0));
    });
    sync_point(&mut b, exit, counter_addr);
    let soff = b.bin(exit, BinOp::Shl, tid.into(), Operand::imm(3));
    let saddr = b.bin(exit, BinOp::Add, soff.into(), Operand::imm(sums_addr));
    let sum = b.load(exit, MemRef::reg(saddr, 0));
    b.push(
        exit,
        Inst::Ret {
            val: Some(sum.into()),
        },
    );
    let main = m.add_function(b.build());
    m.set_entry(main);
    (m, data_addr, sums_addr, counter_addr)
}

/// The expected checksum for thread `tid`.
pub fn expected_sum(tid: u64) -> Word {
    (0..PARTITION_WORDS).map(|i| tid * 1000 + i).sum()
}

/// Deposits per thread in [`spinlock_ledger`].
pub const DEPOSITS: u64 = 24;

/// Build a CAS-spinlock-protected shared ledger: every thread performs
/// [`DEPOSITS`] critical sections, each adding `tid + 1` to a shared balance
/// and bumping a shared op counter — classic lock-based DRF sharing where the
/// final state is interleaving-independent.
///
/// Returns `(module, balance_addr, ops_addr)`.
pub fn spinlock_ledger(max_cores: u64) -> (Module, Word, Word) {
    let mut m = Module::new("spinlock-ledger");
    let lock = m.add_global("lock", 1);
    let balance = m.add_global("balance", 1);
    let ops = m.add_global("ops", 1);
    let lock_addr = m.global_addr(lock);
    let balance_addr = m.global_addr(balance);
    let ops_addr = m.global_addr(ops);
    let _ = max_cores;

    let mut b = FunctionBuilder::new("main", 1);
    let e = b.entry();
    let tid = b.param(0);
    let amount = b.bin(e, BinOp::Add, tid.into(), Operand::imm(1));
    let (_, exit) = cwsp_ir::builder::build_counted_loop_multi(
        &mut b,
        e,
        Operand::imm(DEPOSITS),
        |b, bb, _i| {
            // spin: while !CAS(lock, 0 -> 1) {}
            let spin = b.block();
            let crit = b.block();
            b.push(bb, Inst::Br { target: spin });
            let got = b.vreg();
            b.push(
                spin,
                Inst::AtomicRmw {
                    op: cwsp_ir::inst::AtomicOp::Cas,
                    dst: got,
                    addr: MemRef::abs(lock_addr),
                    src: Operand::imm(1),
                    expected: Operand::imm(0),
                },
            );
            // CAS returns the OLD value: 0 means we own the lock.
            b.push(
                spin,
                Inst::CondBr {
                    cond: got.into(),
                    if_true: spin,
                    if_false: crit,
                },
            );
            // critical section: balance += amount; ops += 1
            let cur = b.load(crit, MemRef::abs(balance_addr));
            let nb = b.bin(crit, BinOp::Add, cur.into(), amount.into());
            b.store(crit, nb.into(), MemRef::abs(balance_addr));
            let oc = b.load(crit, MemRef::abs(ops_addr));
            let no = b.bin(crit, BinOp::Add, oc.into(), Operand::imm(1));
            b.store(crit, no.into(), MemRef::abs(ops_addr));
            // unlock: release store via atomic swap back to 0
            let rel = b.vreg();
            b.push(
                crit,
                Inst::AtomicRmw {
                    op: cwsp_ir::inst::AtomicOp::Swap,
                    dst: rel,
                    addr: MemRef::abs(lock_addr),
                    src: Operand::imm(0),
                    expected: Operand::imm(0),
                },
            );
            crit
        },
    );
    b.push(
        exit,
        Inst::Ret {
            val: Some(amount.into()),
        },
    );
    let main = m.add_function(b.build());
    m.set_entry(main);
    (m, balance_addr, ops_addr)
}

/// The expected final balance for `ncores` threads.
pub fn expected_balance(ncores: u64) -> Word {
    (0..ncores).map(|tid| (tid + 1) * DEPOSITS).sum()
}

/// Build a message-passing ring over `ncores` threads: thread `tid` writes
/// `mail[tid]`, *releases* it by atomically setting `flags[tid]`, then
/// acquire-spins on `flags[(tid+1) % n]` and copies its neighbour's mail
/// into `acc[tid]`. The only cross-thread data flow is through the
/// release/acquire pair on the flag word — the canonical pattern the static
/// detector's happens-before layer must prove ordered (dropping the release
/// atomic is the dropped-fence mutation of the differential suite).
///
/// The module must run with exactly `ncores` cores: each thread blocks on
/// its ring successor.
///
/// Returns `(module, mail_addr, acc_addr)`.
pub fn message_ring(ncores: u64) -> (Module, Word, Word) {
    assert!(ncores >= 1);
    let mut m = Module::new("message-ring");
    let mail = m.add_global("mail", ncores);
    let flags = m.add_global("flags", ncores);
    let acc = m.add_global("acc", ncores);
    let mail_addr = m.global_addr(mail);
    let flags_addr = m.global_addr(flags);
    let acc_addr = m.global_addr(acc);

    let mut b = FunctionBuilder::new("main", 1);
    let e = b.entry();
    let spin = b.block();
    let read = b.block();
    let tid = b.param(0);

    // mail[tid] = tid * 37 + 11
    let v0 = b.bin(e, BinOp::Mul, tid.into(), Operand::imm(37));
    let v = b.bin(e, BinOp::Add, v0.into(), Operand::imm(11));
    let moff = b.bin(e, BinOp::Shl, tid.into(), Operand::imm(3));
    let maddr = b.bin(e, BinOp::Add, moff.into(), Operand::imm(mail_addr));
    b.store(e, v.into(), MemRef::reg(maddr, 0));
    // release: flags[tid] = 1, atomically (the publication point)
    let faddr = b.bin(e, BinOp::Add, moff.into(), Operand::imm(flags_addr));
    let rel = b.vreg();
    b.push(
        e,
        Inst::AtomicRmw {
            op: cwsp_ir::inst::AtomicOp::Swap,
            dst: rel,
            addr: MemRef::reg(faddr, 0),
            src: Operand::imm(1),
            expected: Operand::imm(0),
        },
    );
    // next = (tid + 1) % n; acquire-spin on flags[next]
    let t1 = b.bin(e, BinOp::Add, tid.into(), Operand::imm(1));
    let next = b.bin(e, BinOp::RemU, t1.into(), Operand::imm(ncores));
    let noff = b.bin(e, BinOp::Shl, next.into(), Operand::imm(3));
    let nfaddr = b.bin(e, BinOp::Add, noff.into(), Operand::imm(flags_addr));
    b.push(e, Inst::Br { target: spin });
    let got = b.vreg();
    b.push(
        spin,
        Inst::AtomicRmw {
            op: cwsp_ir::inst::AtomicOp::FetchAdd,
            dst: got,
            addr: MemRef::reg(nfaddr, 0),
            src: Operand::imm(0),
            expected: Operand::imm(0),
        },
    );
    b.push(
        spin,
        Inst::CondBr {
            cond: got.into(),
            if_true: read,
            if_false: spin,
        },
    );
    // acc[tid] = mail[next]
    let nmaddr = b.bin(read, BinOp::Add, noff.into(), Operand::imm(mail_addr));
    let nv = b.load(read, MemRef::reg(nmaddr, 0));
    let aaddr = b.bin(read, BinOp::Add, moff.into(), Operand::imm(acc_addr));
    b.store(read, nv.into(), MemRef::reg(aaddr, 0));
    b.push(
        read,
        Inst::Ret {
            val: Some(nv.into()),
        },
    );
    let main = m.add_function(b.build());
    m.set_entry(main);
    (m, mail_addr, acc_addr)
}

/// The value thread `tid` receives from its ring successor in
/// [`message_ring`].
pub fn expected_message(tid: u64, ncores: u64) -> Word {
    ((tid + 1) % ncores) * 37 + 11
}

/// Every multi-core workload, instantiated for `ncores` threads, as
/// `(name, module)` pairs — the enumeration behind `cwsp-lint --multicore`.
pub fn all(ncores: u64) -> Vec<(&'static str, Module)> {
    vec![
        ("drf-partition-sum", drf_partition_sum(ncores).0),
        ("spinlock-ledger", spinlock_ledger(ncores).0),
        ("message-ring", message_ring(ncores).0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_semantics() {
        let (m, data, sums, counter) = drf_partition_sum(4);
        let out = cwsp_ir::interp::run(&m, 1_000_000).unwrap();
        // tid = 0 on the plain interpreter.
        assert_eq!(out.return_value, Some(expected_sum(0)));
        assert_eq!(out.memory.load(data + 8), 1);
        assert_eq!(out.memory.load(sums), expected_sum(0));
        assert_eq!(out.memory.load(counter), 2, "two sync points");
    }

    #[test]
    fn spinlock_ledger_balances_on_multicore_machine() {
        use cwsp_sim::config::SimConfig;
        use cwsp_sim::machine::Machine;
        use cwsp_sim::scheme::Scheme;
        let ncores = 3;
        let (m, balance, ops) = spinlock_ledger(ncores);
        let cfg = SimConfig {
            cores: ncores as usize,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&m, &cfg, Scheme::Baseline);
        machine.run(u64::MAX, None).unwrap();
        let mem = machine.arch_mem();
        assert_eq!(mem.load(balance), expected_balance(ncores));
        assert_eq!(mem.load(ops), ncores * DEPOSITS);
    }

    #[test]
    fn multicore_machine_fills_all_partitions() {
        use cwsp_sim::config::SimConfig;
        use cwsp_sim::machine::Machine;
        use cwsp_sim::scheme::Scheme;
        let (m, data, sums, counter) = drf_partition_sum(4);
        let cfg = SimConfig {
            cores: 4,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&m, &cfg, Scheme::Baseline);
        machine.run(u64::MAX, None).unwrap();
        let mem = machine.arch_mem();
        for tid in 0..4u64 {
            assert_eq!(
                mem.load(sums + tid * 8),
                expected_sum(tid),
                "partition checksum for tid {tid}"
            );
            assert_eq!(mem.load(data + tid * PARTITION_WORDS * 8), tid * 1000);
        }
        assert_eq!(mem.load(counter), 8, "4 threads x 2 sync points");
    }

    #[test]
    fn message_ring_passes_mail_around() {
        use cwsp_sim::config::SimConfig;
        use cwsp_sim::machine::Machine;
        use cwsp_sim::scheme::Scheme;
        let ncores = 3;
        let (m, mail, acc) = message_ring(ncores);
        let cfg = SimConfig {
            cores: ncores as usize,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&m, &cfg, Scheme::Baseline);
        machine.run(u64::MAX, None).unwrap();
        let mem = machine.arch_mem();
        for tid in 0..ncores {
            assert_eq!(mem.load(mail + tid * 8), tid * 37 + 11);
            assert_eq!(
                mem.load(acc + tid * 8),
                expected_message(tid, ncores),
                "acc for tid {tid}"
            );
        }
    }

    #[test]
    fn message_ring_single_core_self_handoff() {
        // n = 1: the thread releases its own flag, then acquires it — the
        // plain interpreter (tid 0) must terminate and read its own mail.
        let (m, _, acc) = message_ring(1);
        let out = cwsp_ir::interp::run(&m, 100_000).unwrap();
        assert_eq!(out.return_value, Some(11));
        assert_eq!(out.memory.load(acc), 11);
    }
}
