//! LSM-style result spine: immutable sorted batches + a merging spine.
//!
//! Experiment results commit as **immutable sorted batch files**; a
//! **manifest** describes the live set, and merging compacts a level into
//! the next once it collects [`COMPACT_FANIN`] batches. Every version of
//! every key is retained through compaction, so the spine is a *time-travel*
//! store: a cursor can replay the state as of any committed batch sequence
//! number — the perf trajectory of the whole harness, queryable
//! incrementally instead of rescanned from flat JSON.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/MANIFEST.json          human/CI-readable description of the live set
//! <dir>/b<seq>-L<level>-<pid>.batch   immutable sorted batch
//! ```
//!
//! Batch files are written whole to a temp name and renamed, so a reader
//! never observes a torn batch. The directory scan — not the manifest — is
//! the source of truth on open: concurrently-running processes append
//! batches under unique names, and compaction writes its merged output
//! *before* unlinking the inputs, so a concurrent scan sees at worst
//! duplicate versions (harmless: lookups take the max sequence).
//!
//! ## Batch format (little-endian)
//!
//! ```text
//! magic "CWSPSPN1" | level u32 | reserved u32 | count u64
//! then per entry: kind u64 | a u64 | b u64 | seq u64 | len u64 | value bytes
//! ```

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CWSPSPN1";
/// Batches per level before that level is merged into the next.
pub const COMPACT_FANIN: usize = 4;

/// A spine key: a kind tag plus a 128-bit fingerprint.
///
/// Kinds keep independent keyspaces from colliding: `0` = simulation result
/// keyed by (module fingerprint, machine fingerprint); `1` = harness figure
/// entry keyed by (name hash, 0); `2` = fleet telemetry snapshot keyed by
/// (source-label hash, 0) — every commit is a new version, so `history()`
/// yields a time-travelable metrics timeline. The fuzz farm owns three
/// more: `3` = per-shard progress keyed by (run fingerprint, shard index) —
/// with shard `u64::MAX` reserved for the run manifest; `4` = corpus entry
/// keyed by (run fingerprint, seed); `5` = coverage-bucket snapshot keyed
/// by (run fingerprint, shard index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// Keyspace tag (see type docs).
    pub kind: u64,
    /// First fingerprint word.
    pub a: u64,
    /// Second fingerprint word.
    pub b: u64,
}

impl Key {
    /// A simulation-result key.
    pub fn sim(module_fp: u64, machine_fp: u64) -> Key {
        Key {
            kind: 0,
            a: module_fp,
            b: machine_fp,
        }
    }

    /// A harness figure-entry key.
    pub fn figure(name_hash: u64) -> Key {
        Key {
            kind: 1,
            a: name_hash,
            b: 0,
        }
    }

    /// A fleet telemetry-snapshot key. Snapshots are committed repeatedly
    /// under the same key; the spine's versioning keeps the full history.
    pub fn telemetry(source_hash: u64) -> Key {
        Key {
            kind: 2,
            a: source_hash,
            b: 0,
        }
    }

    /// A fuzz-farm per-shard progress record, committed atomically in the
    /// same batch as the corpus entries it covers — the resume cursor can
    /// therefore never run ahead of the corpus.
    pub fn fuzz_progress(run_fp: u64, shard: u64) -> Key {
        Key {
            kind: 3,
            a: run_fp,
            b: shard,
        }
    }

    /// The fuzz run's manifest (configuration fingerprint + parameters),
    /// written once at run start; `--resume` refuses mismatched configs.
    pub fn fuzz_manifest(run_fp: u64) -> Key {
        Key {
            kind: 3,
            a: run_fp,
            b: u64::MAX,
        }
    }

    /// One fuzz corpus entry, keyed by seed: re-processing a seed after a
    /// crash overwrites the same key, so resume is duplicate-free by
    /// construction.
    pub fn fuzz_corpus(run_fp: u64, seed: u64) -> Key {
        Key {
            kind: 4,
            a: run_fp,
            b: seed,
        }
    }

    /// A per-shard coverage-bucket snapshot (op-mix, CFG-shape,
    /// region-shape counts), committed alongside shard progress.
    pub fn fuzz_coverage(run_fp: u64, shard: u64) -> Key {
        Key {
            kind: 5,
            a: run_fp,
            b: shard,
        }
    }
}

/// One versioned entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    key: Key,
    seq: u64,
    value: Vec<u8>,
}

/// An immutable sorted batch, resident in memory with its backing file.
#[derive(Debug)]
pub struct Batch {
    /// Backing file name (within the spine directory).
    pub file: String,
    /// Compaction level (0 = freshly committed).
    pub level: u32,
    /// Smallest sequence number in the batch.
    pub min_seq: u64,
    /// Largest sequence number in the batch.
    pub max_seq: u64,
    entries: Vec<Entry>, // sorted by (key, seq)
}

impl Batch {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty (never true for committed batches).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The merging spine over a directory of immutable batches.
pub struct Spine {
    dir: PathBuf,
    batches: Vec<Batch>,
    next_seq: u64,
    migrated: bool,
    compactions: u64,
}

impl Spine {
    /// Open (or create) the spine at `dir`. Scans the directory for batch
    /// files; the manifest contributes only the `migrated` marker.
    ///
    /// # Errors
    /// Propagates directory-creation failures. Unreadable or torn batch
    /// files are skipped, not fatal.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Spine> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut batches = Vec::new();
        let mut names: Vec<String> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".batch"))
            .collect();
        names.sort(); // deterministic order regardless of readdir order
        for name in names {
            if let Ok(b) = read_batch(&dir.join(&name), &name) {
                batches.push(b);
            }
        }
        let next_seq = batches.iter().map(|b| b.max_seq).max().unwrap_or(0) + 1;
        let migrated = fs::read_to_string(dir.join("MANIFEST.json"))
            .map(|t| t.contains("\"migrated\": true"))
            .unwrap_or(false);
        Ok(Spine {
            dir,
            batches,
            next_seq,
            migrated,
            compactions: 0,
        })
    }

    /// Directory this spine lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the one-shot flat-JSON migration has already run here.
    pub fn migrated(&self) -> bool {
        self.migrated
    }

    /// Record that the one-shot flat-JSON migration ran.
    pub fn set_migrated(&mut self) {
        self.migrated = true;
        self.write_manifest();
    }

    /// Sequence number of the most recent committed batch (0 = empty).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Live batch set (for tests and the manifest).
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Total entry versions across all live batches.
    pub fn entry_count(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Number of level merges performed by this handle.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Commit `items` as one immutable level-0 batch; all entries share the
    /// returned sequence number. Duplicate keys keep the last value. An
    /// empty commit is a no-op returning [`Spine::last_seq`].
    ///
    /// # Errors
    /// Propagates batch-file write failures (the spine is unchanged).
    pub fn commit(&mut self, items: Vec<(Key, Vec<u8>)>) -> io::Result<u64> {
        if items.is_empty() {
            return Ok(self.last_seq());
        }
        let seq = self.next_seq;
        let mut entries: Vec<Entry> = items
            .into_iter()
            .map(|(key, value)| Entry { key, seq, value })
            .collect();
        entries.sort_by_key(|x| x.key);
        entries.dedup_by(|later, earlier| {
            // Vec::dedup keeps the *first* of a run; we want the last value
            // for a duplicated key, so copy it forward before dropping.
            if later.key == earlier.key {
                std::mem::swap(&mut earlier.value, &mut later.value);
                true
            } else {
                false
            }
        });
        let batch = self.write_batch(entries, 0, seq, seq)?;
        self.batches.push(batch);
        self.next_seq = seq + 1;
        self.maybe_compact();
        self.write_manifest();
        Ok(seq)
    }

    /// Latest value for `key`.
    pub fn get(&self, key: Key) -> Option<&[u8]> {
        self.get_as_of(key, u64::MAX)
    }

    /// Value of `key` as of batch `seq` (time travel): the newest version
    /// with sequence ≤ `seq`, or `None` if the key did not exist yet.
    pub fn get_as_of(&self, key: Key, seq: u64) -> Option<&[u8]> {
        let mut best: Option<(u64, &[u8])> = None;
        for b in &self.batches {
            if b.min_seq > seq {
                continue;
            }
            let lo = b.entries.partition_point(|e| e.key < key);
            for e in b.entries[lo..].iter().take_while(|e| e.key == key) {
                if e.seq <= seq && best.map(|(s, _)| e.seq >= s).unwrap_or(true) {
                    best = Some((e.seq, &e.value));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    /// Every retained version of `key`, oldest first: the key's trajectory.
    pub fn history(&self, key: Key) -> Vec<(u64, &[u8])> {
        let mut out: Vec<(u64, &[u8])> = Vec::new();
        for b in &self.batches {
            let lo = b.entries.partition_point(|e| e.key < key);
            for e in b.entries[lo..].iter().take_while(|e| e.key == key) {
                out.push((e.seq, &e.value));
            }
        }
        out.sort_by_key(|(s, _)| *s);
        out
    }

    /// Cursor over all keys (newest version ≤ `as_of` each; `None` = now),
    /// in key order.
    pub fn cursor(&self, as_of: Option<u64>) -> Cursor<'_> {
        self.cursor_range(
            Key {
                kind: 0,
                a: 0,
                b: 0,
            },
            Key {
                kind: u64::MAX,
                a: u64::MAX,
                b: u64::MAX,
            },
            as_of,
        )
    }

    /// Cursor over keys in `lo..=hi` as of `as_of` (`None` = now).
    pub fn cursor_range(&self, lo: Key, hi: Key, as_of: Option<u64>) -> Cursor<'_> {
        let seq = as_of.unwrap_or(u64::MAX);
        let mut newest: BTreeMap<Key, (u64, &[u8])> = BTreeMap::new();
        for b in &self.batches {
            if b.min_seq > seq {
                continue;
            }
            let start = b.entries.partition_point(|e| e.key < lo);
            for e in b.entries[start..].iter().take_while(|e| e.key <= hi) {
                if e.seq > seq {
                    continue;
                }
                match newest.get(&e.key) {
                    Some(&(s, _)) if s >= e.seq => {}
                    _ => {
                        newest.insert(e.key, (e.seq, &e.value));
                    }
                }
            }
        }
        Cursor {
            items: newest
                .into_iter()
                .map(|(k, (s, v))| (k, s, v))
                .collect::<Vec<_>>()
                .into_iter(),
        }
    }

    /// Merge level `L` into `L+1` whenever a level holds ≥ [`COMPACT_FANIN`]
    /// batches. All versions are retained (time travel survives merges).
    fn maybe_compact(&mut self) {
        loop {
            let Some(level) = (0..=self.max_level())
                .find(|&l| self.batches.iter().filter(|b| b.level == l).count() >= COMPACT_FANIN)
            else {
                return;
            };
            let (merge, keep): (Vec<Batch>, Vec<Batch>) = std::mem::take(&mut self.batches)
                .into_iter()
                .partition(|b| b.level == level);
            self.batches = keep;
            let mut entries: Vec<Entry> = Vec::with_capacity(merge.iter().map(Batch::len).sum());
            let (mut min_seq, mut max_seq) = (u64::MAX, 0);
            for b in &merge {
                min_seq = min_seq.min(b.min_seq);
                max_seq = max_seq.max(b.max_seq);
                entries.extend(b.entries.iter().cloned());
            }
            entries.sort_by_key(|x| (x.key, x.seq));
            match self.write_batch(entries, level + 1, min_seq, max_seq) {
                Ok(merged) => {
                    // Output is durable; now the inputs can go.
                    for b in &merge {
                        let _ = fs::remove_file(self.dir.join(&b.file));
                    }
                    self.batches.push(merged);
                    self.compactions += 1;
                }
                Err(_) => {
                    // Merge failed (disk full?): keep the inputs live.
                    self.batches.extend(merge);
                    return;
                }
            }
        }
    }

    fn max_level(&self) -> u32 {
        self.batches.iter().map(|b| b.level).max().unwrap_or(0)
    }

    fn write_batch(
        &self,
        entries: Vec<Entry>,
        level: u32,
        min_seq: u64,
        max_seq: u64,
    ) -> io::Result<Batch> {
        let file = format!("b{max_seq:016}-L{level}-{}.batch", std::process::id());
        let path = self.dir.join(&file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        {
            let mut w = io::BufWriter::new(File::create(&tmp)?);
            w.write_all(MAGIC)?;
            w.write_all(&level.to_le_bytes())?;
            w.write_all(&0u32.to_le_bytes())?;
            w.write_all(&(entries.len() as u64).to_le_bytes())?;
            for e in &entries {
                for v in [e.key.kind, e.key.a, e.key.b, e.seq, e.value.len() as u64] {
                    w.write_all(&v.to_le_bytes())?;
                }
                w.write_all(&e.value)?;
            }
            w.flush()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(Batch {
            file,
            level,
            min_seq,
            max_seq,
            entries,
        })
    }

    /// Rewrite `MANIFEST.json` from the in-memory batch set (atomic rename).
    fn write_manifest(&self) {
        let mut s = String::new();
        s.push_str("{\n \"version\": 1,\n");
        s.push_str(&format!(" \"migrated\": {},\n", self.migrated));
        s.push_str(&format!(" \"last_seq\": {},\n", self.last_seq()));
        s.push_str(" \"batches\": [\n");
        let mut sorted: Vec<&Batch> = self.batches.iter().collect();
        sorted.sort_by(|x, y| x.file.cmp(&y.file));
        for (i, b) in sorted.iter().enumerate() {
            s.push_str(&format!(
                "  {{\"file\": \"{}\", \"level\": {}, \"entries\": {}, \"min_seq\": {}, \"max_seq\": {}}}{}\n",
                b.file,
                b.level,
                b.len(),
                b.min_seq,
                b.max_seq,
                if i + 1 < sorted.len() { "," } else { "" }
            ));
        }
        s.push_str(" ]\n}\n");
        let path = self.dir.join("MANIFEST.json");
        let tmp = self
            .dir
            .join(format!("MANIFEST.json.tmp.{}", std::process::id()));
        if fs::write(&tmp, s).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }
}

/// An in-order cursor over spine entries (see [`Spine::cursor`]).
pub struct Cursor<'a> {
    items: std::vec::IntoIter<(Key, u64, &'a [u8])>,
}

impl<'a> Iterator for Cursor<'a> {
    type Item = (Key, u64, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        self.items.next()
    }
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_batch(path: &Path, name: &str) -> io::Result<Batch> {
    let mut r = io::BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut lvl = [0u8; 4];
    r.read_exact(&mut lvl)?;
    let level = u32::from_le_bytes(lvl);
    r.read_exact(&mut lvl)?; // reserved
    let count = read_u64(&mut r)?;
    if count > 1 << 32 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "absurd count"));
    }
    let mut entries = Vec::with_capacity(count as usize);
    let (mut min_seq, mut max_seq) = (u64::MAX, 0);
    for _ in 0..count {
        let kind = read_u64(&mut r)?;
        let a = read_u64(&mut r)?;
        let b = read_u64(&mut r)?;
        let seq = read_u64(&mut r)?;
        let len = read_u64(&mut r)?;
        if len > 1 << 32 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "absurd len"));
        }
        let mut value = vec![0u8; len as usize];
        r.read_exact(&mut value)?;
        min_seq = min_seq.min(seq);
        max_seq = max_seq.max(seq);
        entries.push(Entry {
            key: Key { kind, a, b },
            seq,
            value,
        });
    }
    if entries.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty batch"));
    }
    Ok(Batch {
        file: name.to_string(),
        level,
        min_seq,
        max_seq,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cwsp-spine-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn k(a: u64) -> Key {
        Key::sim(a, a * 7)
    }

    #[test]
    fn fuzz_keyspaces_are_disjoint() {
        // Same fingerprint words, five different keyspaces: all distinct,
        // and a cursor_range over one kind never leaks into another.
        let keys = [
            Key::sim(9, 9),
            Key::figure(9),
            Key::telemetry(9),
            Key::fuzz_progress(9, 9),
            Key::fuzz_corpus(9, 9),
            Key::fuzz_coverage(9, 9),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Key::fuzz_manifest(9).kind, Key::fuzz_progress(9, 0).kind);
        assert_eq!(Key::fuzz_manifest(9).b, u64::MAX);

        let dir = tmpdir("fuzzkeys");
        let mut s = Spine::open(&dir).unwrap();
        s.commit(vec![
            (Key::fuzz_corpus(1, 5), b"c5".to_vec()),
            (Key::fuzz_corpus(1, 6), b"c6".to_vec()),
            (Key::fuzz_corpus(2, 5), b"other-run".to_vec()),
            (Key::fuzz_progress(1, 0), b"p".to_vec()),
            (Key::fuzz_coverage(1, 0), b"cov".to_vec()),
        ])
        .unwrap();
        let run1: Vec<Key> = s
            .cursor_range(Key::fuzz_corpus(1, 0), Key::fuzz_corpus(1, u64::MAX), None)
            .map(|(k, _, _)| k)
            .collect();
        assert_eq!(run1, vec![Key::fuzz_corpus(1, 5), Key::fuzz_corpus(1, 6)]);
    }

    #[test]
    fn commit_get_round_trip_and_reopen() {
        let dir = tmpdir("rt");
        let mut s = Spine::open(&dir).unwrap();
        let s1 = s
            .commit(vec![(k(1), b"one".to_vec()), (k(2), b"two".to_vec())])
            .unwrap();
        assert_eq!(s1, 1);
        assert_eq!(s.get(k(1)), Some(&b"one"[..]));
        assert_eq!(s.get(k(3)), None);
        // Reopen from disk: directory scan restores the batch set.
        let s2 = Spine::open(&dir).unwrap();
        assert_eq!(s2.get(k(2)), Some(&b"two"[..]));
        assert_eq!(s2.last_seq(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_version_wins_and_time_travel_sees_the_past() {
        let dir = tmpdir("tt");
        let mut s = Spine::open(&dir).unwrap();
        let s1 = s.commit(vec![(k(1), b"v1".to_vec())]).unwrap();
        let s2 = s
            .commit(vec![(k(1), b"v2".to_vec()), (k(9), b"x".to_vec())])
            .unwrap();
        assert!(s2 > s1);
        assert_eq!(s.get(k(1)), Some(&b"v2"[..]));
        assert_eq!(s.get_as_of(k(1), s1), Some(&b"v1"[..]));
        assert_eq!(s.get_as_of(k(9), s1), None, "k9 did not exist at s1");
        let hist = s.history(k(1));
        assert_eq!(
            hist.iter().map(|(s, v)| (*s, *v)).collect::<Vec<_>>(),
            vec![(s1, &b"v1"[..]), (s2, &b"v2"[..])]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_keyspace_accumulates_a_timeline() {
        let dir = tmpdir("tel");
        let mut s = Spine::open(&dir).unwrap();
        let key = Key::telemetry(0xF11E);
        // The telemetry kind is disjoint from sim/figure keyspaces even for
        // equal fingerprints.
        assert_ne!(key, Key::figure(0xF11E));
        assert_ne!(key, Key::sim(0xF11E, 0));
        let s1 = s.commit(vec![(key, b"{\"t\":1}".to_vec())]).unwrap();
        let s2 = s.commit(vec![(key, b"{\"t\":2}".to_vec())]).unwrap();
        let s3 = s.commit(vec![(key, b"{\"t\":3}".to_vec())]).unwrap();
        let hist = s.history(key);
        assert_eq!(
            hist.iter().map(|(s, v)| (*s, *v)).collect::<Vec<_>>(),
            vec![
                (s1, &b"{\"t\":1}"[..]),
                (s2, &b"{\"t\":2}"[..]),
                (s3, &b"{\"t\":3}"[..])
            ],
            "every snapshot survives as its own version"
        );
        assert_eq!(s.get_as_of(key, s2), Some(&b"{\"t\":2}"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_merges_levels_and_keeps_history() {
        let dir = tmpdir("cp");
        let mut s = Spine::open(&dir).unwrap();
        let seqs: Vec<u64> = (0..10)
            .map(|i| {
                s.commit(vec![(k(i % 3), format!("v{i}").into_bytes())])
                    .unwrap()
            })
            .collect();
        assert!(s.compactions() > 0, "10 single commits must trigger merges");
        assert!(
            s.batches().len() < 10,
            "live batches: {} (merged)",
            s.batches().len()
        );
        // All versions survive the merges.
        assert_eq!(s.history(k(0)).len(), 4); // i = 0,3,6,9
        assert_eq!(s.get_as_of(k(1), seqs[1]), Some(&b"v1"[..]));
        assert_eq!(s.get(k(1)), Some(&b"v7"[..]));
        // Reopen sees the compacted layout.
        let r = Spine::open(&dir).unwrap();
        assert_eq!(r.get(k(2)), Some(&b"v8"[..]));
        assert_eq!(r.history(k(0)).len(), 4);
        // On-disk file count matches the live set + manifest.
        let files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(
            files.iter().filter(|f| f.ends_with(".batch")).count(),
            s.batches().len(),
            "{files:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_scans_in_key_order_with_as_of() {
        let dir = tmpdir("cur");
        let mut s = Spine::open(&dir).unwrap();
        let s1 = s
            .commit(vec![(k(3), b"c1".to_vec()), (k(1), b"a1".to_vec())])
            .unwrap();
        s.commit(vec![(k(2), b"b2".to_vec()), (k(1), b"a2".to_vec())])
            .unwrap();
        let now: Vec<(Key, u64, Vec<u8>)> = s
            .cursor(None)
            .map(|(key, seq, v)| (key, seq, v.to_vec()))
            .collect();
        assert_eq!(now.len(), 3);
        assert!(now.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        assert_eq!(now[0].2, b"a2".to_vec(), "newest version of k1");
        let then: Vec<_> = s.cursor(Some(s1)).collect();
        assert_eq!(then.len(), 2, "k2 absent as of s1");
        assert_eq!(then[0].2, b"a1", "old version of k1");
        // Range scan restricted to one keyspace kind.
        let figs: Vec<_> = s
            .cursor_range(
                Key {
                    kind: 1,
                    a: 0,
                    b: 0,
                },
                Key {
                    kind: 1,
                    a: u64::MAX,
                    b: u64::MAX,
                },
                None,
            )
            .collect();
        assert!(figs.is_empty(), "no figure-kind keys committed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_keys_in_one_commit_keep_the_last_value() {
        let dir = tmpdir("dup");
        let mut s = Spine::open(&dir).unwrap();
        s.commit(vec![(k(1), b"first".to_vec()), (k(1), b"second".to_vec())])
            .unwrap();
        assert_eq!(s.get(k(1)), Some(&b"second"[..]));
        assert_eq!(s.entry_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_describes_the_live_set_and_migration_flag_persists() {
        let dir = tmpdir("man");
        let mut s = Spine::open(&dir).unwrap();
        s.commit(vec![(k(1), b"x".to_vec())]).unwrap();
        assert!(!s.migrated());
        s.set_migrated();
        let text = fs::read_to_string(dir.join("MANIFEST.json")).unwrap();
        assert!(text.contains("\"migrated\": true"));
        assert!(text.contains("\"batches\""));
        assert!(text.contains(".batch"));
        let r = Spine::open(&dir).unwrap();
        assert!(r.migrated(), "flag survives reopen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_or_foreign_files_are_skipped() {
        let dir = tmpdir("torn");
        let mut s = Spine::open(&dir).unwrap();
        s.commit(vec![(k(1), b"good".to_vec())]).unwrap();
        fs::write(dir.join("zz-torn.batch"), b"CWSPSPN1 garbage").unwrap();
        fs::write(dir.join("notes.txt"), b"not a batch").unwrap();
        let r = Spine::open(&dir).unwrap();
        assert_eq!(r.get(k(1)), Some(&b"good"[..]), "good batch still loads");
        assert_eq!(r.batches().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let dir = tmpdir("empty");
        let mut s = Spine::open(&dir).unwrap();
        assert_eq!(s.commit(vec![]).unwrap(), 0);
        assert_eq!(s.batches().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
