//! Figure 22: RBT size sensitivity (paper: 1.11 at 8 entries — SPLASH3 up to
//! 1.20 — 1.06 at 16, 1.04 at 32).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig22_rbt_sweep", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Fig 22: RBT size sweep ===");
    for rbt in [2usize, 4, 8, 16, 32] {
        let cfg = SimConfig {
            rbt_entries: rbt,
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- RBT-{rbt}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
