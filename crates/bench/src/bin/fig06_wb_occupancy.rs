//! Figure 6: average L1D write-buffer occupancy for the baseline and cWSP
//! (paper: 0.39 entries for both — the PB-delay check adds no pressure).

use cwsp_bench::{cached_stats, measure_all, print_results, scheme_stats};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig06_wb_occupancy", run);
}

fn run() {
    let cfg = SimConfig::default();
    let apps = cwsp_workloads::all();
    let base = measure_all(&apps, |w| {
        cached_stats(w.name, &w.module, &cfg, Scheme::Baseline).avg_wb_occupancy()
    });
    print_results("Fig 6a: baseline avg WB occupancy", "entries", &base);
    let cwsp = measure_all(&apps, |w| {
        scheme_stats(w, &cfg, Scheme::cwsp(), CompileOptions::default()).avg_wb_occupancy()
    });
    print_results(
        "Fig 6b: cWSP avg WB occupancy (paper: equal to baseline)",
        "entries",
        &cwsp,
    );
}
