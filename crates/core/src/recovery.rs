//! The power-failure recovery protocol (§VII).
//!
//! Given a [`CrashImage`] — the NVM contents after the ADR flush and undo-log
//! reversal, plus the persisted RS pointer of the oldest unpersisted region —
//! recovery proceeds exactly as the paper describes:
//!
//! 1. *(already done by the hardware model)* speculative NVM updates were
//!    reverted with the per-MC undo logs;
//! 2. the runtime reconstructs the machine context from persistent state:
//!    the call stack is walked from the frame records in NVM, and the
//!    region's **recovery slice** restores its live-in registers (checkpoint
//!    slot loads and rematerialized constants);
//! 3. execution restarts from the beginning of the oldest unpersisted region.
//!
//! The resumed program runs on the NVM image as its main memory — whole-system
//! persistence means there is nothing else to restore.

use cwsp_compiler::pipeline::Compiled;
use cwsp_ir::interp::{Interp, InterpError, ResumeKind, StepEffect};
use cwsp_ir::memory::Memory;
use cwsp_ir::types::Word;
use cwsp_obs::{NullSink, ObsSink};
use cwsp_sim::machine::CrashImage;
use std::fmt;
use std::time::Instant;

/// Errors during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The frame chain or metadata in NVM was malformed.
    BadImage(String),
    /// The resumed program trapped.
    Trap(String),
    /// The resumed program did not halt within the step budget.
    StepLimit(u64),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BadImage(m) => write!(f, "bad crash image: {m}"),
            RecoveryError::Trap(m) => write!(f, "resumed program trapped: {m}"),
            RecoveryError::StepLimit(n) => write!(f, "recovery exceeded {n} steps"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// A completed post-failure execution.
#[derive(Debug, Clone)]
pub struct RecoveredRun {
    /// Final memory (the evolved NVM image).
    pub memory: Memory,
    /// Complete output: what persisted regions released before the failure,
    /// followed by everything the resumed execution emitted.
    pub output: Vec<Word>,
    /// Entry function's return value.
    pub return_value: Option<Word>,
    /// Instructions executed after resumption (the re-executed tail).
    pub replayed_steps: u64,
    /// Undo-log records the hardware reverted before resumption.
    pub reverted_records: usize,
}

/// Recover core `core` from `image` and run the program to completion.
///
/// # Errors
/// [`RecoveryError::BadImage`] for malformed frame chains,
/// [`RecoveryError::Trap`] / [`RecoveryError::StepLimit`] from the resumed
/// execution.
pub fn recover(
    compiled: &Compiled,
    image: CrashImage,
    core: usize,
    max_steps: u64,
) -> Result<RecoveredRun, RecoveryError> {
    recover_observed(compiled, image, core, max_steps, &mut NullSink)
}

/// [`recover`], publishing recovery telemetry into `sink`: one span per
/// protocol phase (`rebuild_context`, `apply_slice`, `replay`) on the
/// `recovery` track, plus counts for reverted undo-log records and replayed
/// instructions. With the default [`NullSink`] this is exactly `recover`.
///
/// # Errors
/// Same failure modes as [`recover`].
pub fn recover_observed(
    compiled: &Compiled,
    image: CrashImage,
    core: usize,
    max_steps: u64,
    sink: &mut dyn ObsSink,
) -> Result<RecoveredRun, RecoveryError> {
    recover_inner(compiled, image, core, max_steps, sink, None)
}

/// The ordered memory writes performed by a recovery replay — the ground
/// truth the crash forensics frontier prediction is cross-checked against.
#[derive(Debug, Clone, Default)]
pub struct ReplayWriteLog {
    /// `(addr, value)` of every write the resumed execution performed, in
    /// step order, up to the collection cap.
    pub writes: Vec<(Word, Word)>,
    /// Whether the cap cut the log short (replay continued uncaptured).
    pub truncated: bool,
}

/// [`recover`], additionally capturing the first `log_cap` `(addr, value)`
/// writes the replay performs, in order. Execution itself is unchanged —
/// the log is pure observation.
///
/// # Errors
/// Same failure modes as [`recover`].
pub fn recover_with_write_log(
    compiled: &Compiled,
    image: CrashImage,
    core: usize,
    max_steps: u64,
    log_cap: usize,
) -> Result<(RecoveredRun, ReplayWriteLog), RecoveryError> {
    let mut log = ReplayWriteLog::default();
    let run = recover_inner(
        compiled,
        image,
        core,
        max_steps,
        &mut NullSink,
        Some((&mut log, log_cap)),
    )?;
    Ok((run, log))
}

fn recover_inner(
    compiled: &Compiled,
    image: CrashImage,
    core: usize,
    max_steps: u64,
    sink: &mut dyn ObsSink,
    mut write_log: Option<(&mut ReplayWriteLog, usize)>,
) -> Result<RecoveredRun, RecoveryError> {
    let observed = sink.enabled();
    let t0 = observed.then(Instant::now);
    let now_ns =
        |t0: &Option<Instant>| -> u64 { t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0) };
    let CrashImage {
        nvm,
        output,
        resume,
        reverted_records,
    } = image;
    let Some(&(rp, static_region)) = resume.get(core) else {
        return Err(RecoveryError::BadImage(format!(
            "no metadata for core {core}"
        )));
    };
    let mut mem = nvm;
    // Step 2: rebuild the machine context from persistent state.
    let s = now_ns(&t0);
    let mut interp = Interp::resume(&compiled.module, core, &mem, rp)
        .map_err(|e| RecoveryError::BadImage(e.to_string()))?;
    if observed {
        let end = now_ns(&t0);
        sink.span("recovery", "rebuild_context", s, end.saturating_sub(s));
        sink.count("recovery.reverted_records", reverted_records as u64);
    }
    // Execute the recovery slice for plain region entries (function-entry and
    // post-call entries restore from the frame record inside `resume`).
    if rp.kind == ResumeKind::Normal {
        if let Some(region) = static_region {
            if let Some(slice) = compiled.slices.get(region) {
                let s = now_ns(&t0);
                slice.apply(&mut interp, &mem, core);
                if observed {
                    let end = now_ns(&t0);
                    sink.span("recovery", "apply_slice", s, end.saturating_sub(s));
                    sink.count("recovery.slice_restores", slice.restores.len() as u64);
                }
            }
        }
    }
    // Step 3: restart from the beginning of the oldest unpersisted region.
    let s = now_ns(&t0);
    let mut output = output;
    let mut replayed = 0u64;
    let mut eff = StepEffect::default();
    while !interp.is_halted() {
        if replayed >= max_steps {
            return Err(RecoveryError::StepLimit(max_steps));
        }
        interp.step_into(&mut mem, &mut eff).map_err(|e| match e {
            InterpError::Trap(m) => RecoveryError::Trap(m),
            other => RecoveryError::Trap(other.to_string()),
        })?;
        if let Some((log, cap)) = write_log.as_mut() {
            for &(a, v) in &eff.writes {
                if log.writes.len() < *cap {
                    log.writes.push((a, v));
                } else {
                    log.truncated = true;
                }
            }
        }
        if let Some(v) = eff.out {
            output.push(v);
        }
        replayed += 1;
    }
    if observed {
        let end = now_ns(&t0);
        sink.span("recovery", "replay", s, end.saturating_sub(s));
        sink.count("recovery.replayed_steps", replayed);
    }
    Ok(RecoveredRun {
        memory: mem,
        output,
        return_value: interp.return_value(),
        replayed_steps: replayed,
        reverted_records,
    })
}

/// A completed multicore post-failure execution (§VIII).
#[derive(Debug, Clone)]
pub struct MulticoreRecoveredRun {
    /// Final shared memory (the evolved NVM image).
    pub memory: Memory,
    /// Per-core return values.
    pub return_values: Vec<Option<Word>>,
    /// Total instructions executed after resumption across all cores.
    pub replayed_steps: u64,
}

/// Recover *every* core from `image` and run them to completion over the
/// shared NVM image, interleaving round-robin.
///
/// Per §VIII, data-race-free programs let each thread resume independently
/// from its own oldest unpersisted region — no cross-thread happens-before
/// tracking is needed. The resumed interleaving generally differs from the
/// pre-crash one, so this is meaningful for DRF programs whose final data is
/// interleaving-independent (see `cwsp_workloads::multicore`).
///
/// # Errors
/// Same failure modes as [`recover`], for any core.
pub fn recover_multicore(
    compiled: &Compiled,
    image: CrashImage,
    max_steps: u64,
) -> Result<MulticoreRecoveredRun, RecoveryError> {
    let CrashImage {
        nvm,
        output: _,
        resume,
        reverted_records: _,
    } = image;
    let mut mem = nvm;
    let ncores = resume.len();
    let mut interps = Vec::with_capacity(ncores);
    for (core, &(rp, static_region)) in resume.iter().enumerate() {
        let mut interp = Interp::resume(&compiled.module, core, &mem, rp)
            .map_err(|e| RecoveryError::BadImage(format!("core {core}: {e}")))?;
        if rp.kind == ResumeKind::Normal {
            if let Some(region) = static_region {
                if let Some(slice) = compiled.slices.get(region) {
                    slice.apply(&mut interp, &mem, core);
                }
            }
        }
        interps.push(interp);
    }
    let mut replayed = 0u64;
    let mut eff = StepEffect::default();
    loop {
        let mut any = false;
        for interp in interps.iter_mut() {
            if interp.is_halted() {
                continue;
            }
            if replayed >= max_steps {
                return Err(RecoveryError::StepLimit(max_steps));
            }
            interp
                .step_into(&mut mem, &mut eff)
                .map_err(|e| RecoveryError::Trap(e.to_string()))?;
            replayed += 1;
            any = true;
        }
        if !any {
            break;
        }
    }
    Ok(MulticoreRecoveredRun {
        memory: mem,
        return_values: interps.iter().map(|i| i.return_value()).collect(),
        replayed_steps: replayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
    use cwsp_ir::module::Module;
    use cwsp_sim::config::SimConfig;
    use cwsp_sim::machine::{Machine, RunEnd};
    use cwsp_sim::scheme::Scheme;

    fn looping_module(n: u64) -> Module {
        let mut m = Module::new("t");
        let g = m.add_global("acc", 2);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(n), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
            b.push(bb, Inst::Out { val: i.into() });
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.store(exit, v.into(), MemRef::global(g, 1));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn crash_then_recover_matches_oracle_at_many_cycles() {
        let m = looping_module(60);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
        let oracle = cwsp_ir::interp::run(&compiled.module, 1_000_000).unwrap();

        for crash_cycle in [50u64, 200, 500, 1200, 3000, 7000] {
            let cfg_ = SimConfig::default();
            let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
            let r = machine.run(u64::MAX, Some(crash_cycle)).unwrap();
            if r.end != RunEnd::PowerFailure {
                // Program finished before the crash point: nothing to test.
                continue;
            }
            let image = machine.into_crash_image();
            let rec = recover(&compiled, image, 0, 1_000_000)
                .unwrap_or_else(|e| panic!("crash@{crash_cycle}: {e}"));
            assert_eq!(
                rec.return_value, oracle.return_value,
                "return value after crash@{crash_cycle}"
            );
            assert_eq!(
                rec.output, oracle.output,
                "output after crash@{crash_cycle}"
            );
            let diffs = rec
                .memory
                .diff_where(&oracle.memory, cwsp_ir::layout::is_program_data, 8);
            assert!(
                diffs.is_empty(),
                "crash@{crash_cycle}: data diverged: {diffs:x?}"
            );
        }
    }

    #[test]
    fn recovery_without_crash_runs_through() {
        // Crash at cycle 0: nothing persisted beyond the image; recovery is a
        // full re-run from the program entry.
        let m = looping_module(10);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
        let oracle = cwsp_ir::interp::run(&compiled.module, 1_000_000).unwrap();
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
        let _ = machine.run(u64::MAX, Some(0)).unwrap();
        let image = machine.into_crash_image();
        let rec = recover(&compiled, image, 0, 1_000_000).unwrap();
        assert_eq!(rec.return_value, oracle.return_value);
        assert_eq!(rec.output, oracle.output);
    }

    #[test]
    fn recover_observed_reports_phases() {
        let m = looping_module(40);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, Some(800)).unwrap();
        assert_eq!(r.end, RunEnd::PowerFailure);
        let image = machine.into_crash_image();
        let mut sink = cwsp_obs::MemSink::default();
        let rec = recover_observed(&compiled, image, 0, 1_000_000, &mut sink).unwrap();
        assert_eq!(sink.spans_named("rebuild_context").len(), 1);
        assert_eq!(sink.spans_named("replay").len(), 1);
        assert_eq!(
            sink.count_total("recovery.replayed_steps"),
            rec.replayed_steps
        );
    }

    #[test]
    fn write_log_captures_replay_writes_in_order_and_respects_cap() {
        let m = looping_module(40);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, Some(800)).unwrap();
        assert_eq!(r.end, RunEnd::PowerFailure);
        let image = machine.into_crash_image();
        let (rec, log) =
            recover_with_write_log(&compiled, image.clone(), 0, 1_000_000, usize::MAX).unwrap();
        assert!(!log.writes.is_empty(), "replay performed writes");
        assert!(!log.truncated);
        // A capped log is an exact prefix of the uncapped one.
        let (rec2, capped) = recover_with_write_log(&compiled, image, 0, 1_000_000, 3).unwrap();
        assert!(capped.truncated);
        assert_eq!(capped.writes[..], log.writes[..3]);
        // Observation never perturbs the recovery itself.
        assert_eq!(rec.return_value, rec2.return_value);
        assert_eq!(rec.output, rec2.output);
    }

    #[test]
    fn missing_core_metadata_is_reported() {
        let m = looping_module(5);
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
        let _ = machine.run(u64::MAX, Some(10)).unwrap();
        let image = machine.into_crash_image();
        let err = recover(&compiled, image, 5, 1_000).unwrap_err();
        assert!(matches!(err, RecoveryError::BadImage(_)));
    }
}
