//! # cwsp-obs — the unified observability layer
//!
//! The paper's evaluation (§IX) is entirely about *where cycles and NVM
//! writes go*: stall breakdowns, buffer occupancies, log amplification.
//! This crate is the substrate every other crate publishes that information
//! through, with zero external dependencies (the repository builds offline):
//!
//! * [`metrics`] — a named metrics registry: counters, gauges, and labelled
//!   histograms with snapshot/delta support and JSON serialization.
//!   `SimStats`, the compiler pipeline, and the bench engine all publish
//!   into one of these.
//! * [`chrome`] — a builder for Chrome trace-event JSON
//!   (`chrome://tracing` / [Perfetto](https://ui.perfetto.dev)-loadable),
//!   with cores and memory controllers as named tracks. The simulator's
//!   event ring exports through this.
//! * [`profile`] — the flat cycle-attribution profile model: every simulated
//!   core-cycle attributed to a (function, static region, cause) site,
//!   rendered as top-N tables and JSON reports.
//! * [`flight`] — the crash-survivable flight recorder: a binary ring
//!   journal of persist-path events written through `cwsp_store::spill`,
//!   so an injected crash (or a killed process, with `CWSP_FLIGHT_DIR`)
//!   leaves the lineage evidence readable.
//! * [`forensics`] — post-crash frontier reconstruction from a journal +
//!   machine snapshot: persisted / in-WPQ / dirty store sets, lost-store
//!   attribution, and the replay cross-check, rendered as text, JSON, and
//!   a Chrome/Perfetto track.
//! * [`sink`] — the [`sink::ObsSink`] trait: the low-rate instrumentation
//!   interface (compiler passes, recovery replay). The no-op
//!   [`sink::NullSink`] is the default everywhere, so instrumented code
//!   paths cost one `enabled()` check when observability is off.
//!
//! The simulator's per-event hot path does *not* go through a `dyn` sink —
//! it keeps its fixed-capacity typed ring (`cwsp_sim::trace::Trace`, gated
//! by an `Option` branch) and converts to this crate's representations at
//! export time. See DESIGN.md §8 for the architecture.

pub mod chrome;
pub mod flight;
pub mod forensics;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod tier;

pub use chrome::ChromeTrace;
pub use flight::{FlightKind, FlightRecord, FlightRecorder};
pub use forensics::{CoreFrontier, ForensicReport, MachineFrontier, StoreFate};
pub use metrics::{MetricValue, ObserveError, Registry, Snapshot};
pub use profile::{FlatProfile, ProfileRow};
pub use sink::{ChromeSink, MemSink, NullSink, ObsSink, SinkEvent};

/// Escape a string into a JSON string literal (shared by the writers here).
pub(crate) fn json_escape(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an f64 the way the harness JSON does: shortest-exact `{:?}`,
/// `null` for non-finite values.
pub(crate) fn json_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}
