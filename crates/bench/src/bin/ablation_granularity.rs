//! Design-choice ablation (§V-A2): cWSP's 8-byte persist granularity vs the
//! 64-byte cacheline granularity all prior work uses — an eightfold
//! bandwidth-demand difference on the same persist path.

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("ablation_granularity", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Ablation: persist granularity (4 GB/s path) ===");
    for gran in [8u64, 64] {
        let cfg = SimConfig {
            persist_granularity: gran,
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- {gran}-byte entries");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
    println!("\n(8-byte entries are the paper's key bandwidth lever: same stores, 1/8 the bytes)");
}
