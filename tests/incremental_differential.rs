//! Differential guarantee of the incremental analyzer.
//!
//! Contract under test: [`cwsp_analyzer::analyze_incremental`] must be a
//! pure cache in front of `analyze` — **byte-identical diagnostics** (text
//! and JSON renderings, wall time zeroed) on every workload and genprog
//! module, cold or warm, after any mutation. On top of identity, the cache
//! must actually pay for itself: after a single-function mutation, the
//! number of functions re-analyzed (the `misses` counter) must be at least
//! 10× smaller than what a from-scratch analysis would have processed.

use cwsp::analyzer::{self, analyze_incremental, analyze_with, analyze_with_cache, AnalysisCache};
use cwsp::analyzer::{AnalyzeOptions, Report};
use cwsp::compiler::pipeline::CompileOptions;
use cwsp::core::genprog::{self, touch_function, ProgramSpec};
use cwsp::ir::module::FuncId;
use cwsp_bench::engine::engine;
use cwsp_bench::par_map;

/// Genprog corpus size (the acceptance floor is 200).
const CORPUS: u64 = 200;

const SPEC: ProgramSpec = ProgramSpec {
    globals: 2,
    global_words: 8,
    segments: 4,
    max_trip: 4,
    calls: true,
};

/// Wall time zeroed, text and JSON renderings concatenated: the
/// byte-comparison basis.
fn norm(r: &Report) -> String {
    let mut r = r.clone();
    r.counters.analysis_ns = 0;
    format!("{}\n{}", r.render_text(), r.to_json())
}

#[test]
fn every_workload_is_byte_identical_cold_and_warm() {
    let mut cache = AnalysisCache::new();
    for w in cwsp::workloads::all() {
        let c = engine().compiled(&w.module, CompileOptions::default());
        let full = analyzer::analyze(&c.module, &c.slices);
        let cold = analyze_incremental(&c.module, &c.slices, &mut cache);
        let warm = analyze_incremental(&c.module, &c.slices, &mut cache);
        assert_eq!(norm(&full), norm(&cold), "{}: cold mismatch", w.name);
        assert_eq!(norm(&full), norm(&warm), "{}: warm mismatch", w.name);
    }
}

#[test]
fn layered_analysis_is_byte_identical_with_cache() {
    let opts = AnalyzeOptions {
        interproc: true,
        races: true,
        persist: true,
        cores: 2,
    };
    let mut cache = AnalysisCache::new();
    for w in cwsp::workloads::all().iter().take(8) {
        let c = engine().compiled(&w.module, CompileOptions::default());
        let (full, _, full_pc) = analyze_with(&c.module, &c.slices, &opts);
        let (cached, _, cold_pc) = analyze_with_cache(&c.module, &c.slices, &opts, &mut cache);
        let (warm, _, warm_pc) = analyze_with_cache(&c.module, &c.slices, &opts, &mut cache);
        assert_eq!(norm(&full), norm(&cached), "{}: layered cold", w.name);
        assert_eq!(norm(&full), norm(&warm), "{}: layered warm", w.name);
        assert!(full_pc.is_some(), "{}: persist layer ran", w.name);
        assert_eq!(full_pc, cold_pc, "{}: persist counters cold", w.name);
        assert_eq!(full_pc, warm_pc, "{}: persist counters warm", w.name);
    }
}

#[test]
fn genprog_corpus_with_single_function_mutations_is_byte_identical() {
    let seeds: Vec<u64> = (0..CORPUS).collect();
    let failures: Vec<String> = par_map(&seeds, |&seed| {
        let m = genprog::generate(&SPEC, seed);
        let c = engine().compiled(&m, CompileOptions::default());
        let mut cache = AnalysisCache::new();

        // Cold run: identical to full, every function a miss.
        let full = analyzer::analyze(&c.module, &c.slices);
        let cold = analyze_incremental(&c.module, &c.slices, &mut cache);
        if norm(&full) != norm(&cold) {
            return Some(format!("seed {seed}: cold mismatch"));
        }
        let nfuncs = c.module.function_count();
        let cold_stats = cache.stats();
        if cold_stats.misses != nfuncs as u64 {
            return Some(format!("seed {seed}: cold run should miss every function"));
        }

        // Mutate exactly one function; the warm run must re-analyze only it.
        let mut mutated = c.module.clone();
        let target = FuncId((seed % nfuncs as u64) as u32);
        touch_function(&mut mutated, target, 0xBEEF ^ seed);
        let full2 = analyzer::analyze(&mutated, &c.slices);
        let warm = analyze_incremental(&mutated, &c.slices, &mut cache);
        if norm(&full2) != norm(&warm) {
            return Some(format!("seed {seed}: post-mutation mismatch"));
        }
        let warm_stats = cache.stats();
        let (miss_d, hit_d, inval_d) = (
            warm_stats.misses - cold_stats.misses,
            warm_stats.hits - cold_stats.hits,
            warm_stats.invalidations - cold_stats.invalidations,
        );
        if miss_d != 1 || inval_d != 1 || hit_d != nfuncs as u64 - 1 {
            return Some(format!(
                "seed {seed}: expected 1 miss/1 invalidation/{} hits, got {miss_d}/{inval_d}/{hit_d}",
                nfuncs - 1
            ));
        }
        None
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The CI reality the cache exists for: re-linting a whole corpus after one
/// function changed. From-scratch analysis processes every function of
/// every module; the incremental pass re-analyzes only the changed one.
#[test]
fn corpus_relint_after_one_mutation_reanalyzes_ten_times_fewer_functions() {
    let seeds: Vec<u64> = (0..40).collect();
    let compiled: Vec<_> = par_map(&seeds, |&seed| {
        engine().compiled(&genprog::generate(&SPEC, seed), CompileOptions::default())
    });
    let mut cache = AnalysisCache::new();

    // Cold sweep seeds the cache (and must match full analysis everywhere).
    for c in &compiled {
        let full = analyzer::analyze(&c.module, &c.slices);
        let cold = analyze_incremental(&c.module, &c.slices, &mut cache);
        assert_eq!(norm(&full), norm(&cold));
    }
    let cold_stats = cache.stats();

    // One function of one module changes; everything is re-linted.
    let mut modules: Vec<_> = compiled.iter().map(|c| c.module.clone()).collect();
    touch_function(&mut modules[7], FuncId(0), 0xD1FF);
    let mut total_functions = 0u64;
    for (m, c) in modules.iter().zip(&compiled) {
        let full = analyzer::analyze(m, &c.slices);
        let incr = analyze_incremental(m, &c.slices, &mut cache);
        assert_eq!(norm(&full), norm(&incr), "relint mismatch for {}", m.name);
        total_functions += m.function_count() as u64;
    }
    let relint_misses = cache.stats().misses - cold_stats.misses;
    assert_eq!(
        relint_misses, 1,
        "exactly the mutated function is re-analyzed"
    );
    assert!(
        total_functions >= 10 * relint_misses.max(1),
        "incremental advantage below 10x: {total_functions} functions vs {relint_misses} misses"
    );
    assert_eq!(
        cache.stats().invalidations - cold_stats.invalidations,
        1,
        "one fingerprint changed"
    );
}
