//! Classic scalar optimizations: constant folding, block-local copy
//! propagation, and dead-code elimination.
//!
//! The paper compiles everything at `-O3` before the cWSP passes run; these
//! passes are the reproduction's analogue, ensuring the region-formation and
//! checkpointing statistics are measured over reasonably optimized code
//! rather than naive builder output. They are semantics-preserving and safe
//! to run before the persistence pipeline (the pipeline's own invariants are
//! established afterwards).

use crate::liveness::{defs, Liveness};
use cwsp_ir::inst::{Inst, MemRef, Operand};
use cwsp_ir::module::Module;
use cwsp_ir::types::{Reg, Word};
use std::collections::HashMap;

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptInfo {
    /// Binary/Mov instructions folded to constants.
    pub folded: usize,
    /// Register operands rewritten by copy propagation.
    pub copies_propagated: usize,
    /// Dead instructions removed.
    pub dce_removed: usize,
}

/// Run constant folding and DCE to a fixpoint (bounded).
///
/// Copy propagation ([`propagate_copies`]) is available as a standalone pass
/// but deliberately NOT part of the default pipeline: the persistence passes
/// rely on two-phase `t = f(x); x = t` updates as renaming points (DESIGN.md
/// §3.1), and propagating those copies re-creates the same-instruction
/// update pattern the split pass must then cut — costing checkpoint-pruning
/// opportunities. A production compiler would run copy propagation before a
/// renaming-aware backend instead.
pub fn optimize(module: &mut Module) -> OptInfo {
    let mut total = OptInfo::default();
    for _ in 0..4 {
        let mut round = OptInfo::default();
        round.folded += fold_constants(module);
        round.dce_removed += eliminate_dead_code(module);
        total.folded += round.folded;
        total.dce_removed += round.dce_removed;
        if round == OptInfo::default() {
            break;
        }
    }
    total
}

/// Run the full set including copy propagation (not pipeline-default; see
/// [`optimize`]).
pub fn optimize_aggressive(module: &mut Module) -> OptInfo {
    let mut total = optimize(module);
    total.copies_propagated += propagate_copies(module);
    let tail = optimize(module);
    total.folded += tail.folded;
    total.dce_removed += tail.dce_removed;
    total
}

/// Block-local constant folding: operands known constant at each point are
/// substituted; binaries over two constants become `Mov imm`.
pub fn fold_constants(module: &mut Module) -> usize {
    let mut changed = 0;
    for fid in 0..module.function_count() {
        let f = module.function_mut(cwsp_ir::module::FuncId(fid as u32));
        for block in &mut f.blocks {
            let mut consts: HashMap<Reg, Word> = HashMap::new();
            for inst in &mut block.insts {
                let subst = |op: &mut Operand, consts: &HashMap<Reg, Word>, n: &mut usize| {
                    if let Operand::Reg(r) = op {
                        if let Some(&c) = consts.get(r) {
                            *op = Operand::Imm(c);
                            *n += 1;
                        }
                    }
                };
                match inst {
                    Inst::Binary { op, dst, lhs, rhs } => {
                        subst(lhs, &consts, &mut changed);
                        subst(rhs, &consts, &mut changed);
                        if let (Operand::Imm(a), Operand::Imm(b)) = (*lhs, *rhs) {
                            // Don't fold tagged global addresses — arithmetic
                            // on them must stay within the offset field.
                            if !cwsp_ir::layout::is_tagged_global(a)
                                && !cwsp_ir::layout::is_tagged_global(b)
                            {
                                let v = op.eval(a, b);
                                *inst = Inst::Mov {
                                    dst: *dst,
                                    src: Operand::Imm(v),
                                };
                                changed += 1;
                                if let Inst::Mov {
                                    dst,
                                    src: Operand::Imm(v),
                                } = inst
                                {
                                    consts.insert(*dst, *v);
                                }
                                continue;
                            }
                        }
                        if let Inst::Binary { dst, .. } = inst {
                            consts.remove(dst);
                        }
                    }
                    Inst::Mov { dst, src } => {
                        subst(src, &consts, &mut changed);
                        match src {
                            Operand::Imm(v) => {
                                consts.insert(*dst, *v);
                            }
                            _ => {
                                consts.remove(dst);
                            }
                        }
                    }
                    Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                        // Fold constant address bases too.
                        let MemRef { base, offset } = addr;
                        if let Operand::Reg(r) = base {
                            if let Some(&c) = consts.get(r) {
                                if !cwsp_ir::layout::is_tagged_global(c) || *offset == 0 {
                                    *base = Operand::Imm(c);
                                    changed += 1;
                                }
                            }
                        }
                        if let Inst::Store { src, .. } = inst {
                            subst(src, &consts, &mut changed);
                        }
                        for d in defs(inst) {
                            consts.remove(&d);
                        }
                    }
                    other => {
                        for d in defs(other) {
                            consts.remove(&d);
                        }
                    }
                }
            }
        }
    }
    changed
}

/// Block-local copy propagation: after `Mov d, s` (register source), uses of
/// `d` read `s` until either is redefined.
pub fn propagate_copies(module: &mut Module) -> usize {
    let mut changed = 0;
    for fid in 0..module.function_count() {
        let f = module.function_mut(cwsp_ir::module::FuncId(fid as u32));
        for block in &mut f.blocks {
            let mut copies: HashMap<Reg, Reg> = HashMap::new();
            for inst in &mut block.insts {
                // Rewrite uses first.
                let rewrite = |op: &mut Operand, copies: &HashMap<Reg, Reg>, n: &mut usize| {
                    if let Operand::Reg(r) = op {
                        if let Some(&s) = copies.get(r) {
                            *op = Operand::Reg(s);
                            *n += 1;
                        }
                    }
                };
                match inst {
                    Inst::Binary { lhs, rhs, .. } => {
                        rewrite(lhs, &copies, &mut changed);
                        rewrite(rhs, &copies, &mut changed);
                    }
                    Inst::Mov { src, .. } => rewrite(src, &copies, &mut changed),
                    Inst::Load { addr, .. } => rewrite(&mut addr.base, &copies, &mut changed),
                    Inst::Store { src, addr } => {
                        rewrite(src, &copies, &mut changed);
                        rewrite(&mut addr.base, &copies, &mut changed);
                    }
                    Inst::CondBr { cond, .. } => rewrite(cond, &copies, &mut changed),
                    Inst::Out { val } => rewrite(val, &copies, &mut changed),
                    Inst::Ret { val: Some(v) } => rewrite(v, &copies, &mut changed),
                    Inst::Call { args, .. } => {
                        for a in args {
                            rewrite(a, &copies, &mut changed);
                        }
                    }
                    Inst::AtomicRmw {
                        addr,
                        src,
                        expected,
                        ..
                    } => {
                        rewrite(&mut addr.base, &copies, &mut changed);
                        rewrite(src, &copies, &mut changed);
                        rewrite(expected, &copies, &mut changed);
                    }
                    _ => {}
                }
                // Kill invalidated copies, then record new ones.
                let ds = defs(inst);
                copies.retain(|d, s| !ds.contains(d) && !ds.contains(s));
                if let Inst::Mov {
                    dst,
                    src: Operand::Reg(s),
                } = inst
                {
                    if dst != s {
                        copies.insert(*dst, *s);
                    }
                }
            }
        }
    }
    changed
}

/// Liveness-based dead-code elimination: pure register-producing
/// instructions whose result is dead are removed. Stores, calls, atomics,
/// fences, boundaries, checkpoints, and output are never removed.
pub fn eliminate_dead_code(module: &mut Module) -> usize {
    let mut removed = 0;
    for fid in 0..module.function_count() {
        let fid = cwsp_ir::module::FuncId(fid as u32);
        let f = module.function(fid).clone();
        let lv = Liveness::compute(&f);
        let mut deletions: Vec<(usize, usize)> = Vec::new();
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                let pure = matches!(
                    inst,
                    Inst::Binary { .. } | Inst::Mov { .. } | Inst::Load { .. }
                );
                if !pure {
                    continue;
                }
                let Some(d) = inst.def() else { continue };
                // Loads are pure for DCE purposes in this IR (no volatile).
                let live_after = lv.live_after(&f, bid, i);
                if !live_after.contains(d) {
                    deletions.push((bid.index(), i));
                }
            }
        }
        removed += deletions.len();
        let fm = module.function_mut(fid);
        for (b, i) in deletions.into_iter().rev() {
            fm.blocks[b].insts.remove(i);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::BinOp;

    fn roundtrip(m: &Module) -> (Option<Word>, Vec<Word>) {
        let o = cwsp_ir::interp::run(m, 1_000_000).unwrap();
        (o.return_value, o.output)
    }

    #[test]
    fn constants_fold_through_chains() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let a = b.mov(e, Operand::imm(6));
        let c = b.bin(e, BinOp::Mul, a.into(), Operand::imm(7));
        let d = b.bin(e, BinOp::Add, c.into(), Operand::imm(0));
        b.push(
            e,
            Inst::Ret {
                val: Some(d.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        let before = roundtrip(&m);
        let info = optimize(&mut m);
        assert!(info.folded >= 2, "{info:?}");
        assert_eq!(roundtrip(&m), before);
        assert_eq!(before.0, Some(42));
    }

    #[test]
    fn copies_propagate_and_die() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let x = b.load(e, MemRef::abs(64));
        let y = b.mov(e, Operand::Reg(x));
        let z = b.bin(e, BinOp::Add, y.into(), y.into());
        b.push(
            e,
            Inst::Ret {
                val: Some(z.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        let before = roundtrip(&m);
        let info = optimize_aggressive(&mut m);
        assert!(info.copies_propagated >= 2, "{info:?}");
        assert!(info.dce_removed >= 1, "the Mov dies: {info:?}");
        assert_eq!(roundtrip(&m), before);
    }

    #[test]
    fn dce_never_touches_effects() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let dead = b.bin(e, BinOp::Mul, Operand::imm(3), Operand::imm(3));
        let _ = dead;
        b.store(e, Operand::imm(1), MemRef::abs(64));
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(9),
            },
        );
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let info = optimize(&mut m);
        assert_eq!(info.dce_removed, 1, "only the dead multiply: {info:?}");
        let o = cwsp_ir::interp::run(&m, 1000).unwrap();
        assert_eq!(o.output, vec![9]);
        assert_eq!(o.memory.load(64), 1);
    }

    #[test]
    fn loops_survive_optimization() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(20), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        let before = roundtrip(&m);
        optimize(&mut m);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
        assert_eq!(roundtrip(&m), before);
        assert_eq!(before.0, Some(190));
    }

    #[test]
    fn tagged_global_addresses_are_not_folded_away() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.store(e, Operand::imm(5), MemRef::global(g, 2));
        let v = b.load(e, MemRef::global(g, 2));
        b.push(
            e,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        let before = roundtrip(&m);
        optimize(&mut m);
        assert_eq!(roundtrip(&m), before);
        assert_eq!(before.0, Some(5));
    }

    #[test]
    fn optimize_workloads_preserves_behaviour() {
        for name in ["fft", "tatp"] {
            let w = cwsp_workloads_shim(name);
            let before = cwsp_ir::interp::run(&w, 30_000_000).unwrap();
            let mut m = w.clone();
            let info = optimize_aggressive(&mut m);
            assert!(m.validate().is_ok());
            let after = cwsp_ir::interp::run(&m, 30_000_000).unwrap();
            assert_eq!(after.output, before.output, "{name}");
            assert!(
                info.folded + info.copies_propagated + info.dce_removed > 0,
                "{name}"
            );
        }
    }

    // Avoid a dev-dependency cycle (workloads depends on compiler): rebuild a
    // small representative module inline.
    fn cwsp_workloads_shim(name: &str) -> Module {
        let mut m = Module::new(name);
        let g = m.add_global("arena", 1 << 12);
        let base = m.global_addr(g);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(64), |b, bb, i| {
            let idx = b.bin(bb, BinOp::And, i.into(), Operand::imm(63));
            let off = b.bin(bb, BinOp::Shl, idx.into(), Operand::imm(3));
            let addr = b.bin(bb, BinOp::Add, off.into(), Operand::imm(base));
            let v = b.load(bb, MemRef::reg(addr, 0));
            let t = b.mov(bb, Operand::Reg(v));
            let s = b.bin(bb, BinOp::Add, t.into(), Operand::imm(1));
            b.store(bb, s.into(), MemRef::reg(addr, 0));
        });
        b.push(
            exit,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }
}
