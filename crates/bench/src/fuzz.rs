//! Resumable sharded differential-fuzzing farm.
//!
//! The farm closes the loop on the static analyzer the same way the
//! committed differential suites do, but continuously and crash-durably:
//! it generates sequential and concurrent genprog modules, runs each one
//! through a static-vs-dynamic differential, and periodically plants a bug
//! it *knows* must be caught (dropped checkpoint, unsynchronized store),
//! auto-minimizing the reproducer when it is. Every verdict is committed to
//! the `cwsp_store` LSM spine **atomically with the shard's progress
//! cursor**, so a `kill -9` mid-run loses at most the module in flight —
//! `--resume` skips exactly the seeds whose corpus entry landed and re-runs
//! the rest. Duplicates are impossible by construction: corpus entries are
//! keyed by seed and only ever written once per run fingerprint.
//!
//! Differentials per module kind:
//!
//! - **sequential** — `analyze` vs [`cwsp_analyzer::analyze_incremental`]
//!   must render byte-identically; static-clean modules must pass every
//!   dynamic checker (`check_all`); the reference interpreter and the fast
//!   interpreter must agree on output/return/steps.
//! - **concurrent** — static-race-clean must imply oracle-clean on every
//!   explored schedule (`cwsp_sim::race::check_module`).
//! - **injection self-check** — a known-bad mutation
//!   ([`cwsp_core::genprog::inject_dropped_ckpt`] /
//!   [`inject_unsynced_store`] / [`inject_dropped_flush`] /
//!   [`inject_dropped_fence`]) must be flagged, then the module is
//!   delta-debugged down to a minimal reproducer while the flag keeps
//!   firing. The flush/fence injections double as a live translation
//!   validation of the autofence pass: the un-mutated pass output must be
//!   I6-clean, an injected redundant flush must normalize away, and each
//!   drop must be caught with a witness naming the exact store or commit.
//!
//! Spine keyspaces (see `cwsp_store::spine::Key`): kind 3 holds per-shard
//! progress plus the run manifest, kind 4 the corpus keyed by seed, kind 5
//! per-shard coverage histograms.

use crate::engine::{merge_harness_section, par_map};
use crate::json::{self, Value};
use cwsp_analyzer::races::{check_concurrency, RaceOptions};
use cwsp_analyzer::{analyze, analyze_incremental, persist, AnalysisCache, Report, Severity};
use cwsp_compiler::autofence;
use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp_compiler::slice::RsSource;
use cwsp_compiler::verify::check_all;
use cwsp_core::genprog::{
    generate, generate_concurrent, inject_dropped_ckpt, inject_dropped_fence, inject_dropped_flush,
    inject_redundant_flush, inject_unsynced_store, ConcSpec, ProgramSpec,
};
use cwsp_ir::function::Block;
use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_sim::hash::FxHasher;
use cwsp_sim::race::{check_module, OracleConfig};
use cwsp_store::spine::{Key, Spine};
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Bump when record formats or the differential battery change shape;
/// folded into the run fingerprint so stale corpora are never resumed into.
/// Version 2: the injection rotation grew the dropped-flush/dropped-fence
/// self-checks against the autofence pass + I6 analyzer.
const FUZZ_FORMAT: u64 = 2;

/// Shape of the generated sequential modules (mirrors the committed
/// `static_dynamic_differential` corpus spec).
const SEQ_SPEC: ProgramSpec = ProgramSpec {
    globals: 2,
    global_words: 8,
    segments: 4,
    max_trip: 4,
    calls: true,
};

/// Farm configuration. The run fingerprint covers every field **except
/// `budget`**, so a resumed run may extend the budget without orphaning the
/// existing corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Worker shards; seed `i` belongs to shard `i % shards`.
    pub shards: u64,
    /// Total seeds (across all shards) this invocation drives to.
    pub budget: u64,
    /// Base offset added to every seed index before generation.
    pub seed_base: u64,
    /// Every `conc_every`-th seed generates a concurrent module.
    pub conc_every: u64,
    /// Every `inject_every`-th seed runs the known-bad injection self-check
    /// (takes precedence over `conc_every`; 0 disables injection).
    pub inject_every: u64,
    /// Dynamic-checker step budget per module.
    pub max_steps: u64,
    /// Race-oracle schedules per concurrent module.
    pub schedules: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            shards: 4,
            budget: 64,
            seed_base: 0xF002,
            conc_every: 3,
            inject_every: 5,
            max_steps: 200_000,
            schedules: 4,
        }
    }
}

/// The run fingerprint: identifies one logical fuzzing campaign in the
/// spine. Excludes `budget` (resume may extend it) but includes `shards`
/// (the seed→shard mapping would silently reshuffle progress keys).
pub fn run_fp(cfg: &FuzzConfig) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(FUZZ_FORMAT);
    h.write_u64(cfg.shards);
    h.write_u64(cfg.seed_base);
    h.write_u64(cfg.conc_every);
    h.write_u64(cfg.inject_every);
    h.write_u64(cfg.max_steps);
    h.write_u64(cfg.schedules as u64);
    h.finish()
}

/// What one farm invocation did.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// The campaign fingerprint (spine key prefix).
    pub run_fp: u64,
    /// Seeds executed by this invocation.
    pub completed: u64,
    /// Seeds skipped because a prior (possibly killed) invocation already
    /// committed their corpus entry.
    pub resumed: u64,
    /// Human-readable divergence descriptions (empty on a healthy run).
    pub divergences: Vec<String>,
    /// Injection self-checks run / caught-and-minimized.
    pub injected: u64,
    /// Injections the analyzer caught (must equal `injected`).
    pub injected_caught: u64,
    /// Largest minimized reproducer, in total instructions.
    pub max_min_insts: usize,
    /// Corpus entries now present for this campaign.
    pub corpus_len: u64,
}

/// Outcome of the spine-backed manifest audit ([`manifest_check`]).
#[derive(Debug, Clone, Default)]
pub struct ManifestCheck {
    /// Seeds the manifest says the campaign has driven to.
    pub expected: u64,
    /// Distinct corpus seeds actually present in `[0, expected)`.
    pub present: u64,
    /// Seeds written more than once (must be 0: corpus entries are
    /// immutable per campaign).
    pub duplicated: u64,
    /// Seed indices missing from the corpus (lost work).
    pub missing: Vec<u64>,
    /// Divergence total accumulated across all invocations.
    pub divergences: u64,
}

impl ManifestCheck {
    /// No lost and no duplicated corpus entries.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty() && self.duplicated == 0 && self.present == self.expected
    }
}

/// What kind of module a seed index drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedKind {
    Sequential,
    Concurrent,
    InjectCkpt,
    InjectStore,
    InjectFlush,
    InjectFence,
}

fn seed_kind(cfg: &FuzzConfig, i: u64) -> SeedKind {
    if cfg.inject_every != 0 && (i + 1).is_multiple_of(cfg.inject_every) {
        match (i / cfg.inject_every) % 4 {
            0 => SeedKind::InjectCkpt,
            1 => SeedKind::InjectStore,
            2 => SeedKind::InjectFlush,
            _ => SeedKind::InjectFence,
        }
    } else if cfg.conc_every != 0 && (i + 1).is_multiple_of(cfg.conc_every) {
        SeedKind::Concurrent
    } else {
        SeedKind::Sequential
    }
}

fn kind_str(k: SeedKind) -> &'static str {
    match k {
        SeedKind::Sequential => "seq",
        SeedKind::Concurrent => "conc",
        SeedKind::InjectCkpt => "inject-ckpt",
        SeedKind::InjectStore => "inject-store",
        SeedKind::InjectFlush => "inject-flush",
        SeedKind::InjectFence => "inject-fence",
    }
}

/// Normalized report text: wall time zeroed so byte-comparison is
/// deterministic, text and JSON renderings concatenated.
fn norm_report(r: &Report) -> String {
    let mut r = r.clone();
    r.counters.analysis_ns = 0;
    format!("{}\n{}", r.render_text(), r.to_json())
}

fn count_insts(m: &Module) -> usize {
    m.iter_functions()
        .flat_map(|(_, f)| f.iter_blocks())
        .map(|(_, b)| b.insts.len())
        .sum()
}

// ---------------------------------------------------------------------------
// Coverage buckets.
// ---------------------------------------------------------------------------

/// Coarse op-mix bucket: quartile-quantized shares of memory, control, and
/// synchronization instructions (e.g. `m2-c1-s0`).
fn op_mix_bucket(m: &Module) -> String {
    let (mut mem, mut ctrl, mut sync, mut total) = (0usize, 0usize, 0usize, 0usize);
    for (_, f) in m.iter_functions() {
        for (_, b) in f.iter_blocks() {
            for i in &b.insts {
                total += 1;
                match i {
                    Inst::Load { .. } | Inst::Store { .. } => mem += 1,
                    Inst::Br { .. }
                    | Inst::CondBr { .. }
                    | Inst::Call { .. }
                    | Inst::Ret { .. } => ctrl += 1,
                    Inst::AtomicRmw { .. } | Inst::Fence => sync += 1,
                    _ => {}
                }
            }
        }
    }
    let q = |n: usize| (4 * n).checked_div(total).unwrap_or(0).min(3);
    format!("m{}-c{}-s{}", q(mem), q(ctrl), q(sync))
}

/// CFG-shape bucket: function count, log2-quantized block count, and
/// whether any function has a back edge (a loop).
fn cfg_shape_bucket(m: &Module) -> String {
    let funcs = m.function_count();
    let blocks: usize = m.iter_functions().map(|(_, f)| f.blocks.len()).sum();
    let mut has_loop = false;
    for (_, f) in m.iter_functions() {
        for (bid, b) in f.iter_blocks() {
            for i in &b.insts {
                let back = |t: cwsp_ir::function::BlockId| t.0 <= bid.0;
                match i {
                    Inst::Br { target } if back(*target) => has_loop = true,
                    Inst::CondBr {
                        if_true, if_false, ..
                    } if back(*if_true) || back(*if_false) => has_loop = true,
                    _ => {}
                }
            }
        }
    }
    let lg = (usize::BITS - blocks.max(1).leading_zeros() - 1) as usize;
    format!("f{funcs}-b{lg}{}", if has_loop { "-loop" } else { "" })
}

/// Region-shape bucket: boundary count quantized, plus (for compiled
/// modules) how many recovery slices restore from checkpoint slots.
fn region_shape_bucket(m: &Module, slices: Option<&cwsp_compiler::slice::SliceTable>) -> String {
    let boundaries = m
        .iter_functions()
        .flat_map(|(_, f)| f.iter_blocks())
        .flat_map(|(_, b)| &b.insts)
        .filter(|i| matches!(i, Inst::Boundary { .. }))
        .count();
    let slots = slices
        .map(|s| {
            s.iter()
                .flat_map(|(_, sl)| &sl.restores)
                .filter(|(_, src)| matches!(src, RsSource::Slot))
                .count()
        })
        .unwrap_or(0);
    format!("r{}-s{}", (boundaries / 4).min(15), (slots / 4).min(15))
}

// ---------------------------------------------------------------------------
// Delta-debugging minimizer.
// ---------------------------------------------------------------------------

/// Drop a function's unreachable blocks, renumbering branch targets.
/// Returns `None` when every block is reachable (nothing to do).
fn drop_unreachable_blocks(f: &cwsp_ir::function::Function) -> Option<Vec<Block>> {
    use cwsp_ir::function::BlockId;
    let n = f.blocks.len();
    let mut reach = vec![false; n];
    let mut stack = vec![0usize];
    reach[0] = true;
    while let Some(b) = stack.pop() {
        for i in &f.blocks[b].insts {
            let mut visit = |t: BlockId| {
                if let Some(r) = reach.get_mut(t.index()) {
                    if !*r {
                        *r = true;
                        stack.push(t.index());
                    }
                }
            };
            match i {
                Inst::Br { target } => visit(*target),
                Inst::CondBr {
                    if_true, if_false, ..
                } => {
                    visit(*if_true);
                    visit(*if_false);
                }
                _ => {}
            }
        }
    }
    if reach.iter().all(|&r| r) {
        return None;
    }
    let mut remap = vec![0u32; n];
    let mut next = 0u32;
    for (old, &r) in reach.iter().enumerate() {
        if r {
            remap[old] = next;
            next += 1;
        }
    }
    let rm = |t: BlockId| BlockId(remap[t.index()]);
    Some(
        f.blocks
            .iter()
            .enumerate()
            .filter(|(b, _)| reach[*b])
            .map(|(_, blk)| Block {
                insts: blk
                    .insts
                    .iter()
                    .map(|i| match i {
                        Inst::Br { target } => Inst::Br {
                            target: rm(*target),
                        },
                        Inst::CondBr {
                            cond,
                            if_true,
                            if_false,
                        } => Inst::CondBr {
                            cond: *cond,
                            if_true: rm(*if_true),
                            if_false: rm(*if_false),
                        },
                        other => other.clone(),
                    })
                    .collect(),
            })
            .collect(),
    )
}

/// Shrink `m` while `pred` keeps holding (and the module keeps validating).
///
/// Four reduction moves, iterated to a fixed point: replace whole function
/// bodies with a bare `Ret`, collapse `CondBr` to an unconditional `Br`,
/// drop the blocks that collapse made unreachable, and remove instruction
/// chunks (halves down to singles) from each block.
pub fn minimize(m: &Module, pred: &dyn Fn(&Module) -> bool) -> Module {
    let mut cur = m.clone();
    debug_assert!(pred(&cur), "minimizer seeded with a non-reproducing module");
    let accept =
        |cand: &Module, pred: &dyn Fn(&Module) -> bool| cand.validate().is_ok() && pred(cand);
    loop {
        let mut progressed = false;

        // Move 1: gut entire function bodies.
        let fids: Vec<_> = cur.iter_functions().map(|(fid, _)| fid).collect();
        for fid in &fids {
            if count_insts(&cur) <= 1 {
                break;
            }
            if cur.function(*fid).blocks.len() == 1 && cur.function(*fid).blocks[0].insts.len() <= 1
            {
                continue;
            }
            let mut cand = cur.clone();
            cand.function_mut(*fid).blocks = vec![Block {
                insts: vec![Inst::Ret { val: None }],
            }];
            if accept(&cand, pred) {
                cur = cand;
                progressed = true;
            }
        }

        // Move 2: collapse conditional branches.
        for fid in &fids {
            let nblocks = cur.function(*fid).blocks.len();
            for b in 0..nblocks {
                let Some(Inst::CondBr {
                    if_true, if_false, ..
                }) = cur.function(*fid).blocks[b].insts.last().cloned()
                else {
                    continue;
                };
                for target in [if_true, if_false] {
                    let mut cand = cur.clone();
                    let insts = &mut cand.function_mut(*fid).blocks[b].insts;
                    *insts.last_mut().unwrap() = Inst::Br { target };
                    if accept(&cand, pred) {
                        cur = cand;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        // Move 3: drop blocks the collapses made unreachable.
        for fid in &fids {
            if let Some(blocks) = drop_unreachable_blocks(cur.function(*fid)) {
                let mut cand = cur.clone();
                cand.function_mut(*fid).blocks = blocks;
                if accept(&cand, pred) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        // Move 4: chunked instruction removal, halving down to singles.
        for fid in &fids {
            let nblocks = cur.function(*fid).blocks.len();
            for b in 0..nblocks {
                let mut chunk = cur.function(*fid).blocks[b].insts.len().max(1) / 2;
                while chunk >= 1 {
                    let mut start = 0;
                    while start < cur.function(*fid).blocks[b].insts.len() {
                        let len = cur.function(*fid).blocks[b].insts.len();
                        let end = (start + chunk).min(len);
                        let mut cand = cur.clone();
                        cand.function_mut(*fid).blocks[b].insts.drain(start..end);
                        if accept(&cand, pred) {
                            cur = cand;
                            progressed = true;
                            // Same start now names the next chunk.
                        } else {
                            start = end;
                        }
                    }
                    chunk /= 2;
                }
            }
        }

        if !progressed {
            return cur;
        }
    }
}

// ---------------------------------------------------------------------------
// Per-seed differentials.
// ---------------------------------------------------------------------------

/// One seed's verdict, ready to serialize into the corpus.
struct SeedResult {
    kind: SeedKind,
    verdict: &'static str,
    detail: String,
    divergence: Option<String>,
    min_insts: Option<usize>,
    buckets: [String; 3],
}

fn run_sequential(cfg: &FuzzConfig, seed: u64, cache: &Mutex<AnalysisCache>) -> SeedResult {
    let m = generate(&SEQ_SPEC, seed);
    let c = crate::engine::engine().compiled(&m, CompileOptions::default());
    let full = analyze(&c.module, &c.slices);
    let incr = {
        let mut cache = cache.lock().unwrap();
        analyze_incremental(&c.module, &c.slices, &mut cache)
    };
    let buckets = [
        op_mix_bucket(&c.module),
        cfg_shape_bucket(&c.module),
        region_shape_bucket(&c.module, Some(&c.slices)),
    ];
    if norm_report(&full) != norm_report(&incr) {
        return SeedResult {
            kind: SeedKind::Sequential,
            verdict: "divergent",
            detail: "incremental analysis differs from full analysis".into(),
            divergence: Some(format!(
                "seed {seed}: incremental vs full analysis mismatch:\nfull:\n{}\nincremental:\n{}",
                full.render_text(),
                incr.render_text()
            )),
            min_insts: None,
            buckets,
        };
    }
    if full.is_clean() {
        if let Err(e) = check_all(&m, &c.module, &c.slices, cfg.max_steps) {
            return SeedResult {
                kind: SeedKind::Sequential,
                verdict: "divergent",
                detail: format!("static-clean but dynamically dirty: {e}"),
                divergence: Some(format!("seed {seed}: static-clean, dynamic checker: {e}")),
                min_insts: None,
                buckets,
            };
        }
    }
    // Reference-vs-fast interpreter differential on the source module.
    let r = cwsp_ir::reference::run_ref(&m, cfg.max_steps);
    let f = cwsp_ir::interp::run(&m, cfg.max_steps);
    let agree = match (&r, &f) {
        (Ok(a), Ok(b)) => {
            a.output == b.output && a.return_value == b.return_value && a.steps == b.steps
        }
        (Err(a), Err(b)) => format!("{a:?}") == format!("{b:?}"),
        _ => false,
    };
    if !agree {
        return SeedResult {
            kind: SeedKind::Sequential,
            verdict: "divergent",
            detail: "reference and fast interpreters disagree".into(),
            divergence: Some(format!(
                "seed {seed}: interpreter mismatch: ref={r:?} fast={f:?}"
            )),
            min_insts: None,
            buckets,
        };
    }
    SeedResult {
        kind: SeedKind::Sequential,
        verdict: "clean",
        detail: format!("diags={}", full.diagnostics.len()),
        divergence: None,
        min_insts: None,
        buckets,
    }
}

fn run_concurrent(cfg: &FuzzConfig, seed: u64) -> SeedResult {
    let spec = ConcSpec {
        cores: 2 + seed % 3,
        fences: seed.is_multiple_of(2),
        ..ConcSpec::default()
    };
    let m = generate_concurrent(&spec, seed);
    let cores = spec.cores as usize;
    let buckets = [
        op_mix_bucket(&m),
        cfg_shape_bucket(&m),
        region_shape_bucket(&m, None),
    ];
    let s = check_concurrency(
        &m,
        &RaceOptions {
            cores,
            ..RaceOptions::default()
        },
    );
    if s.diagnostics.is_empty() {
        let rep = check_module(
            &m,
            &OracleConfig {
                cores,
                schedules: cfg.schedules,
                ..OracleConfig::default()
            },
        );
        match rep {
            Ok(rep) if !rep.is_clean() => {
                return SeedResult {
                    kind: SeedKind::Concurrent,
                    verdict: "divergent",
                    detail: "static-race-clean but oracle found races".into(),
                    divergence: Some(format!(
                        "seed {seed}: static-clean, oracle races: {:?}",
                        rep.races.iter().map(|r| r.to_string()).collect::<Vec<_>>()
                    )),
                    min_insts: None,
                    buckets,
                };
            }
            Ok(_) => {}
            Err(e) => {
                return SeedResult {
                    kind: SeedKind::Concurrent,
                    verdict: "divergent",
                    detail: format!("oracle replay failed: {e}"),
                    divergence: Some(format!("seed {seed}: oracle replay failed: {e}")),
                    min_insts: None,
                    buckets,
                };
            }
        }
    }
    SeedResult {
        kind: SeedKind::Concurrent,
        verdict: "clean",
        detail: format!("static_diags={}", s.diagnostics.len()),
        divergence: None,
        min_insts: None,
        buckets,
    }
}

fn run_inject_ckpt(seed: u64) -> SeedResult {
    // Find a compiled module with a slot restore to corrupt (the generator
    // does not always produce one; scan forward deterministically).
    for probe in 0..16 {
        let m = generate(&SEQ_SPEC, seed.wrapping_add(probe * 0x9E37));
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        let mut bad = c.module.clone();
        let Some((region, reg)) = inject_dropped_ckpt(&mut bad, &c.slices) else {
            continue;
        };
        let caught = |m: &Module| {
            analyze(m, &c.slices)
                .diagnostics
                .iter()
                .any(|d| d.code == "I2-unsynced-slot" && d.region == Some(region.0))
        };
        let buckets = [
            op_mix_bucket(&bad),
            cfg_shape_bucket(&bad),
            region_shape_bucket(&bad, Some(&c.slices)),
        ];
        if !caught(&bad) {
            return SeedResult {
                kind: SeedKind::InjectCkpt,
                verdict: "missed",
                detail: format!("dropped ckpt of {reg:?} in {region:?} not flagged"),
                divergence: Some(format!(
                    "seed {seed}: injected dropped-ckpt ({region:?}, {reg:?}) NOT caught"
                )),
                min_insts: None,
                buckets,
            };
        }
        let min = minimize(&bad, &caught);
        return SeedResult {
            kind: SeedKind::InjectCkpt,
            verdict: "caught",
            detail: format!("I2-unsynced-slot on {region:?}, minimized"),
            divergence: None,
            min_insts: Some(count_insts(&min)),
            buckets,
        };
    }
    SeedResult {
        kind: SeedKind::InjectCkpt,
        verdict: "skipped",
        detail: "no slot restore found in 16 probes".into(),
        divergence: None,
        min_insts: None,
        buckets: ["-".into(), "-".into(), "-".into()],
    }
}

fn run_inject_store(seed: u64) -> SeedResult {
    let mut m = generate_concurrent(&ConcSpec::default(), seed);
    let Some(addr) = inject_unsynced_store(&mut m) else {
        return SeedResult {
            kind: SeedKind::InjectStore,
            verdict: "skipped",
            detail: "module has no shared global".into(),
            divergence: None,
            min_insts: None,
            buckets: ["-".into(), "-".into(), "-".into()],
        };
    };
    let caught = |m: &Module| {
        !check_concurrency(m, &RaceOptions::default())
            .diagnostics
            .is_empty()
    };
    let buckets = [
        op_mix_bucket(&m),
        cfg_shape_bucket(&m),
        region_shape_bucket(&m, None),
    ];
    if !caught(&m) {
        return SeedResult {
            kind: SeedKind::InjectStore,
            verdict: "missed",
            detail: format!("unsynced store to {addr:#x} not flagged"),
            divergence: Some(format!(
                "seed {seed}: injected unsynced store to {addr:#x} NOT caught"
            )),
            min_insts: None,
            buckets,
        };
    }
    let min = minimize(&m, &caught);
    SeedResult {
        kind: SeedKind::InjectStore,
        verdict: "caught",
        detail: format!("race on {addr:#x}, minimized"),
        divergence: None,
        min_insts: Some(count_insts(&min)),
        buckets,
    }
}

/// Dropped-flush self-check: autofence a generated module (must come out
/// I6-clean — a live translation validation), verify an injected redundant
/// flush normalizes away, then drop one flush and require the analyzer to
/// flag `I6-unflushed-store` with a witness rooted at the exact store the
/// flush covered.
fn run_inject_flush(seed: u64) -> SeedResult {
    let mut m = generate(&SEQ_SPEC, seed);
    autofence::run(&mut m);
    let buckets = [
        op_mix_bucket(&m),
        cfg_shape_bucket(&m),
        region_shape_bucket(&m, None),
    ];
    let fail = {
        let buckets = buckets.clone();
        move |detail: String, div: String| SeedResult {
            kind: SeedKind::InjectFlush,
            verdict: "missed",
            detail,
            divergence: Some(format!("seed {seed}: {div}")),
            min_insts: None,
            buckets: buckets.clone(),
        }
    };
    if !persist::i6_clean(&persist::check_module(&m).0) {
        return fail(
            "autofence output not I6-clean".into(),
            "translation validation failed: autofence output has I6 errors".into(),
        );
    }
    // Benign mutation: a duplicated flush must normalize away.
    let clean_text = cwsp_ir::pretty::fmt_module(&m);
    let mut dup = m.clone();
    if inject_redundant_flush(&mut dup).is_some() {
        autofence::run(&mut dup);
        if cwsp_ir::pretty::fmt_module(&dup) != clean_text {
            return fail(
                "redundant flush survived re-normalization".into(),
                "injected redundant flush NOT eliminated by autofence".into(),
            );
        }
    }
    let mut bad = m;
    let Some((fid, blk, store_idx)) = inject_dropped_flush(&mut bad) else {
        return SeedResult {
            kind: SeedKind::InjectFlush,
            verdict: "skipped",
            detail: "module has no flush to drop".into(),
            divergence: None,
            min_insts: None,
            buckets,
        };
    };
    let fname = bad.function(fid).name.clone();
    let located = persist::check_module(&bad).0.iter().any(|d| {
        d.code == "I6-unflushed-store"
            && d.severity == Severity::Error
            && d.location.function == fname
            && d.witness.as_ref().is_some_and(|w| {
                w.steps
                    .first()
                    .is_some_and(|s| s.block == blk && s.idx == store_idx)
            })
    });
    if !located {
        return fail(
            format!("dropped flush of store at b{blk}:{store_idx} not flagged"),
            format!("injected dropped-flush ({fname} b{blk}:{store_idx}) NOT caught with witness"),
        );
    }
    let caught = |m: &Module| {
        persist::check_module(m)
            .0
            .iter()
            .any(|d| d.code == "I6-unflushed-store" && d.severity == Severity::Error)
    };
    let min = minimize(&bad, &caught);
    SeedResult {
        kind: SeedKind::InjectFlush,
        verdict: "caught",
        detail: format!("I6-unflushed-store at {fname} b{blk}:{store_idx}, minimized"),
        divergence: None,
        min_insts: Some(count_insts(&min)),
        buckets,
    }
}

/// Dropped-fence self-check: autofence a generated module, drop one
/// `pfence`, and require `I6-unfenced-flush` reported *at the commit the
/// fence guarded*.
fn run_inject_fence(seed: u64) -> SeedResult {
    let mut m = generate(&SEQ_SPEC, seed);
    autofence::run(&mut m);
    let buckets = [
        op_mix_bucket(&m),
        cfg_shape_bucket(&m),
        region_shape_bucket(&m, None),
    ];
    if !persist::i6_clean(&persist::check_module(&m).0) {
        return SeedResult {
            kind: SeedKind::InjectFence,
            verdict: "missed",
            detail: "autofence output not I6-clean".into(),
            divergence: Some(format!(
                "seed {seed}: translation validation failed: autofence output has I6 errors"
            )),
            min_insts: None,
            buckets,
        };
    }
    let mut bad = m;
    let Some((fid, blk, commit_idx)) = inject_dropped_fence(&mut bad) else {
        return SeedResult {
            kind: SeedKind::InjectFence,
            verdict: "skipped",
            detail: "module has no pfence to drop".into(),
            divergence: None,
            min_insts: None,
            buckets,
        };
    };
    let fname = bad.function(fid).name.clone();
    let located = persist::check_module(&bad).0.iter().any(|d| {
        d.code == "I6-unfenced-flush"
            && d.severity == Severity::Error
            && d.location.function == fname
            && d.location.block == blk
            && d.location.inst == Some(commit_idx)
    });
    if !located {
        return SeedResult {
            kind: SeedKind::InjectFence,
            verdict: "missed",
            detail: format!("dropped pfence before b{blk}:{commit_idx} not flagged"),
            divergence: Some(format!(
                "seed {seed}: injected dropped-fence ({fname} b{blk}:{commit_idx}) \
                 NOT caught at the guarded commit"
            )),
            min_insts: None,
            buckets,
        };
    }
    let caught = |m: &Module| {
        persist::check_module(m)
            .0
            .iter()
            .any(|d| d.code == "I6-unfenced-flush" && d.severity == Severity::Error)
    };
    let min = minimize(&bad, &caught);
    SeedResult {
        kind: SeedKind::InjectFence,
        verdict: "caught",
        detail: format!("I6-unfenced-flush at {fname} b{blk}:{commit_idx}, minimized"),
        divergence: None,
        min_insts: Some(count_insts(&min)),
        buckets,
    }
}

// ---------------------------------------------------------------------------
// The farm driver.
// ---------------------------------------------------------------------------

fn corpus_record(seed_index: u64, gen_seed: u64, r: &SeedResult) -> Vec<u8> {
    let mut obj = vec![
        ("index".to_string(), Value::Int(seed_index)),
        ("seed".to_string(), Value::Int(gen_seed)),
        ("kind".to_string(), Value::Str(kind_str(r.kind).into())),
        ("verdict".to_string(), Value::Str(r.verdict.into())),
        ("detail".to_string(), Value::Str(r.detail.clone())),
    ];
    if let Some(n) = r.min_insts {
        obj.push(("min_insts".to_string(), Value::Int(n as u64)));
    }
    Value::Obj(obj).to_pretty().into_bytes()
}

/// Seed indices of `cfg`'s campaign already present in the spine.
fn done_seeds(spine: &Spine, fp: u64) -> Vec<u64> {
    spine
        .cursor_range(
            Key::fuzz_corpus(fp, 0),
            Key::fuzz_corpus(fp, u64::MAX),
            None,
        )
        .map(|(k, _, _)| k.b)
        .collect()
}

/// Run (or resume) the campaign described by `cfg` against the spine under
/// `dir`. Always idempotent: seed indices whose corpus entry already landed
/// are skipped, so re-invoking after a crash completes exactly the missing
/// work. Returns what this invocation observed.
pub fn run(dir: &Path, cfg: &FuzzConfig) -> io::Result<FuzzReport> {
    let fp = run_fp(cfg);
    let spine = Mutex::new(Spine::open(dir)?);
    let already: std::collections::HashSet<u64> = {
        let s = spine.lock().unwrap();
        done_seeds(&s, fp).into_iter().collect()
    };
    let pending: Vec<u64> = (0..cfg.budget).filter(|i| !already.contains(i)).collect();
    let resumed = cfg.budget - pending.len() as u64;

    // One work item per shard; each shard walks its own seeds in order and
    // commits [corpus + progress + coverage] atomically after every module.
    let cache = Mutex::new(AnalysisCache::new());
    let shard_ids: Vec<u64> = (0..cfg.shards).collect();
    let shard_outs: Vec<(u64, Vec<String>, u64, u64, usize)> = par_map(&shard_ids, |&shard| {
        let mut done_here = 0u64;
        let mut divergences: Vec<String> = Vec::new();
        let (mut injected, mut injected_caught, mut max_min) = (0u64, 0u64, 0usize);
        let mut coverage: BTreeMap<String, u64> = BTreeMap::new();
        for &i in pending.iter().filter(|&&i| i % cfg.shards == shard) {
            let gen_seed = cfg.seed_base.wrapping_add(i);
            let kind = seed_kind(cfg, i);
            let result = match kind {
                SeedKind::Sequential => run_sequential(cfg, gen_seed, &cache),
                SeedKind::Concurrent => run_concurrent(cfg, gen_seed),
                SeedKind::InjectCkpt => run_inject_ckpt(gen_seed),
                SeedKind::InjectStore => run_inject_store(gen_seed),
                SeedKind::InjectFlush => run_inject_flush(gen_seed),
                SeedKind::InjectFence => run_inject_fence(gen_seed),
            };
            done_here += 1;
            if !matches!(kind, SeedKind::Sequential | SeedKind::Concurrent)
                && result.verdict != "skipped"
            {
                injected += 1;
                if result.verdict == "caught" {
                    injected_caught += 1;
                }
            }
            if let Some(n) = result.min_insts {
                max_min = max_min.max(n);
            }
            if let Some(d) = &result.divergence {
                divergences.push(d.clone());
            }
            for b in &result.buckets {
                *coverage.entry(b.clone()).or_insert(0) += 1;
            }

            let progress = Value::Obj(vec![
                ("shard".into(), Value::Int(shard)),
                ("done".into(), Value::Int(done_here)),
                ("last_index".into(), Value::Int(i)),
                ("divergences".into(), Value::Int(divergences.len() as u64)),
            ]);
            let cov = Value::Obj(
                coverage
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Int(*v)))
                    .collect(),
            );
            let mut s = spine.lock().unwrap();
            // The atomic unit of the farm: corpus entry, shard cursor, and
            // coverage land together or not at all — kill -9 between
            // modules loses nothing, mid-module loses only that module.
            s.commit(vec![
                (Key::fuzz_corpus(fp, i), corpus_record(i, gen_seed, &result)),
                (
                    Key::fuzz_progress(fp, shard),
                    progress.to_pretty().into_bytes(),
                ),
                (Key::fuzz_coverage(fp, shard), cov.to_pretty().into_bytes()),
            ])
            .expect("spine commit");
        }
        (done_here, divergences, injected, injected_caught, max_min)
    });

    let mut report = FuzzReport {
        run_fp: fp,
        resumed,
        ..FuzzReport::default()
    };
    for (done, divs, inj, caught, max_min) in shard_outs {
        report.completed += done;
        report.divergences.extend(divs);
        report.injected += inj;
        report.injected_caught += caught;
        report.max_min_insts = report.max_min_insts.max(max_min);
    }

    // Manifest: cumulative campaign state, written last (it is the audit
    // anchor, not part of any per-seed atomic unit).
    {
        let mut s = spine.lock().unwrap();
        report.corpus_len = done_seeds(&s, fp).len() as u64;
        let prev_divs = s
            .get(Key::fuzz_manifest(fp))
            .and_then(|b| json::parse(std::str::from_utf8(b).ok()?).ok())
            .and_then(|v| v.get("divergences").and_then(Value::as_u64))
            .unwrap_or(0);
        let manifest = Value::Obj(vec![
            ("budget".into(), Value::Int(cfg.budget)),
            ("shards".into(), Value::Int(cfg.shards)),
            ("seed_base".into(), Value::Int(cfg.seed_base)),
            ("completed".into(), Value::Int(report.corpus_len)),
            (
                "divergences".into(),
                Value::Int(prev_divs + report.divergences.len() as u64),
            ),
        ]);
        s.commit(vec![(
            Key::fuzz_manifest(fp),
            manifest.to_pretty().into_bytes(),
        )])?;
    }

    // Surface farm counters next to the analyzer's in the harness report
    // (deep-merged: the lint subsection survives).
    let cache_stats = cache.lock().unwrap().stats();
    merge_harness_section(
        "analyzer",
        Value::Obj(vec![(
            "fuzz".into(),
            Value::Obj(vec![
                ("run_fp".into(), Value::Int(fp)),
                ("completed".into(), Value::Int(report.completed)),
                ("resumed".into(), Value::Int(report.resumed)),
                ("corpus".into(), Value::Int(report.corpus_len)),
                (
                    "divergences".into(),
                    Value::Int(report.divergences.len() as u64),
                ),
                ("injected".into(), Value::Int(report.injected)),
                ("injected_caught".into(), Value::Int(report.injected_caught)),
                ("incr_hits".into(), Value::Int(cache_stats.hits)),
                ("incr_misses".into(), Value::Int(cache_stats.misses)),
            ]),
        )]),
    );
    Ok(report)
}

/// Audit the campaign's corpus against its manifest: every seed index in
/// `[0, budget)` must be present exactly once (the resume guarantee), and
/// the stored divergence count is surfaced for CI gating.
pub fn manifest_check(dir: &Path, cfg: &FuzzConfig) -> io::Result<ManifestCheck> {
    let fp = run_fp(cfg);
    let spine = Spine::open(dir)?;
    let manifest = spine
        .get(Key::fuzz_manifest(fp))
        .and_then(|b| json::parse(std::str::from_utf8(b).ok()?).ok());
    let expected = manifest
        .as_ref()
        .and_then(|v| v.get("budget").and_then(Value::as_u64))
        .unwrap_or(cfg.budget);
    let divergences = manifest
        .as_ref()
        .and_then(|v| v.get("divergences").and_then(Value::as_u64))
        .unwrap_or(0);
    let mut check = ManifestCheck {
        expected,
        divergences,
        ..ManifestCheck::default()
    };
    let mut seen = std::collections::HashSet::new();
    for (k, _, _) in spine.cursor_range(
        Key::fuzz_corpus(fp, 0),
        Key::fuzz_corpus(fp, u64::MAX),
        None,
    ) {
        if k.b < expected {
            seen.insert(k.b);
        }
        if spine.history(k).len() > 1 {
            check.duplicated += 1;
        }
    }
    check.present = seen.len() as u64;
    check.missing = (0..expected).filter(|i| !seen.contains(i)).collect();
    Ok(check)
}

/// Render a one-screen text summary of a [`FuzzReport`].
pub fn render_report(r: &FuzzReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("fuzz farm run {:016x}\n", r.run_fp));
    out.push_str(&format!(
        "  completed {:>6}   resumed {:>6}   corpus {:>6}\n",
        r.completed, r.resumed, r.corpus_len
    ));
    out.push_str(&format!(
        "  injected  {:>6}   caught  {:>6}   max reproducer {} insts\n",
        r.injected, r.injected_caught, r.max_min_insts
    ));
    if r.divergences.is_empty() {
        out.push_str("  divergences: none\n");
    } else {
        out.push_str(&format!("  divergences: {}\n", r.divergences.len()));
        for d in &r.divergences {
            out.push_str(&format!("    {d}\n"));
        }
    }
    out
}

/// JSON rendering of a [`FuzzReport`] plus its [`ManifestCheck`].
pub fn report_json(r: &FuzzReport, check: &ManifestCheck) -> String {
    Value::Obj(vec![
        ("run_fp".into(), Value::Int(r.run_fp)),
        ("completed".into(), Value::Int(r.completed)),
        ("resumed".into(), Value::Int(r.resumed)),
        ("corpus".into(), Value::Int(r.corpus_len)),
        (
            "divergences".into(),
            Value::Arr(
                r.divergences
                    .iter()
                    .map(|d| Value::Str(d.clone()))
                    .collect(),
            ),
        ),
        ("injected".into(), Value::Int(r.injected)),
        ("injected_caught".into(), Value::Int(r.injected_caught)),
        ("max_min_insts".into(), Value::Int(r.max_min_insts as u64)),
        (
            "manifest".into(),
            Value::Obj(vec![
                ("expected".into(), Value::Int(check.expected)),
                ("present".into(), Value::Int(check.present)),
                ("duplicated".into(), Value::Int(check.duplicated)),
                (
                    "missing".into(),
                    Value::Arr(check.missing.iter().map(|&i| Value::Int(i)).collect()),
                ),
                ("complete".into(), Value::Bool(check.is_complete())),
            ]),
        ),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cwsp-fuzz-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn seed_kinds_cycle_deterministically() {
        let cfg = FuzzConfig::default(); // conc_every 3, inject_every 5
        assert_eq!(seed_kind(&cfg, 0), SeedKind::Sequential);
        assert_eq!(seed_kind(&cfg, 2), SeedKind::Concurrent);
        assert_eq!(seed_kind(&cfg, 4), SeedKind::InjectCkpt);
        assert_eq!(seed_kind(&cfg, 9), SeedKind::InjectStore);
        assert_eq!(seed_kind(&cfg, 14), SeedKind::InjectFlush);
        assert_eq!(seed_kind(&cfg, 19), SeedKind::InjectFence);
        assert_eq!(seed_kind(&cfg, 24), SeedKind::InjectCkpt);
    }

    #[test]
    fn run_fp_ignores_budget_but_not_sharding() {
        let a = FuzzConfig::default();
        let b = FuzzConfig {
            budget: a.budget * 2,
            ..a
        };
        assert_eq!(
            run_fp(&a),
            run_fp(&b),
            "budget extension keeps the campaign"
        );
        let c = FuzzConfig { shards: 7, ..a };
        assert_ne!(run_fp(&a), run_fp(&c), "resharding is a new campaign");
    }

    #[test]
    fn minimizer_shrinks_an_injected_race_to_a_handful_of_insts() {
        let mut m = generate_concurrent(&ConcSpec::default(), 3);
        inject_unsynced_store(&mut m).expect("shared global");
        let caught = |m: &Module| {
            !check_concurrency(m, &RaceOptions::default())
                .diagnostics
                .is_empty()
        };
        assert!(caught(&m));
        let before = count_insts(&m);
        let min = minimize(&m, &caught);
        assert!(caught(&min), "minimized module still reproduces");
        assert!(min.validate().is_ok());
        let after = count_insts(&min);
        assert!(
            after <= 10,
            "reproducer not minimal: {after} insts (from {before})"
        );
    }

    #[test]
    fn small_campaign_is_clean_and_resume_is_idempotent() {
        let dir = tmp_dir("campaign");
        // Budget 20 reaches every injection kind in the rotation (seed
        // indices 4, 9, 14, 19: ckpt, store, flush, fence).
        let cfg = FuzzConfig {
            shards: 2,
            budget: 20,
            schedules: 2,
            ..FuzzConfig::default()
        };
        let first = run(&dir, &cfg).unwrap();
        assert_eq!(first.completed, 20);
        assert_eq!(first.resumed, 0);
        assert!(first.divergences.is_empty(), "{:?}", first.divergences);
        assert_eq!(first.injected, first.injected_caught);
        let check = manifest_check(&dir, &cfg).unwrap();
        assert!(check.is_complete(), "{check:?}");

        // Re-running the same budget does no new work and duplicates nothing.
        let second = run(&dir, &cfg).unwrap();
        assert_eq!(second.completed, 0);
        assert_eq!(second.resumed, 20);
        assert!(manifest_check(&dir, &cfg).unwrap().is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
