//! I/O device with per-region redo buffers (§VIII "I/O and Device States").
//!
//! Irrevocable operations (device output) cannot be undone by re-execution,
//! so cWSP's discussion section proposes battery-backed FIFO redo buffers,
//! one per in-flight region: a region's I/O is held in its buffer and
//! released to the device only when the region becomes persisted. On power
//! failure the buffers of *persisted* regions are flushed front-to-rear,
//! stopping at the first unpersisted region — so the device state rolls back
//! exactly to the recovery point and re-execution re-emits the rest.
//!
//! The machine routes every `Out` effect through an [`IoDevice`]; the
//! "device" here is the observable output stream the crash-consistency
//! verifier compares against the oracle.

use cwsp_ir::types::{DynRegionId, Word};
use std::collections::BTreeMap;

/// A device fed through per-region redo buffers.
#[derive(Debug, Clone, Default)]
pub struct IoDevice {
    /// Output that reached the device (battery-backed, crash-surviving).
    flushed: Vec<Word>,
    /// Pending output per unpersisted region, in emission order.
    redo: BTreeMap<DynRegionId, Vec<Word>>,
}

impl IoDevice {
    /// An idle device.
    pub fn new() -> Self {
        IoDevice::default()
    }

    /// Hold `value` in `region`'s redo buffer.
    pub fn emit(&mut self, region: DynRegionId, value: Word) {
        self.redo.entry(region).or_default().push(value);
    }

    /// Bypass the redo buffers (schemes without region tracking).
    pub fn emit_direct(&mut self, value: Word) {
        self.flushed.push(value);
    }

    /// `region` persisted: release its buffer to the device.
    ///
    /// Regions retire from the RBT head in order, so front-to-rear FIFO
    /// release is preserved.
    pub fn flush_region(&mut self, region: DynRegionId) {
        if let Some(vals) = self.redo.remove(&region) {
            self.flushed.extend(vals);
        }
    }

    /// Output that reached the device so far.
    pub fn flushed(&self) -> &[Word] {
        &self.flushed
    }

    /// Words still held in redo buffers.
    pub fn pending(&self) -> usize {
        self.redo.values().map(Vec::len).sum()
    }

    /// Number of regions with pending I/O.
    pub fn pending_regions(&self) -> usize {
        self.redo.len()
    }

    /// Power failure: unpersisted regions' buffers are discarded (their
    /// regions re-execute and re-emit); the device keeps what was flushed.
    /// Returns the surviving output.
    pub fn crash(self) -> Vec<Word> {
        self.flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_held_until_region_persists() {
        let mut d = IoDevice::new();
        d.emit(DynRegionId(1), 10);
        d.emit(DynRegionId(1), 11);
        d.emit(DynRegionId(2), 20);
        assert_eq!(d.flushed(), &[] as &[Word]);
        assert_eq!(d.pending(), 3);
        assert_eq!(d.pending_regions(), 2);
        d.flush_region(DynRegionId(1));
        assert_eq!(d.flushed(), &[10, 11]);
        assert_eq!(d.pending(), 1);
        d.flush_region(DynRegionId(2));
        assert_eq!(d.flushed(), &[10, 11, 20]);
    }

    #[test]
    fn crash_discards_unpersisted_io() {
        let mut d = IoDevice::new();
        d.emit(DynRegionId(1), 1);
        d.flush_region(DynRegionId(1));
        d.emit(DynRegionId(2), 2); // never persisted
        let surviving = d.crash();
        assert_eq!(surviving, vec![1], "region 2's output re-emits on recovery");
    }

    #[test]
    fn direct_emission_bypasses_buffers() {
        let mut d = IoDevice::new();
        d.emit_direct(7);
        assert_eq!(d.flushed(), &[7]);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn flushing_unknown_region_is_a_noop() {
        let mut d = IoDevice::new();
        d.flush_region(DynRegionId(9));
        assert!(d.flushed().is_empty());
    }
}
