//! Persistence schemes: cWSP with per-feature toggles, plus every baseline
//! the paper compares against (§II, §IX-A/D).

/// The cWSP feature set — each flag corresponds to one bar group of the
/// Fig 15 ablation (region formation is a *compiler* property and is implied
/// by running a compiled binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CwspFeatures {
    /// Persist committed stores through the PB → persist path → WPQ pipeline.
    /// When off, stores only traverse the cache hierarchy ("+Region
    /// Formation" config: overhead = extra dynamic instructions only).
    pub persist_path: bool,
    /// Memory-controller speculation (§V-B): multiple regions persist
    /// concurrently under undo logging. When off, the core stalls at every
    /// region boundary until the previous region fully persisted (the
    /// conservative multi-MC handling of prior work, §II-B).
    pub mc_speculation: bool,
    /// Delay L1D write-buffer drains that race a pending persist (§V-A1).
    pub wb_delay: bool,
    /// Delay loads that hit a pending 8-byte WPQ entry (§V-A2).
    pub wpq_delay: bool,
}

impl Default for CwspFeatures {
    fn default() -> Self {
        CwspFeatures {
            persist_path: true,
            mc_speculation: true,
            wb_delay: true,
            wpq_delay: true,
        }
    }
}

/// Which persistence scheme the machine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// The original program on the original hardware, no crash consistency —
    /// the normalization baseline of every figure.
    #[default]
    Baseline,
    /// cWSP (§III–§V) with the given feature set.
    Cwsp(CwspFeatures),
    /// Capri (§II-C/D): per-core battery-backed redo buffer, 64-byte persist
    /// granularity, 8× write amplification from its redo+undo logging; the
    /// core stalls at a region end only when the redo buffer is saturated.
    Capri,
    /// ReplayCache adapted to a server-class core (§IX-A): cacheline-granular
    /// synchronous persistence with no speculation — every store waits for
    /// the persist round trip.
    ReplayCache,
    /// The ideal partial-system-persistence configuration
    /// (BBB/eADR/LightPC, §IX-D): battery-backed volatile hierarchy, but the
    /// DRAM cache is unavailable — every LLC miss pays full NVM latency. Use
    /// with `SimConfig::dram_cache = None`.
    #[allow(clippy::upper_case_acronyms)]
    IdealPsp,
    /// Compiler-certified flush/fence persistency: the `compiler::autofence`
    /// pass inserts a line-granular `flush` after every NVM-visible store and
    /// an ordering `pfence` before every commit point. The hardware offers no
    /// region speculation — a `pfence` stalls the core until every prior
    /// flush has reached the ADR domain. A flush materializes its line as
    /// eight 8-byte persist-path entries (64 bytes total — one line
    /// writeback), so path bandwidth is charged per line like clwb.
    AutoFence,
}

impl Scheme {
    /// The full cWSP design.
    pub fn cwsp() -> Self {
        Scheme::Cwsp(CwspFeatures::default())
    }

    /// Whether the scheme routes stores through a persist path.
    pub fn uses_persist_path(self) -> bool {
        match self {
            Scheme::Baseline | Scheme::IdealPsp => false,
            Scheme::Cwsp(f) => f.persist_path,
            Scheme::Capri | Scheme::ReplayCache | Scheme::AutoFence => true,
        }
    }

    /// Persist-path granularity in bytes (8 for cWSP, 64 for the cacheline
    /// schemes — §V-A2's eightfold bandwidth reduction). AutoFence sends
    /// 8-byte entries but a flush enqueues the whole line (eight of them),
    /// so its per-line bandwidth matches the cacheline schemes.
    pub fn persist_granularity(self) -> u64 {
        match self {
            Scheme::Cwsp(_) | Scheme::AutoFence => 8,
            _ => 64,
        }
    }

    /// Short display name for harness output.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Cwsp(_) => "cwsp",
            Scheme::Capri => "capri",
            Scheme::ReplayCache => "replaycache",
            Scheme::IdealPsp => "ideal-psp",
            Scheme::AutoFence => "autofence",
        }
    }

    /// Every scheme the harness can select, keyed by [`Scheme::name`]. The
    /// canonical list for name/parse round-trip tests: a variant added here
    /// but not to [`std::str::FromStr`] (or vice versa) fails the test
    /// instead of silently falling back to [`Scheme::Baseline`].
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::Baseline,
            Scheme::cwsp(),
            Scheme::Capri,
            Scheme::ReplayCache,
            Scheme::IdealPsp,
            Scheme::AutoFence,
        ]
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parse a [`Scheme::name`] string (e.g. an env-var or CLI selection).
    /// Unknown names are an error — never a silent Baseline fallback.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "baseline" => Ok(Scheme::Baseline),
            "cwsp" => Ok(Scheme::cwsp()),
            "capri" => Ok(Scheme::Capri),
            "replaycache" => Ok(Scheme::ReplayCache),
            "ideal-psp" => Ok(Scheme::IdealPsp),
            "autofence" => Ok(Scheme::AutoFence),
            other => Err(format!("unknown scheme '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let f = CwspFeatures::default();
        assert!(f.persist_path && f.mc_speculation && f.wb_delay && f.wpq_delay);
        assert_eq!(Scheme::cwsp().name(), "cwsp");
    }

    #[test]
    fn granularity_matches_paper() {
        assert_eq!(Scheme::cwsp().persist_granularity(), 8);
        assert_eq!(Scheme::Capri.persist_granularity(), 64);
        assert_eq!(Scheme::ReplayCache.persist_granularity(), 64);
    }

    #[test]
    fn every_scheme_name_round_trips_through_parse() {
        // The fix for env-selected schemes silently degrading to Baseline:
        // every variant's name must parse back to exactly that variant.
        for s in Scheme::all() {
            let parsed: Scheme = s.name().parse().expect("name parses");
            assert_eq!(parsed, s, "round trip for {}", s.name());
        }
        assert!("clwb".parse::<Scheme>().is_err(), "unknown names error");
        assert!("".parse::<Scheme>().is_err());
    }

    #[test]
    fn autofence_is_a_persist_path_scheme() {
        assert!(Scheme::AutoFence.uses_persist_path());
        assert_eq!(Scheme::AutoFence.persist_granularity(), 8);
        assert_eq!(Scheme::AutoFence.name(), "autofence");
    }

    #[test]
    fn path_usage() {
        assert!(!Scheme::Baseline.uses_persist_path());
        assert!(!Scheme::IdealPsp.uses_persist_path());
        assert!(Scheme::Capri.uses_persist_path());
        let f = CwspFeatures {
            persist_path: false,
            ..Default::default()
        };
        assert!(!Scheme::Cwsp(f).uses_persist_path());
    }
}
