//! Figure 13: normalized slowdown of cWSP to the baseline across all 38
//! applications (paper: 6% average; SPLASH3 worst due to write-dense short
//! regions; persist path bandwidth 4 GB/s).

use cwsp_bench::{measure_all, print_results, slowdown};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig13_overhead", run);
}

fn run() {
    let cfg = SimConfig::default();
    let apps = cwsp_workloads::all();
    let results = measure_all(&apps, |w| {
        slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
    });
    print_results(
        "Fig 13: cWSP normalized slowdown (paper: all-gmean 1.06, SPLASH3 highest)",
        "x",
        &results,
    );
}
