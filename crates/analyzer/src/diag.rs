//! The diagnostics model: severities, invariant families, locations, path
//! witnesses, and the [`Report`] container with human-readable and JSON
//! rendering.
//!
//! Every finding the analyzer produces is a [`Diagnostic`]: *what* rule was
//! violated (invariant family + stable rule code), *where* (function, block,
//! instruction), *how bad* (severity), and — for the path-sensitive checks —
//! *why* (a concrete [`PathWitness`] through the CFG that exhibits the
//! violation). "Static-clean" means: no error-severity diagnostics.

use std::fmt;

/// Version of the JSON diagnostics document emitted by [`Report::to_json`]
/// and the `cwsp-lint --json` envelope. Bump whenever a field is renamed or
/// removed, or a diagnostic code changes meaning; adding new codes (as the
/// concurrency layer's `R-*`/`I5-*` families did in v2) is backward
/// compatible but still recorded here so downstream consumers can gate.
///
/// v3: diagnostics are deterministically ordered (sorted by location, code,
/// region, severity — see [`Report::normalize`]) instead of discovery order,
/// and the `cwsp-lint` envelope grew an optional `incremental` cache-stats
/// object.
///
/// v4: the durability-ordering family (`I6-*`, [`Invariant::DurabilityOrder`])
/// joined the taxonomy and the `cwsp-lint` envelope grew an optional
/// `analyzer.persistency` counters object (emitted under `--persist`).
pub const SCHEMA_VERSION: u32 = 4;

/// How serious a diagnostic is. `Error` means a crash-consistency invariant
/// is (or may be) violated; recovery correctness is not guaranteed.
/// `Warning` flags suspicious-but-survivable constructs; `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious construct; recovery still sound.
    Warning,
    /// A proven or unprovable-safe violation of a crash-consistency rule.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The statically-checked invariant families of the cWSP correctness
/// argument (§IV, §VIII), plus the general lint bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// I1 — no region stores to a word or register it previously read from
    /// pre-region state (§IV-A).
    Idempotence,
    /// I2 — every register live across a boundary is restorable: present in
    /// the slice and slot-synced on every path to the boundary (§IV-B).
    CheckpointCoverage,
    /// I3 — every recovery-slice source reproduces the live-in value: slots
    /// synced, constants provably equal, expression leaves intact (§IV-C).
    SliceWellFormed,
    /// I4 — structural placement rules: boundaries at joins, loop headers,
    /// calls, and synchronization points; regions non-empty and well-shaped.
    Structure,
    /// I5 — persist-order / stale-read safety (§VIII): a store whose word
    /// escapes to another core must be separated from the releasing
    /// synchronization point by a region boundary, so the escaping value is
    /// never published out of a still-open (revertible) region — the static
    /// mirror of the memory controller's stale-read-avoidance rule.
    PersistOrder,
    /// I6 — durability ordering (flush/fence persistency): every NVM-visible
    /// store is flushed, and the flush is fenced, before any commit point
    /// (publication, synchronization, call/return, halt) on every path — the
    /// static contract certified against `compiler::autofence` output by
    /// translation validation.
    DurabilityOrder,
    /// R — data races between core entry-function instances: conflicting
    /// accesses not ordered by a common lockset or an acquire/release
    /// happens-before chain.
    DataRace,
    /// L — general IR lints (not crash-consistency invariants per se).
    Lint,
}

impl Invariant {
    /// Stable short id (`I1`..`I5`, `R`, `L`).
    pub fn id(self) -> &'static str {
        match self {
            Invariant::Idempotence => "I1",
            Invariant::CheckpointCoverage => "I2",
            Invariant::SliceWellFormed => "I3",
            Invariant::Structure => "I4",
            Invariant::PersistOrder => "I5",
            Invariant::DurabilityOrder => "I6",
            Invariant::DataRace => "R",
            Invariant::Lint => "L",
        }
    }

    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::Idempotence => "idempotence",
            Invariant::CheckpointCoverage => "checkpoint-coverage",
            Invariant::SliceWellFormed => "slice-well-formed",
            Invariant::Structure => "structure",
            Invariant::PersistOrder => "persist-order",
            Invariant::DurabilityOrder => "durability-order",
            Invariant::DataRace => "data-race",
            Invariant::Lint => "lint",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a diagnostic points: `function/bbN[idx]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Location {
    /// Function name.
    pub function: String,
    /// Basic-block id within the function.
    pub block: u32,
    /// Instruction index within the block; `None` for block-level findings.
    pub inst: Option<usize>,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(i) => write!(f, "{}/bb{}[{}]", self.function, self.block, i),
            None => write!(f, "{}/bb{}", self.function, self.block),
        }
    }
}

/// One step of a counterexample path: a position plus what happens there.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WitnessStep {
    /// Basic-block id.
    pub block: u32,
    /// Instruction index within the block.
    pub idx: usize,
    /// Rendered instruction or explanation for this step.
    pub note: String,
}

/// A concrete path through the CFG exhibiting a violation, from the point
/// where the hazard is created to the point where it strikes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathWitness {
    /// Path steps in execution order.
    pub steps: Vec<WitnessStep>,
    /// How many interior steps were elided to keep the witness readable.
    pub omitted: usize,
}

impl PathWitness {
    /// Build a witness from steps, eliding the middle beyond `keep` steps.
    pub fn elided(mut steps: Vec<WitnessStep>, keep: usize) -> Self {
        let omitted = if steps.len() > keep {
            let excess = steps.len() - keep;
            // Keep the head (hazard creation) and tail (violation).
            let head = keep / 3;
            steps.drain(head..head + excess);
            excess
        } else {
            0
        };
        PathWitness { steps, omitted }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Invariant family the finding belongs to.
    pub invariant: Invariant,
    /// Stable rule code, e.g. `I1-mem-war` or `L-unreachable-block`.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Primary location.
    pub location: Location,
    /// Static region id the finding is attributed to, when known.
    pub region: Option<u32>,
    /// Counterexample path, for the path-sensitive checks.
    pub witness: Option<PathWitness>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        if let Some(r) = self.region {
            write!(f, " (region R{r})")?;
        }
        Ok(())
    }
}

/// Aggregate analysis counters, surfaced through the observability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Functions analyzed (invalid functions are counted but skipped).
    pub functions: usize,
    /// Explicit region boundaries in the module.
    pub regions_total: usize,
    /// Boundaries whose region has no error-severity finding.
    pub regions_proven: usize,
    /// Wall time of the analysis in nanoseconds.
    pub analysis_ns: u64,
}

/// The result of analyzing one module.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Module name.
    pub module: String,
    /// All findings, in (function, block, inst) discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Aggregate counters.
    pub counters: Counters,
}

impl Report {
    /// Number of diagnostics at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether the module is static-clean: no error-severity diagnostics.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Highest severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Drop duplicate findings, keyed by (rule, location, region) and
    /// keeping first-discovered order. The same hazard reached via several
    /// paths (or phrased with path-dependent message details) renders once;
    /// the first witness — the shortest path discovered — is the one kept.
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.diagnostics
            .retain(|d| seen.insert((d.code, d.location.clone(), d.region)));
    }

    /// Canonicalize the report: [`Report::dedup`] (first-discovered witness
    /// wins), then sort diagnostics by (location, code, region, severity,
    /// message). Rendering a normalized report is byte-stable no matter what
    /// order passes — or cache layers, or shards — emitted the findings in,
    /// which is what lets `analyze_incremental` promise byte-identical
    /// output to a from-scratch `analyze`.
    pub fn normalize(&mut self) {
        self.dedup();
        self.diagnostics.sort_by(|x, y| {
            (
                &x.location.function,
                x.location.block,
                x.location.inst,
                x.code,
                x.region,
                x.severity,
                &x.message,
            )
                .cmp(&(
                    &y.location.function,
                    y.location.block,
                    y.location.inst,
                    y.code,
                    y.region,
                    y.severity,
                    &y.message,
                ))
        });
    }

    /// Render the report as human-readable text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}: {} error(s), {} warning(s), {} info(s); {}/{} regions proven",
            self.module,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.counters.regions_proven,
            self.counters.regions_total,
        );
        for d in &self.diagnostics {
            let _ = writeln!(s, "  {d}");
            if let Some(w) = &d.witness {
                for (i, step) in w.steps.iter().enumerate() {
                    if w.omitted > 0 && i == w.steps.len().saturating_sub(1) / 2 + 1 {
                        let _ = writeln!(s, "      ... ({} steps omitted)", w.omitted);
                    }
                    let _ = writeln!(s, "      via bb{}[{}]: {}", step.block, step.idx, step.note);
                }
            }
        }
        s
    }

    /// Render the report as JSON (hand-rolled; the analyzer has no external
    /// dependencies and must not depend on downstream crates).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"module\":{},\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{},\
             \"functions\":{},\"regions_total\":{},\"regions_proven\":{},\"analysis_ns\":{}}},\
             \"diagnostics\":[",
            json_str(&self.module),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.counters.functions,
            self.counters.regions_total,
            self.counters.regions_proven,
            self.counters.analysis_ns,
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"severity\":\"{}\",\"invariant\":\"{}\",\"code\":{},\"function\":{},\
                 \"block\":{},",
                d.severity,
                d.invariant,
                json_str(d.code),
                json_str(&d.location.function),
                d.location.block,
            );
            match d.location.inst {
                Some(idx) => {
                    let _ = write!(s, "\"inst\":{idx},");
                }
                None => s.push_str("\"inst\":null,"),
            }
            match d.region {
                Some(r) => {
                    let _ = write!(s, "\"region\":{r},");
                }
                None => s.push_str("\"region\":null,"),
            }
            let _ = write!(s, "\"message\":{}", json_str(&d.message));
            if let Some(w) = &d.witness {
                let _ = write!(s, ",\"witness\":{{\"omitted\":{},\"steps\":[", w.omitted);
                for (j, step) in w.steps.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"block\":{},\"idx\":{},\"note\":{}}}",
                        step.block,
                        step.idx,
                        json_str(&step.note)
                    );
                }
                s.push_str("]}");
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_diag(sev: Severity) -> Diagnostic {
        Diagnostic {
            severity: sev,
            invariant: Invariant::Idempotence,
            code: "I1-mem-war",
            message: "store may overwrite a word loaded earlier in the region".into(),
            location: Location {
                function: "main".into(),
                block: 2,
                inst: Some(5),
            },
            region: Some(3),
            witness: Some(PathWitness {
                steps: vec![
                    WitnessStep {
                        block: 1,
                        idx: 0,
                        note: "load r1, [0x40]".into(),
                    },
                    WitnessStep {
                        block: 2,
                        idx: 5,
                        note: "store r2, [0x40]".into(),
                    },
                ],
                omitted: 0,
            }),
        }
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report {
            module: "m".into(),
            ..Default::default()
        };
        assert!(r.is_clean());
        r.diagnostics.push(sample_diag(Severity::Warning));
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        r.diagnostics.push(sample_diag(Severity::Error));
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn dedup_keys_on_rule_location_region() {
        let mut r = Report::default();
        r.diagnostics.push(sample_diag(Severity::Error));
        r.diagnostics.push(sample_diag(Severity::Error));
        // Same (rule, location, region) with a path-dependent message: the
        // first-discovered phrasing wins.
        let mut reworded = sample_diag(Severity::Error);
        reworded.message = "same hazard, different path".into();
        r.diagnostics.push(reworded);
        // Different location: kept.
        let mut other = sample_diag(Severity::Error);
        other.location.block = 9;
        r.diagnostics.push(other);
        // Different region at the same location: kept.
        let mut other_region = sample_diag(Severity::Error);
        other_region.region = Some(8);
        r.diagnostics.push(other_region);
        r.dedup();
        assert_eq!(r.diagnostics.len(), 3);
        assert!(r.diagnostics[0]
            .message
            .contains("store may overwrite a word"));
    }

    #[test]
    fn schema_version_is_stable() {
        // CI parses the `cwsp-lint --json` envelope and gates on this exact
        // value; any change to it must be deliberate (field rename/removal
        // or a diagnostic code changing meaning), never incidental.
        assert_eq!(SCHEMA_VERSION, 4);
    }

    #[test]
    fn normalize_orders_and_dedups_deterministically() {
        let mut fwd = Report::default();
        let mut a = sample_diag(Severity::Error);
        a.location.block = 9;
        let b = sample_diag(Severity::Warning);
        fwd.diagnostics.push(a.clone());
        fwd.diagnostics.push(b.clone());
        fwd.diagnostics.push(b.clone()); // duplicate: dropped
        let mut rev = Report::default();
        rev.diagnostics.push(b.clone());
        rev.diagnostics.push(a.clone());
        fwd.normalize();
        rev.normalize();
        assert_eq!(fwd.diagnostics, rev.diagnostics, "order-independent");
        assert_eq!(fwd.diagnostics.len(), 2);
        assert_eq!(fwd.render_text(), rev.render_text());
        // Sorted by location: block 2 before block 9.
        assert_eq!(fwd.diagnostics[0].location.block, 2);
    }

    #[test]
    fn text_rendering_includes_witness_steps() {
        let mut r = Report {
            module: "demo".into(),
            ..Default::default()
        };
        r.diagnostics.push(sample_diag(Severity::Error));
        let text = r.render_text();
        assert!(text.contains("demo: 1 error(s)"), "{text}");
        assert!(text.contains("I1-mem-war"), "{text}");
        assert!(text.contains("via bb1[0]: load r1, [0x40]"), "{text}");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report {
            module: "de\"mo".into(),
            ..Default::default()
        };
        let mut d = sample_diag(Severity::Error);
        d.message = "line1\nline2".into();
        r.diagnostics.push(d);
        let j = r.to_json();
        assert!(j.contains("\"module\":\"de\\\"mo\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("\"witness\""), "{j}");
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces: {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn witness_elision_keeps_head_and_tail() {
        let steps: Vec<WitnessStep> = (0..30)
            .map(|i| WitnessStep {
                block: 0,
                idx: i,
                note: format!("step {i}"),
            })
            .collect();
        let w = PathWitness::elided(steps, 12);
        assert_eq!(w.steps.len(), 12);
        assert_eq!(w.omitted, 18);
        assert_eq!(w.steps[0].idx, 0, "head kept");
        assert_eq!(w.steps.last().unwrap().idx, 29, "tail kept");
    }

    #[test]
    fn invariant_ids_are_stable() {
        assert_eq!(Invariant::Idempotence.id(), "I1");
        assert_eq!(Invariant::CheckpointCoverage.id(), "I2");
        assert_eq!(Invariant::SliceWellFormed.id(), "I3");
        assert_eq!(Invariant::Structure.id(), "I4");
        assert_eq!(Invariant::PersistOrder.id(), "I5");
        assert_eq!(Invariant::DurabilityOrder.id(), "I6");
        assert_eq!(Invariant::DataRace.id(), "R");
        assert_eq!(Invariant::Lint.id(), "L");
        assert_eq!(Invariant::PersistOrder.name(), "persist-order");
        assert_eq!(Invariant::DurabilityOrder.name(), "durability-order");
        assert_eq!(Invariant::DataRace.name(), "data-race");
    }
}
