//! Sparse set-associative cache models.
//!
//! Tags only — data always lives in the interpreter's architectural memory and
//! the machine's NVM image. Sparse set storage (a map from set index to its
//! ways) is what lets a 4 GB direct-mapped DRAM cache (64 M sets) or the
//! paper's multi-GB footprints simulate in megabytes of host memory.

use crate::config::CacheParams;
use std::collections::HashMap;

/// Cacheline size in bytes (fixed at 64, as in the paper).
pub const LINE_BYTES: u64 = 64;

/// The line-aligned address of `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty line evicted to make room, if any (line-aligned address).
    pub writeback: Option<u64>,
}

/// One set-associative, write-back, write-allocate cache level (LRU).
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: HashMap<u64, Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    dirty: bool,
    last_use: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(params: CacheParams) -> Self {
        Cache { params, sets: HashMap::new(), tick: 0, hits: 0, misses: 0 }
    }

    /// The geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    fn index_tag(&self, addr: u64) -> (u64, u64) {
        let line = line_of(addr) / LINE_BYTES;
        let sets = self.params.sets();
        (line % sets, line / sets)
    }

    /// Access `addr`; allocates on miss. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        self.tick += 1;
        let (index, tag) = self.index_tag(addr);
        let assoc = self.params.assoc as usize;
        let set = self.sets.entry(index).or_default();
        if let Some(w) = set.iter_mut().find(|w| w.tag == tag) {
            w.last_use = self.tick;
            w.dirty |= write;
            self.hits += 1;
            return AccessResult { hit: true, writeback: None };
        }
        self.misses += 1;
        let mut writeback = None;
        if set.len() >= assoc {
            // Evict the LRU way.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(lru);
            if victim.dirty {
                let sets = self.params.sets();
                writeback = Some((victim.tag * sets + index) * LINE_BYTES);
            }
        }
        set.push(Way { tag, dirty: write, last_use: self.tick });
        AccessResult { hit: false, writeback }
    }

    /// Whether `addr`'s line is present (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let (index, tag) = self.index_tag(addr);
        self.sets.get(&index).is_some_and(|s| s.iter().any(|w| w.tag == tag))
    }

    /// Invalidate `addr`'s line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (index, tag) = self.index_tag(addr);
        if let Some(set) = self.sets.get_mut(&index) {
            if let Some(i) = set.iter().position(|w| w.tag == tag) {
                return set.swap_remove(i).dirty;
            }
        }
        false
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio so far (0.0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets × 2 ways × 64 B = 256 B
        Cache::new(CacheParams { size_bytes: 256, assoc: 2, hit_cycles: 1 })
    }

    #[test]
    fn hit_after_allocate() {
        let mut c = small();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(8, false).hit, "same line");
        assert!(!c.access(64, false).hit, "different set");
        assert_eq!(c.stats(), (2, 2));
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut c = small();
        // set 0 holds lines 0 and 128 (2 ways); 256 evicts LRU (0).
        c.access(0, true); // dirty
        c.access(128, false);
        let r = c.access(256, false);
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(0), "dirty line 0 written back");
        // line 0 is gone
        assert!(!c.probe(0));
        assert!(c.probe(128) && c.probe(256));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0, false);
        c.access(128, false);
        let r = c.access(256, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = small();
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // refresh 0; 128 becomes LRU
        let r = c.access(256, false);
        assert_eq!(r.writeback, None);
        assert!(c.probe(0), "recently used line survives");
        assert!(!c.probe(128));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access(0, true);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(!c.invalidate(0), "second invalidate is a no-op");
        c.access(64, false);
        assert!(!c.invalidate(64), "clean line");
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 2 sets × 1 way
        let mut c = Cache::new(CacheParams { size_bytes: 128, assoc: 1, hit_cycles: 1 });
        c.access(0, true);
        let r = c.access(128, false); // same set (sets=2 ⇒ line 2 maps to set 0)
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn writeback_address_reconstruction() {
        // Verify tag/index round trip for a larger geometry.
        let mut c = Cache::new(CacheParams { size_bytes: 64 << 10, assoc: 2, hit_cycles: 1 });
        let a = 0xdead_b000u64;
        c.access(a, true);
        // fill the set with conflicting lines to force eviction of `a`
        let sets = c.params().sets();
        let conflict1 = a + sets * LINE_BYTES;
        let conflict2 = a + 2 * sets * LINE_BYTES;
        c.access(conflict1, false);
        let r = c.access(conflict2, false);
        assert_eq!(r.writeback, Some(line_of(a)));
    }

    #[test]
    fn sparse_storage_stays_small_for_giant_caches() {
        let mut c = Cache::new(CacheParams { size_bytes: 4 << 30, assoc: 1, hit_cycles: 1 });
        for i in 0..1000u64 {
            c.access(i * 4096, true);
        }
        assert!(c.sets.len() <= 1000);
    }
}
