//! Post-crash forensic investigation driver — the library half of the
//! `cwsp-forensics` binary.
//!
//! Wraps [`CwspSystem::investigate_crash`] with workload lookup, seeded
//! kill-cycle sweeps, and JSON shaping for the CI schema check. Every sweep
//! also lands a compact summary in the spine's telemetry keyspace (via
//! [`crate::engine::Engine::commit_telemetry`]), so the fleet's forensic
//! history accumulates next to the figure results.

use crate::json::{self, Value};
use cwsp_core::system::{CrashInvestigation, CwspSystem};

/// Replay budget per recovery (matches `core::verify`'s end-to-end checks).
pub const MAX_REPLAY_STEPS: u64 = 50_000_000;

/// Kill cycles are drawn from `[50, 50 + KILL_SPAN)` — wide enough to land
/// in every phase of the bundled workloads' persist behaviour.
pub const KILL_SPAN: u64 = 40_000;

/// Compile `workload` (by figure label) into a ready-to-crash system.
///
/// # Errors
/// An unknown workload name.
pub fn system_for(workload: &str) -> Result<CwspSystem, String> {
    let w = cwsp_workloads::by_name(workload)
        .ok_or_else(|| format!("unknown workload `{workload}` (see list_workloads)"))?;
    Ok(CwspSystem::compile(&w.module))
}

/// Crash `system` at `kill_cycle` and run the full forensic pipeline:
/// journal, frontier, reconstruction, per-core replay cross-check.
///
/// # Errors
/// Simulation traps, journal I/O failures, and recovery errors, rendered.
pub fn investigate(system: &CwspSystem, kill_cycle: u64) -> Result<CrashInvestigation, String> {
    system
        .investigate_crash(kill_cycle, MAX_REPLAY_STEPS)
        .map_err(|e| format!("crash@{kill_cycle}: {e}"))
}

/// One investigation as a JSON document (the `--json` single-run shape).
pub fn investigation_json(workload: &str, kill_cycle: u64, inv: &CrashInvestigation) -> Value {
    let mut fields = vec![
        ("schema".into(), Value::Str("cwsp-forensics-run-v1".into())),
        ("workload".into(), Value::Str(workload.into())),
        ("kill_cycle".into(), Value::Int(kill_cycle)),
        ("completed".into(), Value::Bool(inv.completed)),
    ];
    if let Some(p) = &inv.journal_path {
        fields.push(("journal".into(), Value::Str(p.display().to_string())));
    }
    if let Some(rep) = &inv.report {
        fields.push(("matched".into(), Value::Bool(rep.all_matched())));
        fields.push(("lost_stores".into(), Value::Int(rep.counts().lost())));
        fields.push(("replayed_steps".into(), Value::Int(inv.replayed_steps)));
        // The report renders its own JSON; re-parse so it embeds as a
        // value, not an escaped string.
        match json::parse(&rep.to_json()) {
            Ok(r) => fields.push(("report".into(), r)),
            Err(e) => fields.push(("report_error".into(), Value::Str(e))),
        }
    }
    Value::Obj(fields)
}

/// Aggregate outcome of a seeded kill-cycle sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    /// Workload under investigation.
    pub workload: String,
    /// Injections attempted (= the `--sweep N` argument).
    pub injections: u64,
    /// Runs that actually crashed mid-execution.
    pub effective: u64,
    /// Effective runs whose frontier prediction matched the replay exactly.
    pub matched: u64,
    /// Runs that completed before their kill cycle.
    pub completed: u64,
    /// Total lost stores across effective runs.
    pub lost_stores: u64,
    /// Total undo-reverted stores across effective runs.
    pub reverted: u64,
    /// The kill cycles drawn (deterministic given the seed).
    pub kill_cycles: Vec<u64>,
}

impl SweepSummary {
    /// Whether every effective injection cross-checked clean.
    pub fn all_matched(&self) -> bool {
        self.matched == self.effective
    }
}

/// Run `n` seeded kill-cycle injections against `workload`. Deterministic:
/// the same `(workload, n, seed)` draws the same kill cycles.
///
/// # Errors
/// Workload lookup and any per-injection failure (fail-fast).
pub fn sweep(workload: &str, n: usize, seed: u64) -> Result<SweepSummary, String> {
    let system = system_for(workload)?;
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut sum = SweepSummary {
        workload: workload.to_string(),
        ..SweepSummary::default()
    };
    for _ in 0..n {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let kill = 50 + (s >> 33) % KILL_SPAN;
        sum.kill_cycles.push(kill);
        let inv = investigate(&system, kill).map_err(|e| format!("{workload}: {e}"))?;
        sum.injections += 1;
        if inv.completed {
            sum.completed += 1;
            continue;
        }
        let rep = inv.report.as_ref().expect("crashed run carries a report");
        sum.effective += 1;
        if rep.all_matched() {
            sum.matched += 1;
        }
        let c = rep.counts();
        sum.lost_stores += c.lost();
        sum.reverted += c.reverted;
    }
    Ok(sum)
}

/// A sweep summary as a JSON document (the `--json --sweep` shape).
pub fn sweep_json(sum: &SweepSummary) -> Value {
    Value::Obj(vec![
        (
            "schema".into(),
            Value::Str("cwsp-forensics-sweep-v1".into()),
        ),
        ("workload".into(), Value::Str(sum.workload.clone())),
        ("injections".into(), Value::Int(sum.injections)),
        ("effective".into(), Value::Int(sum.effective)),
        ("matched".into(), Value::Int(sum.matched)),
        ("completed".into(), Value::Int(sum.completed)),
        ("all_matched".into(), Value::Bool(sum.all_matched())),
        ("lost_stores".into(), Value::Int(sum.lost_stores)),
        ("reverted".into(), Value::Int(sum.reverted)),
        (
            "kill_cycles".into(),
            Value::Arr(sum.kill_cycles.iter().map(|&c| Value::Int(c)).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_is_an_error_not_a_panic() {
        assert!(system_for("no-such-app").is_err());
        assert!(sweep("no-such-app", 1, 0).is_err());
    }

    #[test]
    fn single_investigation_shapes_json() {
        let system = system_for("kmeans").unwrap();
        let inv = investigate(&system, 9_000).unwrap();
        assert!(!inv.completed);
        let v = investigation_json("kmeans", 9_000, &inv);
        assert_eq!(v.get("matched"), Some(&Value::Bool(true)));
        assert_eq!(v.get("workload"), Some(&Value::Str("kmeans".into())));
        let rep = v.get("report").expect("embedded report");
        assert!(rep.get("counts").is_some());
        assert!(rep.get("cross_checks").is_some());
        // The document round-trips through its own serializer.
        assert!(json::parse(&v.to_pretty()).is_ok());
    }

    #[test]
    fn sweep_is_deterministic_and_matches() {
        let a = sweep("kmeans", 4, 7).unwrap();
        let b = sweep("kmeans", 4, 7).unwrap();
        assert_eq!(a.kill_cycles, b.kill_cycles);
        assert_eq!(a.matched, b.matched);
        assert!(a.all_matched(), "{a:?}");
        assert!(a.effective > 0);
        let v = sweep_json(&a);
        assert_eq!(v.get("all_matched"), Some(&Value::Bool(true)));
    }
}
