//! Re-export of the canonical FxHash implementation in `cwsp-ir`.
//!
//! The hasher originally lived here (the cache model was its first user); the
//! paged [`cwsp_ir::Memory`] now needs it one layer down, so the definition
//! moved to [`cwsp_ir::fxhash`] and this module keeps the `sim::hash` path
//! working for the cache model and the bench fingerprints.

pub use cwsp_ir::fxhash::{FxBuildHasher, FxHashMap, FxHasher};
