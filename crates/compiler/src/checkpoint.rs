//! Live-out register checkpointing (§IV-B).
//!
//! Power failure destroys the register file; every region's live-in registers
//! must be reconstructible. This pass inserts [`Inst::Ckpt`] instructions —
//! stores of register values to per-register NVM slots — in one of two modes:
//!
//! * [`CkptMode::DefSite`] (cWSP): a backward **needs** dataflow tracks which
//!   register values are live across *some* region boundary; one checkpoint is
//!   placed immediately after each such definition. Definitions whose value
//!   never crosses a boundary get no checkpoint at all.
//! * [`CkptMode::PerBoundary`] (the unpruned baseline for the Fig 15
//!   ablation, iDO-style): every region checkpoints *all* of its live-out
//!   registers right before the boundary that ends it — simple but heavy on
//!   NVM write traffic.
//!
//! Both modes uphold the slot invariant the recovery slices rely on: at every
//! explicit boundary, each live-in register's slot holds exactly the value the
//! register has at that boundary (verified dynamically by
//! [`crate::verify::check_slices`]).

use crate::liveness::{defs, Liveness, RegSet};
use cwsp_ir::cfg;
use cwsp_ir::function::Function;
use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_ir::types::Reg;
use std::collections::BTreeMap;

/// Checkpoint placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptMode {
    /// Checkpoint after each boundary-crossing definition (cWSP, pruned by
    /// [`crate::prune`]).
    #[default]
    DefSite,
    /// Checkpoint every live register at every region end (unpruned
    /// baseline).
    PerBoundary,
}

/// Insert checkpoints into every function of `module`. Returns the number of
/// `Ckpt` instructions inserted.
pub fn insert_checkpoints(module: &mut Module, mode: CkptMode) -> usize {
    let mut total = 0;
    for fid in 0..module.function_count() {
        let fid = cwsp_ir::module::FuncId(fid as u32);
        let f = module.function(fid).clone();
        let positions = match mode {
            CkptMode::DefSite => def_site_positions(&f),
            CkptMode::PerBoundary => per_boundary_positions(&f),
        };
        total += positions.values().map(Vec::len).sum::<usize>();
        let fm = module.function_mut(fid);
        apply_positions(fm, positions);
    }
    total
}

/// Positions keyed by `(block, insert-before-idx)` → registers to checkpoint.
type Positions = BTreeMap<(u32, usize), Vec<Reg>>;

fn apply_positions(f: &mut Function, positions: Positions) {
    // Insert bottom-up per block so indices stay valid.
    for (&(b, i), regs) in positions.iter().rev() {
        let insts = &mut f.blocks[b as usize].insts;
        for r in regs.iter().rev() {
            insts.insert(i, Inst::Ckpt { reg: *r });
        }
        let _ = i;
    }
}

/// PerBoundary mode: before each `Boundary`, checkpoint all registers live at
/// the region start it introduces (== live across the boundary).
fn per_boundary_positions(f: &Function) -> Positions {
    let lv = Liveness::compute(f);
    let mut pos: Positions = BTreeMap::new();
    for (bid, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if matches!(inst, Inst::Boundary { .. }) {
                let live = lv.live_after(f, bid, i);
                let regs: Vec<Reg> = live.iter().collect();
                if !regs.is_empty() {
                    pos.insert((bid.0, i), regs);
                }
            }
        }
    }
    pos
}

/// DefSite mode: backward "needs" dataflow.
///
/// `needs` = registers whose *current* value must eventually be checkpointed
/// because it is live at some boundary downstream. At a boundary, all live
/// registers join `needs`; at a definition of `r ∈ needs`, a checkpoint is
/// placed right after the definition and `r` leaves the set. Residual needs at
/// function entry (parameters and zero-initialized registers) are checkpointed
/// at the top of the entry block.
fn def_site_positions(f: &Function) -> Positions {
    let lv = Liveness::compute(f);
    let nregs = f.reg_count as usize;
    let nblocks = f.blocks.len();
    // needs_in[b] = needs at the top of block b (flowing backward).
    let mut needs_in = vec![RegSet::new(nregs); nblocks];
    let order: Vec<_> = {
        let mut rpo = cfg::reverse_post_order(f);
        rpo.reverse();
        rpo
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut needs = RegSet::new(nregs);
            for s in cfg::successors(f, b) {
                needs.union_with(&needs_in[s.index()]);
            }
            let insts = &f.block(b).insts;
            for i in (0..insts.len()).rev() {
                transfer(f, &lv, b, i, &mut needs);
            }
            if needs != needs_in[b.index()] {
                needs_in[b.index()] = needs;
                changed = true;
            }
        }
    }
    // Final sweep: record checkpoint sites deterministically.
    let mut pos: Positions = BTreeMap::new();
    for (bid, block) in f.iter_blocks() {
        let mut needs = RegSet::new(nregs);
        for s in cfg::successors(f, bid) {
            needs.union_with(&needs_in[s.index()]);
        }
        // Walk backward recording sites.
        let mut sites: Vec<(usize, Reg)> = Vec::new();
        for i in (0..block.insts.len()).rev() {
            for d in defs(&block.insts[i]) {
                if needs.contains(d) {
                    sites.push((i + 1, d)); // checkpoint right after the def
                }
            }
            transfer(f, &lv, bid, i, &mut needs);
        }
        for (i, r) in sites {
            pos.entry((bid.0, i)).or_default().push(r);
        }
        if bid == f.entry() {
            // Residual needs: parameters and zero-initialized registers.
            let residual: Vec<Reg> = needs.iter().collect();
            if !residual.is_empty() {
                pos.entry((bid.0, 0)).or_default().extend(residual);
            }
        }
    }
    for regs in pos.values_mut() {
        regs.sort_unstable();
        regs.dedup();
    }
    pos
}

/// Backward transfer of the needs set across instruction `(b, i)`.
fn transfer(
    f: &Function,
    lv: &Liveness,
    b: cwsp_ir::function::BlockId,
    i: usize,
    needs: &mut RegSet,
) {
    let inst = &f.block(b).insts[i];
    // Definitions satisfy (and kill) the need.
    for d in defs(inst) {
        needs.remove(d);
    }
    if matches!(inst, Inst::Boundary { .. }) {
        // Every register live across this boundary needs a persisted copy.
        let live = lv.live_after(f, b, i);
        needs.union_with(&live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, MemRef, Operand};
    use cwsp_ir::types::RegionId;

    fn count_ckpts(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Ckpt { .. }))
            .count()
    }

    fn single(b: FunctionBuilder, m: &mut Module) -> cwsp_ir::module::FuncId {
        let e = b.entry();
        let _ = e;
        let id = m.add_function(b.build());
        m.set_entry(id);
        id
    }

    #[test]
    fn value_crossing_boundary_is_checkpointed_after_def() {
        // r = 5 ; boundary ; store r
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(5));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let id = single(b, &mut m);
        let n = insert_checkpoints(&mut m, CkptMode::DefSite);
        assert_eq!(n, 1);
        let f = m.function(id);
        let insts = &f.block(f.entry()).insts;
        assert!(
            matches!(insts[1], Inst::Ckpt { reg } if reg == r),
            "ckpt directly after the def: {insts:?}"
        );
    }

    #[test]
    fn value_not_crossing_boundary_is_not_checkpointed() {
        // r = 5 ; store r ; boundary ; store 1
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(5));
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, Operand::imm(1), MemRef::abs(72));
        b.push(e, Inst::Halt);
        single(b, &mut m);
        assert_eq!(insert_checkpoints(&mut m, CkptMode::DefSite), 0);
    }

    #[test]
    fn per_boundary_mode_checkpoints_all_live() {
        // r1 = 1; r2 = 2; boundary; use both
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r1 = b.mov(e, Operand::imm(1));
        let r2 = b.mov(e, Operand::imm(2));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        let s = b.bin(e, BinOp::Add, r1.into(), r2.into());
        b.push(
            e,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let id = single(b, &mut m);
        let n = insert_checkpoints(&mut m, CkptMode::PerBoundary);
        assert_eq!(n, 2);
        let f = m.function(id);
        let insts = &f.block(f.entry()).insts;
        // both ckpts precede the boundary
        let b_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Boundary { .. }))
            .unwrap();
        assert!(matches!(insts[b_idx - 1], Inst::Ckpt { .. }));
        assert!(matches!(insts[b_idx - 2], Inst::Ckpt { .. }));
    }

    #[test]
    fn def_site_mode_emits_fewer_or_equal_ckpts_than_per_boundary() {
        // Two boundaries with the same value live across both: DefSite emits
        // one ckpt; PerBoundary emits one per boundary.
        let build = || {
            let mut m = Module::new("t");
            let mut b = FunctionBuilder::new("main", 0);
            let e = b.entry();
            let r = b.mov(e, Operand::imm(5));
            b.push(e, Inst::Boundary { id: RegionId(0) });
            b.store(e, r.into(), MemRef::abs(64));
            b.push(e, Inst::Boundary { id: RegionId(1) });
            b.store(e, r.into(), MemRef::abs(72));
            b.push(e, Inst::Halt);
            let id = m.add_function(b.build());
            m.set_entry(id);
            m
        };
        let mut m1 = build();
        let n_def = insert_checkpoints(&mut m1, CkptMode::DefSite);
        let mut m2 = build();
        let n_per = insert_checkpoints(&mut m2, CkptMode::PerBoundary);
        assert_eq!(n_def, 1);
        assert_eq!(n_per, 2);
    }

    #[test]
    fn call_restores_are_recheckpointed_when_needed() {
        // live = 1; [call saves live]; boundary after call region; use live.
        // The Call's restore *re-defines* live, so a fresh ckpt must follow
        // the call — otherwise the slot would hold the callee's clobber.
        let mut m = Module::new("t");
        let mut leaf = FunctionBuilder::new("leaf", 0);
        let le = leaf.entry();
        leaf.push(le, Inst::Ret { val: None });
        let leaf = m.add_function(leaf.build());
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let live = b.mov(e, Operand::imm(1));
        b.push(
            e,
            Inst::Call {
                func: leaf,
                args: vec![],
                ret: None,
                save_regs: vec![live],
            },
        );
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, live.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let id = single(b, &mut m);
        insert_checkpoints(&mut m, CkptMode::DefSite);
        let f = m.function(id);
        let insts = &f.block(f.entry()).insts;
        let call_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Call { .. }))
            .unwrap();
        assert!(
            matches!(insts[call_idx + 1], Inst::Ckpt { reg } if reg == live),
            "ckpt after the call refreshes the slot: {insts:?}"
        );
    }

    #[test]
    fn entry_residual_needs_checkpoint_parameters() {
        // fn f(p): boundary; store p  -> p must be slot-backed at entry.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let p = b.param(0);
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, p.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        insert_checkpoints(&mut m, CkptMode::DefSite);
        let f = m.function(id);
        assert!(
            matches!(f.block(f.entry()).insts[0], Inst::Ckpt { reg } if reg == p),
            "param checkpointed at entry"
        );
    }

    #[test]
    fn semantics_preserved() {
        use cwsp_ir::builder::build_counted_loop;
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(20), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let id = m.add_function(b.build());
        m.set_entry(id);
        crate::region::form_regions(&mut m);
        let before = cwsp_ir::interp::run(&m, 100_000).unwrap().return_value;
        let n = insert_checkpoints(&mut m, CkptMode::DefSite);
        assert!(n > 0);
        assert!(m.validate().is_ok());
        let after = cwsp_ir::interp::run(&m, 100_000).unwrap().return_value;
        assert_eq!(before, after);
        let _ = count_ckpts(m.function(m.entry().unwrap()));
    }
}
