//! The simulated C library: allocator and memory primitives in IR.
//!
//! These functions are ordinary IR — the cWSP compiler partitions them into
//! idempotent regions like any user code, which is exactly the paper's point
//! about `malloc` and `sbrk` (§III-A): library state (the break pointer, the
//! free list) lives in NVM and survives power failure like everything else.

use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
use cwsp_ir::layout;
use cwsp_ir::module::{FuncId, GlobalId, Module};

/// Word indices within the heap-metadata global.
const BREAK_PTR: i64 = 0;
const FREELIST_HEAD: i64 = 1;
const ALLOC_COUNT: i64 = 2;
const FREE_COUNT: i64 = 3;

/// Install `malloc`/`free`/`sbrk`; returns `(heap_meta, malloc, free, sbrk)`.
pub fn install_alloc(m: &mut Module) -> (GlobalId, FuncId, FuncId, FuncId) {
    let meta = m.add_global_init("heap_meta", 4, vec![layout::HEAP_BASE]);

    // sbrk(words): old = break; break += words*8 + 8; return old.
    // (The extra word stores the block size for a smarter free, and keeps
    // blocks 8-byte separated.)
    let sbrk = {
        let mut b = FunctionBuilder::new("sbrk", 1);
        let e = b.entry();
        let words = b.param(0);
        let old = b.load(e, MemRef::global(meta, BREAK_PTR));
        let bytes = b.bin(e, BinOp::Shl, words.into(), Operand::imm(3));
        let new = b.bin(e, BinOp::Add, old.into(), bytes.into());
        b.store(e, new.into(), MemRef::global(meta, BREAK_PTR));
        b.push(
            e,
            Inst::Ret {
                val: Some(old.into()),
            },
        );
        m.add_function(b.build())
    };

    // malloc(words): if freelist non-empty pop it, else sbrk. The free list
    // is a LIFO of blocks whose first word links to the next block.
    let malloc = {
        let mut b = FunctionBuilder::new("malloc", 1);
        let e = b.entry();
        let from_list = b.block();
        let from_sbrk = b.block();
        let words = b.param(0);
        let head = b.load(e, MemRef::global(meta, FREELIST_HEAD));
        let cnt = b.load(e, MemRef::global(meta, ALLOC_COUNT));
        let cnt2 = b.bin(e, BinOp::Add, cnt.into(), Operand::imm(1));
        b.store(e, cnt2.into(), MemRef::global(meta, ALLOC_COUNT));
        b.push(
            e,
            Inst::CondBr {
                cond: head.into(),
                if_true: from_list,
                if_false: from_sbrk,
            },
        );
        // pop: head' = [head]; return head
        let next = b.load(from_list, MemRef::reg(head, 0));
        b.store(from_list, next.into(), MemRef::global(meta, FREELIST_HEAD));
        b.push(
            from_list,
            Inst::Ret {
                val: Some(head.into()),
            },
        );
        // fresh block from sbrk
        let p = b
            .call(from_sbrk, sbrk, vec![words.into()], true)
            .expect("ret");
        b.push(
            from_sbrk,
            Inst::Ret {
                val: Some(p.into()),
            },
        );
        m.add_function(b.build())
    };

    // free(ptr): [ptr] = head; head = ptr.
    let free = {
        let mut b = FunctionBuilder::new("free", 1);
        let e = b.entry();
        let ptr = b.param(0);
        let head = b.load(e, MemRef::global(meta, FREELIST_HEAD));
        b.store(e, head.into(), MemRef::reg(ptr, 0));
        b.store(e, ptr.into(), MemRef::global(meta, FREELIST_HEAD));
        let cnt = b.load(e, MemRef::global(meta, FREE_COUNT));
        let cnt2 = b.bin(e, BinOp::Add, cnt.into(), Operand::imm(1));
        b.store(e, cnt2.into(), MemRef::global(meta, FREE_COUNT));
        b.push(e, Inst::Ret { val: None });
        m.add_function(b.build())
    };

    (meta, malloc, free, sbrk)
}

/// Install `calloc(words) -> ptr` (malloc + zeroing) and
/// `memcmp(a, b, words) -> first-diff-index+1 or 0`; returns
/// `(calloc, memcmp)`.
pub fn install_extras(m: &mut Module, malloc: FuncId, memset: FuncId) -> (FuncId, FuncId) {
    // calloc(words): p = malloc(words); memset(p, 0, words); return p.
    let calloc = {
        let mut b = FunctionBuilder::new("calloc", 1);
        let e = b.entry();
        let words = b.param(0);
        let p = b.call(e, malloc, vec![words.into()], true).expect("ret");
        b.call(
            e,
            memset,
            vec![p.into(), Operand::imm(0), words.into()],
            false,
        );
        b.push(
            e,
            Inst::Ret {
                val: Some(p.into()),
            },
        );
        m.add_function(b.build())
    };
    // memcmp(a, b, words): returns (first differing index + 1), or 0 if equal.
    let memcmp = {
        let mut b = FunctionBuilder::new("memcmp", 3);
        let e = b.entry();
        let (pa, pb, words) = (b.param(0), b.param(1), b.param(2));
        let header = b.block();
        let body = b.block();
        let diff = b.block();
        let next = b.block();
        let done = b.block();
        let i = b.vreg();
        b.push(
            e,
            Inst::Mov {
                dst: i,
                src: Operand::imm(0),
            },
        );
        b.push(e, Inst::Br { target: header });
        let c = b.bin(header, BinOp::CmpLtU, i.into(), words.into());
        b.push(
            header,
            Inst::CondBr {
                cond: c.into(),
                if_true: body,
                if_false: done,
            },
        );
        let off = b.bin(body, BinOp::Shl, i.into(), Operand::imm(3));
        let aa = b.bin(body, BinOp::Add, pa.into(), off.into());
        let ba = b.bin(body, BinOp::Add, pb.into(), off.into());
        let va = b.load(body, MemRef::reg(aa, 0));
        let vb = b.load(body, MemRef::reg(ba, 0));
        let ne = b.bin(body, BinOp::CmpNe, va.into(), vb.into());
        b.push(
            body,
            Inst::CondBr {
                cond: ne.into(),
                if_true: diff,
                if_false: next,
            },
        );
        let r = b.bin(diff, BinOp::Add, i.into(), Operand::imm(1));
        b.push(
            diff,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let i2 = b.bin(next, BinOp::Add, i.into(), Operand::imm(1));
        b.push(
            next,
            Inst::Mov {
                dst: i,
                src: i2.into(),
            },
        );
        b.push(next, Inst::Br { target: header });
        b.push(
            done,
            Inst::Ret {
                val: Some(Operand::imm(0)),
            },
        );
        m.add_function(b.build())
    };
    (calloc, memcmp)
}

/// Install `memcpy`/`memset`; returns `(memcpy, memset)`.
pub fn install_mem(m: &mut Module) -> (FuncId, FuncId) {
    // memcpy(dst, src, words) -> dst
    let memcpy = {
        let mut b = FunctionBuilder::new("memcpy", 3);
        let e = b.entry();
        let (dst, src, words) = (b.param(0), b.param(1), b.param(2));
        let (_, exit) = build_counted_loop(&mut b, e, words.into(), |b, bb, i| {
            let off = b.bin(bb, BinOp::Shl, i.into(), Operand::imm(3));
            let s = b.bin(bb, BinOp::Add, src.into(), off.into());
            let d = b.bin(bb, BinOp::Add, dst.into(), off.into());
            let v = b.load(bb, MemRef::reg(s, 0));
            b.store(bb, v.into(), MemRef::reg(d, 0));
        });
        b.push(
            exit,
            Inst::Ret {
                val: Some(dst.into()),
            },
        );
        m.add_function(b.build())
    };
    // memset(dst, value, words) -> dst
    let memset = {
        let mut b = FunctionBuilder::new("memset", 3);
        let e = b.entry();
        let (dst, value, words) = (b.param(0), b.param(1), b.param(2));
        let (_, exit) = build_counted_loop(&mut b, e, words.into(), |b, bb, i| {
            let off = b.bin(bb, BinOp::Shl, i.into(), Operand::imm(3));
            let d = b.bin(bb, BinOp::Add, dst.into(), off.into());
            b.store(bb, value.into(), MemRef::reg(d, 0));
        });
        b.push(
            exit,
            Inst::Ret {
                val: Some(dst.into()),
            },
        );
        m.add_function(b.build())
    };
    (memcpy, memset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::interp::run;

    fn with_main(
        build: impl FnOnce(&mut Module, &mut FunctionBuilder, super::super::Runtime),
    ) -> Module {
        let mut m = Module::new("t");
        let rt = crate::Runtime::install(&mut m);
        let mut b = FunctionBuilder::new("main", 0);
        build(&mut m, &mut b, rt);
        let main = m.add_function(b.build());
        m.set_entry(main);
        m
    }

    #[test]
    fn sbrk_bumps_the_break() {
        let m = with_main(|_, b, rt| {
            let e = b.entry();
            let p1 = b.call(e, rt.sbrk, vec![Operand::imm(4)], true).unwrap();
            let p2 = b.call(e, rt.sbrk, vec![Operand::imm(4)], true).unwrap();
            let d = b.bin(e, BinOp::Sub, p2.into(), p1.into());
            b.push(
                e,
                Inst::Ret {
                    val: Some(d.into()),
                },
            );
        });
        assert_eq!(run(&m, 10_000).unwrap().return_value, Some(32));
    }

    #[test]
    fn malloc_free_reuses_blocks() {
        let m = with_main(|_, b, rt| {
            let e = b.entry();
            let p1 = b.call(e, rt.malloc, vec![Operand::imm(8)], true).unwrap();
            b.call(e, rt.free, vec![p1.into()], false);
            let p2 = b.call(e, rt.malloc, vec![Operand::imm(8)], true).unwrap();
            // LIFO free list: p2 == p1
            let same = b.bin(e, BinOp::CmpEq, p1.into(), p2.into());
            b.push(
                e,
                Inst::Ret {
                    val: Some(same.into()),
                },
            );
        });
        assert_eq!(run(&m, 10_000).unwrap().return_value, Some(1));
    }

    #[test]
    fn malloc_returns_distinct_live_blocks() {
        let m = with_main(|_, b, rt| {
            let e = b.entry();
            let p1 = b.call(e, rt.malloc, vec![Operand::imm(2)], true).unwrap();
            let p2 = b.call(e, rt.malloc, vec![Operand::imm(2)], true).unwrap();
            b.store(e, Operand::imm(11), MemRef::reg(p1, 0));
            b.store(e, Operand::imm(22), MemRef::reg(p2, 0));
            let a = b.load(e, MemRef::reg(p1, 0));
            let c = b.load(e, MemRef::reg(p2, 0));
            let s = b.bin(e, BinOp::Add, a.into(), c.into());
            b.push(
                e,
                Inst::Ret {
                    val: Some(s.into()),
                },
            );
        });
        assert_eq!(run(&m, 10_000).unwrap().return_value, Some(33));
    }

    #[test]
    fn memcpy_and_memset_work() {
        let m = with_main(|_, b, rt| {
            let e = b.entry();
            let src = b.call(e, rt.malloc, vec![Operand::imm(4)], true).unwrap();
            let dst = b.call(e, rt.malloc, vec![Operand::imm(4)], true).unwrap();
            b.call(
                e,
                rt.memset,
                vec![src.into(), Operand::imm(9), Operand::imm(4)],
                false,
            );
            b.call(
                e,
                rt.memcpy,
                vec![dst.into(), src.into(), Operand::imm(4)],
                false,
            );
            let v = b.load(e, MemRef::reg(dst, 24));
            b.push(
                e,
                Inst::Ret {
                    val: Some(v.into()),
                },
            );
        });
        assert_eq!(run(&m, 100_000).unwrap().return_value, Some(9));
    }

    #[test]
    fn calloc_zeroes_and_memcmp_compares() {
        let m = with_main(|_, b, rt| {
            let e = b.entry();
            let p = b.call(e, rt.malloc, vec![Operand::imm(4)], true).unwrap();
            b.call(
                e,
                rt.memset,
                vec![p.into(), Operand::imm(9), Operand::imm(4)],
                false,
            );
            b.call(e, rt.free, vec![p.into()], false);
            // calloc reuses the freed block and must zero the stale 9s.
            let q = b.call(e, rt.calloc, vec![Operand::imm(4)], true).unwrap();
            let v = b.load(e, MemRef::reg(q, 16));
            let r = b.call(e, rt.calloc, vec![Operand::imm(4)], true).unwrap();
            let eq = b
                .call(
                    e,
                    rt.memcmp,
                    vec![q.into(), r.into(), Operand::imm(4)],
                    true,
                )
                .unwrap();
            b.store(e, Operand::imm(5), MemRef::reg(r, 8));
            let ne = b
                .call(
                    e,
                    rt.memcmp,
                    vec![q.into(), r.into(), Operand::imm(4)],
                    true,
                )
                .unwrap();
            // v=0, eq=0, ne=2 (first diff at index 1 → 2)
            let s1 = b.bin(e, BinOp::Add, v.into(), eq.into());
            let s2 = b.bin(e, BinOp::Add, s1.into(), ne.into());
            b.push(
                e,
                Inst::Ret {
                    val: Some(s2.into()),
                },
            );
        });
        assert_eq!(run(&m, 100_000).unwrap().return_value, Some(2));
    }

    #[test]
    fn allocator_functions_compile_into_regions() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        let m = with_main(|_, b, rt| {
            let e = b.entry();
            let p = b.call(e, rt.malloc, vec![Operand::imm(4)], true).unwrap();
            b.call(e, rt.free, vec![p.into()], false);
            let q = b.call(e, rt.malloc, vec![Operand::imm(4)], true).unwrap();
            b.push(
                e,
                Inst::Ret {
                    val: Some(q.into()),
                },
            );
        });
        let oracle = run(&m, 100_000).unwrap();
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        // malloc's load-then-store of the break pointer forces antidep cuts.
        assert!(c.stats.antidep_cuts > 0);
        let out = run(&c.module, 200_000).unwrap();
        assert_eq!(out.return_value, oracle.return_value);
        cwsp_compiler::verify::check_all(&m, &c.module, &c.slices, 200_000).unwrap();
    }
}
