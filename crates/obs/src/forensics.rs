//! Post-crash forensics: turn a flight journal plus the post-crash machine
//! into evidence.
//!
//! Given the decoded journal ([`crate::flight::FlightRecord`]s) and a
//! [`MachineFrontier`] snapshot (what the simulator's persist machinery
//! held at the kill cycle), this module reconstructs the crash-instant
//! frontier:
//!
//! * **committed** — the store drained out of the WPQ to NVM media;
//! * **in-WPQ** — accepted by a memory controller (the ADR domain, so
//!   durable) but not yet drained;
//! * **in-path** / **in-PB** — issued but still in the persist buffer or on
//!   the wire at the crash: lost;
//! * **reverted** — reached the WPQ speculatively (undo-logged) and was
//!   rolled back by crash recovery: lost;
//!
//! plus the executed-but-unissued tail (`pending`, uncommitted `sync`
//! writes) and the dirty-in-cache line sets. Every lost store is attributed
//! to (function, region, cause), and the whole frontier is cross-checked
//! against what recovery *actually* replayed: resuming from the per-core
//! resume region, replay must re-execute exactly the unretired journal
//! stores in issue order, then the pending and sync tails — an exact,
//! per-address sequence match (see `tests/flight_forensics.rs`).

use crate::flight::{FlightKind, FlightRecord, REGION_NONE};
use std::collections::HashMap;
use std::collections::VecDeque;

/// One core's share of the crash-instant persist frontier, snapshotted from
/// the machine before it is consumed into a crash image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreFrontier {
    /// Dynamic region id of the persisted resume point (the oldest region
    /// recovery will re-execute), when one was ever written.
    pub resume_region: Option<u64>,
    /// Whether the core had architecturally halted.
    pub halted: bool,
    /// Persist-buffer entries in issue order: (addr, region, sent-to-path).
    pub pb: Vec<(u64, u64, bool)>,
    /// Executed stores waiting for persist-buffer space, in order.
    pub pending: Vec<u64>,
    /// Writes of an uncommitted atomic/fence, in order.
    pub sync_pending: Vec<u64>,
    /// Line addresses parked in the write buffer (dirty, evicted, not yet
    /// drained to memory).
    pub wb_lines: Vec<u64>,
    /// Dirty L1 line addresses.
    pub dirty_l1: Vec<u64>,
}

/// The crash-instant state of the whole persist machinery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineFrontier {
    /// Cycle the power failed.
    pub crash_cycle: u64,
    /// Per-core frontiers.
    pub cores: Vec<CoreFrontier>,
    /// Per-MC WPQ contents: (addr, region) still queued for media.
    pub wpq: Vec<Vec<(u64, u64)>>,
    /// Live undo-log records at the crash (these get rolled back).
    pub live_log_records: u64,
}

/// Where a journaled store ended up at the crash instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFate {
    /// Drained out of the WPQ to NVM media.
    Committed,
    /// Accepted into a WPQ (ADR domain — durable) but not yet drained.
    InWpq,
    /// Sent from the persist buffer, in flight on the persist path.
    InPath,
    /// Still in the per-core persist buffer.
    InPb,
    /// Reached the WPQ speculatively and was undone by the crash revert.
    Reverted,
}

impl StoreFate {
    /// Stable lowercase name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            StoreFate::Committed => "committed",
            StoreFate::InWpq => "in_wpq",
            StoreFate::InPath => "in_path",
            StoreFate::InPb => "in_pb",
            StoreFate::Reverted => "reverted",
        }
    }

    /// Whether the store's effect was lost at the crash.
    pub fn is_lost(&self) -> bool {
        matches!(
            self,
            StoreFate::InPath | StoreFate::InPb | StoreFate::Reverted
        )
    }
}

/// The full lineage of one journaled store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLineage {
    /// Issuing core.
    pub core: u8,
    /// Static function attribution, when known.
    pub func: Option<u32>,
    /// Dynamic region id.
    pub region: u64,
    /// Store address.
    pub addr: u64,
    /// Cycle the store entered the persist buffer.
    pub issue_cycle: u64,
    /// Cycle the store was accepted into a WPQ, if it got that far.
    pub wpq_cycle: Option<u64>,
    /// Cycle the WPQ slot drained to media, if it got that far.
    pub commit_cycle: Option<u64>,
    /// Accepting memory controller.
    pub mc: u8,
    /// Whether the accept was speculative (undo-logged).
    pub logged: bool,
    /// Crash-instant classification.
    pub fate: StoreFate,
    /// Whether recovery re-executes this store (its region had not
    /// retired past the resume point).
    pub replayed: bool,
}

/// A (region, core) open/close span reconstructed from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpan {
    /// Dynamic region id.
    pub region: u64,
    /// Owning core.
    pub core: u8,
    /// Open cycle.
    pub open_cycle: u64,
    /// Retire cycle; `None` if still open at the crash.
    pub close_cycle: Option<u64>,
}

/// Result of comparing the predicted replay sequence of one core against
/// the addresses recovery actually wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossCheck {
    /// Core index.
    pub core: usize,
    /// Predicted replay sequence (addresses, in order).
    pub expected: Vec<u64>,
    /// How many observed writes were compared.
    pub observed: usize,
    /// Whether the observed prefix matched the prediction exactly.
    pub matched: bool,
    /// First index where prediction and observation diverged.
    pub first_divergence: Option<usize>,
}

/// Per-fate and frontier-set counts for the report headline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierCounts {
    /// Stores drained to media.
    pub committed: u64,
    /// Stores durable in a WPQ.
    pub in_wpq: u64,
    /// Stores lost on the persist path.
    pub in_path: u64,
    /// Stores lost in a persist buffer.
    pub in_pb: u64,
    /// Speculative stores rolled back at the crash.
    pub reverted: u64,
    /// Executed stores that never reached a persist buffer.
    pub pending: u64,
    /// Uncommitted sync writes.
    pub sync_pending: u64,
    /// Dirty lines parked in write buffers.
    pub wb_lines: u64,
    /// Dirty lines still in L1.
    pub dirty_l1: u64,
}

impl FrontierCounts {
    /// Total stores whose effects were lost at the crash.
    pub fn lost(&self) -> u64 {
        self.in_path + self.in_pb + self.reverted + self.pending + self.sync_pending
    }
}

/// A lost-store attribution site: (function, dynamic region, fate cause).
pub type LostSite = (Option<u32>, u64, &'static str);

/// The reconstructed forensic picture of one crash.
#[derive(Debug, Clone, Default)]
pub struct ForensicReport {
    /// Cycle the power failed (from the frontier snapshot).
    pub crash_cycle: u64,
    /// The `PowerFail` journal record's cycle, when present.
    pub power_fail_cycle: Option<u64>,
    /// Every journaled store with its reconstructed lineage, in issue order.
    pub stores: Vec<StoreLineage>,
    /// Region open/close spans.
    pub regions: Vec<RegionSpan>,
    /// The machine-side frontier snapshot.
    pub frontier: MachineFrontier,
    /// Per-core replay cross-checks (filled by [`ForensicReport::cross_check_core`]).
    pub cross_checks: Vec<CrossCheck>,
    /// Function-index → name table for attribution rendering (optional).
    pub func_names: Vec<String>,
    /// Line-evict events seen (dirty-line traffic volume).
    pub line_evicts: u64,
}

impl ForensicReport {
    /// Reconstruct the crash frontier from a decoded journal and the
    /// machine-side snapshot.
    ///
    /// The journal alone carries each store's lineage (issue → WPQ accept →
    /// media drain); the frontier disambiguates what the journal cannot
    /// see — whether an unacknowledged store was on the wire or still in
    /// its persist buffer, and the executed-but-unissued tails.
    pub fn reconstruct(records: &[FlightRecord], frontier: MachineFrontier) -> ForensicReport {
        let mut report = ForensicReport {
            crash_cycle: frontier.crash_cycle,
            ..ForensicReport::default()
        };
        // FIFO matchers: issue → accept keyed by (core, addr, region);
        // accept → drain keyed by (mc, addr, region). FIFO is exact because
        // both the persist buffer and each WPQ preserve per-key order.
        let mut await_wpq: HashMap<(u8, u64, u64), VecDeque<usize>> = HashMap::new();
        let mut await_drain: HashMap<(u8, u64, u64), VecDeque<usize>> = HashMap::new();
        let mut open_regions: HashMap<u64, usize> = HashMap::new();
        // Per (core, region): index into `stores` after the last committed
        // sync — stores before it are covered by the advanced resume point.
        let mut sync_floor: HashMap<(u8, u64), usize> = HashMap::new();
        for r in records {
            match r.kind {
                FlightKind::StoreIssue => {
                    let idx = report.stores.len();
                    report.stores.push(StoreLineage {
                        core: r.core,
                        func: r.func,
                        region: r.region,
                        addr: r.addr,
                        issue_cycle: r.cycle,
                        wpq_cycle: None,
                        commit_cycle: None,
                        mc: 0,
                        logged: false,
                        fate: StoreFate::InPb,
                        replayed: false,
                    });
                    await_wpq
                        .entry((r.core, r.addr, r.region))
                        .or_default()
                        .push_back(idx);
                }
                FlightKind::WpqEnqueue => {
                    if let Some(idx) = await_wpq
                        .get_mut(&(r.core, r.addr, r.region))
                        .and_then(VecDeque::pop_front)
                    {
                        let s = &mut report.stores[idx];
                        s.wpq_cycle = Some(r.cycle);
                        s.mc = r.mc;
                        s.logged = r.logged;
                        s.fate = StoreFate::InWpq;
                        await_drain
                            .entry((r.mc, r.addr, r.region))
                            .or_default()
                            .push_back(idx);
                    }
                }
                FlightKind::NvmCommit => {
                    if let Some(idx) = await_drain
                        .get_mut(&(r.mc, r.addr, r.region))
                        .and_then(VecDeque::pop_front)
                    {
                        let s = &mut report.stores[idx];
                        s.commit_cycle = Some(r.cycle);
                        s.fate = StoreFate::Committed;
                    }
                }
                FlightKind::RegionOpen => {
                    open_regions.insert(r.region, report.regions.len());
                    report.regions.push(RegionSpan {
                        region: r.region,
                        core: r.core,
                        open_cycle: r.cycle,
                        close_cycle: None,
                    });
                }
                FlightKind::RegionClose => {
                    if let Some(&i) = open_regions.get(&r.region) {
                        report.regions[i].close_cycle = Some(r.cycle);
                    }
                }
                FlightKind::SyncCommit => {
                    sync_floor.insert((r.core, r.region), report.stores.len());
                }
                FlightKind::LineEvict => report.line_evicts += 1,
                FlightKind::PowerFail => report.power_fail_cycle = Some(r.cycle),
                FlightKind::Pad | FlightKind::Header | FlightKind::Checkpoint => {}
            }
        }
        // Second pass, with the frontier in hand: distinguish in-path from
        // in-PB (the per-core unacked journal stores line up 1:1, in order,
        // with the persist-buffer entries), demote speculative accepts of
        // unretired regions to `Reverted`, and mark the replayed set.
        let mut pb_cursor: Vec<usize> = vec![0; frontier.cores.len()];
        for i in 0..report.stores.len() {
            let (core, region, logged, acked) = {
                let s = &report.stores[i];
                (s.core as usize, s.region, s.logged, s.wpq_cycle.is_some())
            };
            let cf = match frontier.cores.get(core) {
                Some(cf) => cf,
                None => continue,
            };
            let rr = cf.resume_region;
            if !acked {
                let sent = cf
                    .pb
                    .get(pb_cursor[core])
                    .map(|&(_, _, sent)| sent)
                    .unwrap_or(false);
                pb_cursor[core] += 1;
                report.stores[i].fate = if sent {
                    StoreFate::InPath
                } else {
                    StoreFate::InPb
                };
            } else if logged && rr.is_some_and(|rr| region != REGION_NONE && region > rr) {
                // Accepted while speculative and its region never became
                // non-speculative: the undo log rolled it back.
                report.stores[i].fate = StoreFate::Reverted;
            }
            report.stores[i].replayed = match rr {
                Some(rr) if region != REGION_NONE && region >= rr => {
                    // Inside the resume region, a committed sync advances
                    // the resume point past everything issued before it.
                    region > rr
                        || sync_floor
                            .get(&(core as u8, region))
                            .is_none_or(|&f| i >= f)
                }
                _ => false,
            };
        }
        report.frontier = frontier;
        report
    }

    /// Attach a function-index → name table for rendering.
    pub fn set_func_names(&mut self, names: Vec<String>) {
        self.func_names = names;
    }

    /// Render a function attribution.
    pub fn func_name(&self, f: Option<u32>) -> String {
        match f {
            Some(i) => match self.func_names.get(i as usize) {
                Some(n) => n.clone(),
                None => format!("fn#{i}"),
            },
            None => "?".to_string(),
        }
    }

    /// Headline counts across every frontier set.
    pub fn counts(&self) -> FrontierCounts {
        let mut c = FrontierCounts::default();
        for s in &self.stores {
            match s.fate {
                StoreFate::Committed => c.committed += 1,
                StoreFate::InWpq => c.in_wpq += 1,
                StoreFate::InPath => c.in_path += 1,
                StoreFate::InPb => c.in_pb += 1,
                StoreFate::Reverted => c.reverted += 1,
            }
        }
        for cf in &self.frontier.cores {
            c.pending += cf.pending.len() as u64;
            c.sync_pending += cf.sync_pending.len() as u64;
            c.wb_lines += cf.wb_lines.len() as u64;
            c.dirty_l1 += cf.dirty_l1.len() as u64;
        }
        c
    }

    /// Every lost store grouped by (function, region, cause), descending by
    /// count — the attribution table.
    pub fn lost_by_site(&self) -> Vec<(LostSite, u64)> {
        let mut sites: Vec<(LostSite, u64)> = Vec::new();
        for s in self.stores.iter().filter(|s| s.fate.is_lost()) {
            let key = (s.func, s.region, s.fate.as_str());
            match sites.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => sites.push((key, 1)),
            }
        }
        sites.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .1.cmp(&b.0 .1)));
        sites
    }

    /// The predicted replay sequence for `core`: resuming from the resume
    /// region, recovery must re-execute every unretired journal store in
    /// issue order, then the pending tail, then the uncommitted sync
    /// writes.
    pub fn predicted_replay(&self, core: usize) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .stores
            .iter()
            .filter(|s| s.core as usize == core && s.replayed)
            .map(|s| s.addr)
            .collect();
        if let Some(cf) = self.frontier.cores.get(core) {
            out.extend_from_slice(&cf.pending);
            out.extend_from_slice(&cf.sync_pending);
        }
        out
    }

    /// Cross-check the frontier against what recovery actually replayed:
    /// `observed` is the ordered (addr, value) write log of the recovery
    /// replay; its prefix must equal the predicted sequence exactly.
    /// The result is recorded on the report and returned.
    pub fn cross_check_core(&mut self, core: usize, observed: &[(u64, u64)]) -> &CrossCheck {
        let expected = self.predicted_replay(core);
        let compared = expected.len().min(observed.len());
        let mut first_divergence = None;
        for i in 0..compared {
            if observed[i].0 != expected[i] {
                first_divergence = Some(i);
                break;
            }
        }
        if first_divergence.is_none() && observed.len() < expected.len() {
            first_divergence = Some(observed.len());
        }
        let check = CrossCheck {
            core,
            matched: first_divergence.is_none(),
            observed: compared,
            first_divergence,
            expected,
        };
        self.cross_checks.retain(|c| c.core != core);
        self.cross_checks.push(check);
        self.cross_checks.last().unwrap()
    }

    /// Whether every recorded cross-check matched.
    pub fn all_matched(&self) -> bool {
        !self.cross_checks.is_empty() && self.cross_checks.iter().all(|c| c.matched)
    }

    /// Render the report as human-readable text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let c = self.counts();
        let _ = writeln!(out, "crash forensics @ cycle {}", self.crash_cycle);
        let _ = writeln!(
            out,
            "  journal: {} stores, {} regions, {} line evicts{}",
            self.stores.len(),
            self.regions.len(),
            self.line_evicts,
            match self.power_fail_cycle {
                Some(pf) => format!(", power fail @ {pf}"),
                None => String::new(),
            }
        );
        let _ = writeln!(
            out,
            "  frontier: committed={} in_wpq={} in_path={} in_pb={} reverted={} pending={} sync={}",
            c.committed, c.in_wpq, c.in_path, c.in_pb, c.reverted, c.pending, c.sync_pending
        );
        let _ = writeln!(
            out,
            "  dirty-in-cache: {} wb lines, {} l1 lines; live undo records: {}",
            c.wb_lines, c.dirty_l1, self.frontier.live_log_records
        );
        for (i, cf) in self.frontier.cores.iter().enumerate() {
            let _ = writeln!(
                out,
                "  core {i}: resume region {} ({}), replay {} stores",
                cf.resume_region
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "-".into()),
                if cf.halted { "halted" } else { "running" },
                self.predicted_replay(i).len()
            );
        }
        let lost = self.lost_by_site();
        if !lost.is_empty() {
            let _ = writeln!(out, "  lost stores by (function, region, cause):");
            for ((f, region, cause), n) in lost.iter().take(16) {
                let _ = writeln!(
                    out,
                    "    {:<24} region {:<8} {:<10} {n}",
                    self.func_name(*f),
                    region,
                    cause
                );
            }
            if lost.len() > 16 {
                let _ = writeln!(out, "    ... {} more sites", lost.len() - 16);
            }
        }
        for ck in &self.cross_checks {
            let _ = writeln!(
                out,
                "  replay cross-check core {}: predicted {} writes, {}",
                ck.core,
                ck.expected.len(),
                if ck.matched {
                    "MATCH".to_string()
                } else {
                    format!("DIVERGED at {:?}", ck.first_divergence)
                }
            );
        }
        out
    }

    /// Render the report as a JSON object (hand-rolled; the workspace
    /// builds offline with no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let c = self.counts();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"cwsp-forensics-v1\",");
        let _ = writeln!(out, "  \"crash_cycle\": {},", self.crash_cycle);
        match self.power_fail_cycle {
            Some(pf) => {
                let _ = writeln!(out, "  \"power_fail_cycle\": {pf},");
            }
            None => {
                let _ = writeln!(out, "  \"power_fail_cycle\": null,");
            }
        }
        let _ = writeln!(out, "  \"journal_stores\": {},", self.stores.len());
        let _ = writeln!(out, "  \"regions\": {},", self.regions.len());
        let _ = writeln!(out, "  \"line_evicts\": {},", self.line_evicts);
        let _ = writeln!(
            out,
            "  \"counts\": {{\"committed\": {}, \"in_wpq\": {}, \"in_path\": {}, \"in_pb\": {}, \
             \"reverted\": {}, \"pending\": {}, \"sync_pending\": {}, \"wb_lines\": {}, \
             \"dirty_l1\": {}, \"lost\": {}}},",
            c.committed,
            c.in_wpq,
            c.in_path,
            c.in_pb,
            c.reverted,
            c.pending,
            c.sync_pending,
            c.wb_lines,
            c.dirty_l1,
            c.lost()
        );
        out.push_str("  \"lost\": [");
        for (i, ((f, region, cause), n)) in self.lost_by_site().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"function\": ");
            crate::json_escape(&mut out, &self.func_name(*f));
            let _ = write!(
                out,
                ", \"region\": {region}, \"cause\": \"{cause}\", \"stores\": {n}}}"
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"cores\": [");
        for (i, cf) in self.frontier.cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"core\": {i}, \"resume_region\": {}, \"halted\": {}, \"pb\": {}, \
                 \"pending\": {}, \"sync_pending\": {}, \"wb_lines\": {}, \"dirty_l1\": {}, \
                 \"predicted_replay\": {}}}",
                cf.resume_region
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "null".into()),
                cf.halted,
                cf.pb.len(),
                cf.pending.len(),
                cf.sync_pending.len(),
                cf.wb_lines.len(),
                cf.dirty_l1.len(),
                self.predicted_replay(i).len()
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"cross_checks\": [");
        for (i, ck) in self.cross_checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"core\": {}, \"expected\": {}, \"observed\": {}, \"matched\": {}, \
                 \"first_divergence\": {}}}",
                ck.core,
                ck.expected.len(),
                ck.observed,
                ck.matched,
                ck.first_divergence
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "null".into())
            );
        }
        out.push_str("\n  ],\n");
        let _ = writeln!(
            out,
            "  \"live_log_records\": {}",
            self.frontier.live_log_records
        );
        out.push_str("}\n");
        out
    }

    /// Render the recovery timeline as a Chrome/Perfetto trace: per-core
    /// flight tracks with region spans and persist spans (issue → WPQ
    /// accept), lost-store instants, and the power-fail marker. Track ids
    /// start at [`FLIGHT_TID_BASE`], clear of the simulator trace (cores
    /// from 0, MCs at 1000) and sink tracks (2000+).
    pub fn to_chrome(&self) -> crate::ChromeTrace {
        use crate::chrome::Arg;
        let mut t = crate::ChromeTrace::new();
        t.process_name("cwsp-forensics");
        let horizon = self
            .power_fail_cycle
            .unwrap_or(self.crash_cycle)
            .max(self.crash_cycle);
        for (i, _) in self.frontier.cores.iter().enumerate() {
            t.thread_name(FLIGHT_TID_BASE + i as u64, &format!("flight core {i}"));
        }
        for span in &self.regions {
            let tid = FLIGHT_TID_BASE + span.core as u64;
            let end = span.close_cycle.unwrap_or(horizon);
            t.complete(
                tid,
                "region",
                &format!("region {}", span.region),
                span.open_cycle,
                end.saturating_sub(span.open_cycle),
                vec![("open".into(), Arg::Bool(span.close_cycle.is_none()))],
            );
        }
        // Persist spans are the journal's bread and butter but can number
        // in the millions; cap the export and say so.
        const SPAN_CAP: usize = 20_000;
        for s in self.stores.iter().take(SPAN_CAP) {
            let tid = FLIGHT_TID_BASE + s.core as u64;
            match s.wpq_cycle {
                Some(wpq) => t.complete(
                    tid,
                    "persist",
                    s.fate.as_str(),
                    s.issue_cycle,
                    wpq.saturating_sub(s.issue_cycle),
                    vec![
                        ("addr".into(), Arg::Int(s.addr)),
                        ("region".into(), Arg::Int(s.region)),
                    ],
                ),
                None => t.instant(
                    tid,
                    "lost",
                    s.fate.as_str(),
                    s.issue_cycle,
                    vec![
                        ("addr".into(), Arg::Int(s.addr)),
                        ("region".into(), Arg::Int(s.region)),
                        ("function".into(), Arg::Str(self.func_name(s.func))),
                    ],
                ),
            }
        }
        if self.stores.len() > SPAN_CAP {
            t.instant(
                FLIGHT_TID_BASE,
                "flight",
                "span cap reached",
                horizon,
                vec![(
                    "omitted".into(),
                    Arg::Int((self.stores.len() - SPAN_CAP) as u64),
                )],
            );
        }
        t.instant(
            FLIGHT_TID_BASE,
            "flight",
            "power failure",
            self.power_fail_cycle.unwrap_or(self.crash_cycle),
            vec![("lost_stores".into(), Arg::Int(self.counts().lost()))],
        );
        t
    }
}

/// First Chrome track id used by forensic flight tracks.
pub const FLIGHT_TID_BASE: u64 = 3000;

#[cfg(test)]
mod tests {
    use super::*;

    fn store(core: u8, cycle: u64, addr: u64, region: u64) -> FlightRecord {
        FlightRecord {
            kind: FlightKind::StoreIssue,
            core,
            mc: 0,
            logged: false,
            func: Some(1),
            cycle,
            addr,
            region,
        }
    }

    fn wpq(core: u8, mc: u8, cycle: u64, addr: u64, region: u64, logged: bool) -> FlightRecord {
        FlightRecord {
            kind: FlightKind::WpqEnqueue,
            core,
            mc,
            logged,
            func: None,
            cycle,
            addr,
            region,
        }
    }

    fn commit(mc: u8, cycle: u64, addr: u64, region: u64) -> FlightRecord {
        FlightRecord {
            kind: FlightKind::NvmCommit,
            core: 0,
            mc,
            logged: false,
            func: None,
            cycle,
            addr,
            region,
        }
    }

    fn frontier_one_core(resume: u64, pb: Vec<(u64, u64, bool)>) -> MachineFrontier {
        MachineFrontier {
            crash_cycle: 1000,
            cores: vec![CoreFrontier {
                resume_region: Some(resume),
                pb,
                ..CoreFrontier::default()
            }],
            wpq: vec![Vec::new()],
            live_log_records: 0,
        }
    }

    #[test]
    fn lineage_matching_classifies_fates() {
        // Store A: committed. B: in WPQ. C: sent (in path). D: still in PB.
        // E: speculative accept in an unretired region — reverted.
        let records = vec![
            store(0, 10, 0x100, 5),
            store(0, 11, 0x108, 5),
            store(0, 12, 0x110, 6),
            store(0, 13, 0x118, 6),
            store(0, 14, 0x120, 7),
            wpq(0, 0, 20, 0x100, 5, false),
            wpq(0, 0, 21, 0x108, 5, false),
            wpq(0, 1, 25, 0x120, 7, true),
            commit(0, 30, 0x100, 5),
        ];
        let f = frontier_one_core(6, vec![(0x110, 6, true), (0x118, 6, false)]);
        let rep = ForensicReport::reconstruct(&records, f);
        let fates: Vec<StoreFate> = rep.stores.iter().map(|s| s.fate).collect();
        assert_eq!(
            fates,
            vec![
                StoreFate::Committed,
                StoreFate::InWpq,
                StoreFate::InPath,
                StoreFate::InPb,
                StoreFate::Reverted,
            ]
        );
        let c = rep.counts();
        assert_eq!(
            (c.committed, c.in_wpq, c.in_path, c.in_pb, c.reverted),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(c.lost(), 3);
        // Replay: resume region 6 ⇒ regions 5 retired, 6 and 7 replayed.
        assert_eq!(rep.predicted_replay(0), vec![0x110, 0x118, 0x120]);
    }

    #[test]
    fn committed_sync_advances_the_replay_floor() {
        let mut sync = FlightRecord::new(FlightKind::SyncCommit, 15);
        sync.core = 0;
        sync.region = 4;
        let records = vec![
            store(0, 10, 0x200, 4),
            wpq(0, 0, 12, 0x200, 4, false),
            sync,
            store(0, 20, 0x208, 4),
        ];
        let f = frontier_one_core(4, vec![(0x208, 4, false)]);
        let rep = ForensicReport::reconstruct(&records, f);
        // The store before the committed sync is durable and NOT replayed;
        // the store after it is.
        assert!(!rep.stores[0].replayed);
        assert!(rep.stores[1].replayed);
        assert_eq!(rep.predicted_replay(0), vec![0x208]);
    }

    #[test]
    fn cross_check_detects_divergence_and_match() {
        let records = vec![store(0, 1, 0x10, 2), store(0, 2, 0x18, 2)];
        let f = frontier_one_core(2, vec![(0x10, 2, false), (0x18, 2, false)]);
        let mut rep = ForensicReport::reconstruct(&records, f);
        assert!(
            rep.cross_check_core(0, &[(0x10, 1), (0x18, 2), (0x99, 3)])
                .matched
        );
        assert!(rep.all_matched());
        let ck = rep.cross_check_core(0, &[(0x10, 1), (0x20, 2)]);
        assert!(!ck.matched);
        assert_eq!(ck.first_divergence, Some(1));
        assert!(!rep.all_matched());
        // Observed running short of the prediction is also a divergence.
        let ck = rep.cross_check_core(0, &[(0x10, 1)]);
        assert_eq!(ck.first_divergence, Some(1));
    }

    #[test]
    fn renders_text_json_and_chrome() {
        let records = vec![
            {
                let mut r = FlightRecord::new(FlightKind::RegionOpen, 5);
                r.region = 3;
                r
            },
            store(0, 10, 0x300, 3),
            FlightRecord::new(FlightKind::PowerFail, 999),
        ];
        let mut f = frontier_one_core(3, vec![(0x300, 3, false)]);
        f.cores[0].pending = vec![0x308];
        let mut rep = ForensicReport::reconstruct(&records, f);
        rep.set_func_names(vec!["main".into(), "worker".into()]);
        rep.cross_check_core(0, &[(0x300, 0), (0x308, 0)]);
        let text = rep.to_text();
        assert!(text.contains("crash forensics @ cycle 1000"));
        assert!(text.contains("worker"), "func attribution rendered: {text}");
        assert!(text.contains("MATCH"));
        let json = rep.to_json();
        assert!(json.contains("\"schema\": \"cwsp-forensics-v1\""));
        assert!(json.contains("\"power_fail_cycle\": 999"));
        assert!(json.contains("\"matched\": true"));
        let chrome = rep.to_chrome();
        assert!(chrome.tracks().contains(&FLIGHT_TID_BASE));
        let cj = chrome.to_json();
        assert!(cj.contains("power failure"));
        assert!(cj.contains("region 3"));
    }
}
