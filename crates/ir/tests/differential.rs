//! Differential tests: the decoded execution core against the tree-walking
//! reference interpreter.
//!
//! [`cwsp_ir::interp::Interp`] executes from the pre-decoded micro-op stream;
//! [`cwsp_ir::reference::RefInterp`] is the original tree-walking
//! implementation kept as the executable specification. Every test here runs
//! both in lockstep over the same module and asserts the *entire* observable
//! surface is identical: each [`StepEffect`] (kind, read/write addresses and
//! values, boundary resume points, output words), every trap message, the
//! final memories, return values, and step counts — including across a
//! simulated crash and [`Interp::resume`].

use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
use cwsp_ir::inst::{AtomicOp, BinOp, Inst, MemRef, Operand};
use cwsp_ir::interp::{Interp, ResumePoint, StepEffect};
use cwsp_ir::memory::Memory;
use cwsp_ir::module::Module;
use cwsp_ir::reference::RefInterp;
use cwsp_ir::types::RegionId;

/// Step both interpreters to completion (or trap, or `max_steps`), asserting
/// identical effects at every step and identical final state. Returns the
/// boundary resume points the run produced, for crash/recovery tests.
fn lockstep(m: &Module, max_steps: u64) -> Vec<ResumePoint> {
    let mut mem_d = Memory::new();
    let mut mem_r = Memory::new();
    let mut dec = Interp::new(m, 0, &mut mem_d).expect("decoded interp");
    let mut refi = RefInterp::new(m, 0, &mut mem_r).expect("reference interp");
    assert_eq!(mem_d, mem_r, "global initialization differs");
    let mut resumes = Vec::new();
    for step in 0..max_steps {
        if dec.is_halted() || refi.is_halted() {
            break;
        }
        let ed = dec.step(&mut mem_d);
        let er = refi.step(&mut mem_r);
        assert_eq!(ed, er, "effect diverges at step {step}");
        let Ok(eff) = ed else { break };
        if let Some(b) = eff.boundary {
            resumes.push(b.resume);
        }
    }
    assert_eq!(dec.is_halted(), refi.is_halted(), "halt state differs");
    assert_eq!(dec.return_value(), refi.return_value());
    assert_eq!(dec.steps(), refi.steps());
    assert_eq!(mem_d, mem_r, "final memories differ");
    resumes
}

fn module_with_main(build: impl FnOnce(&mut Module, &mut FunctionBuilder)) -> Module {
    let mut m = Module::new("diff");
    let mut b = FunctionBuilder::new("main", 0);
    build(&mut m, &mut b);
    let f = m.add_function(b.build());
    m.set_entry(f);
    m
}

#[test]
fn arithmetic_and_memory_match() {
    let m = module_with_main(|m, b| {
        let g = m.add_global_init("g", 4, vec![9, 8, 7, 6]);
        let e = b.entry();
        let x = b.load(e, MemRef::global(g, 0));
        let y = b.bin(e, BinOp::Mul, x.into(), Operand::imm(3));
        let z = b.bin(e, BinOp::Xor, y.into(), x.into());
        b.store(e, z.into(), MemRef::global(g, 3));
        b.push(e, Inst::Out { val: z.into() });
        b.push(
            e,
            Inst::Ret {
                val: Some(z.into()),
            },
        );
    });
    lockstep(&m, 1_000);
}

#[test]
fn loops_match() {
    let m = module_with_main(|m, b| {
        let g = m.add_global("sum", 2);
        let e = b.entry();
        let (_, exit) = build_counted_loop(b, e, Operand::imm(300), |b, bb, i| {
            let old = b.load(bb, MemRef::global(g, 0));
            let sq = b.bin(bb, BinOp::Mul, i.into(), i.into());
            let new = b.bin(bb, BinOp::Add, old.into(), sq.into());
            b.store(bb, new.into(), MemRef::global(g, 0));
        });
        let s = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
    });
    lockstep(&m, 100_000);
}

#[test]
fn calls_with_saves_match() {
    let mut m = Module::new("diff");
    let mut fb = FunctionBuilder::new("addmul", 2);
    let fe = fb.entry();
    let s = fb.bin(fe, BinOp::Add, fb.param(0).into(), fb.param(1).into());
    let p = fb.bin(fe, BinOp::Mul, s.into(), fb.param(0).into());
    fb.push(
        fe,
        Inst::Ret {
            val: Some(p.into()),
        },
    );
    let callee = m.add_function(fb.build());

    let mut b = FunctionBuilder::new("main", 0);
    let e = b.entry();
    let live1 = b.mov(e, Operand::imm(100));
    let live2 = b.mov(e, Operand::imm(7));
    let r = b.vreg();
    b.push(
        e,
        Inst::Call {
            func: callee,
            args: vec![Operand::imm(3), live2.into()],
            ret: Some(r),
            save_regs: vec![live1, live2],
        },
    );
    let t = b.bin(e, BinOp::Add, r.into(), live1.into());
    let u = b.bin(e, BinOp::Sub, t.into(), live2.into());
    b.push(
        e,
        Inst::Ret {
            val: Some(u.into()),
        },
    );
    let main = m.add_function(b.build());
    m.set_entry(main);
    lockstep(&m, 10_000);
}

#[test]
fn recursion_matches() {
    let mut m = Module::new("diff");
    let mut fb = FunctionBuilder::new("fib", 1);
    let e = fb.entry();
    let base = fb.block();
    let rec = fb.block();
    let n = fb.param(0);
    let c = fb.bin(e, BinOp::CmpLtU, n.into(), Operand::imm(2));
    fb.push(
        e,
        Inst::CondBr {
            cond: c.into(),
            if_true: base,
            if_false: rec,
        },
    );
    fb.push(
        base,
        Inst::Ret {
            val: Some(n.into()),
        },
    );
    let n1 = fb.bin(rec, BinOp::Sub, n.into(), Operand::imm(1));
    let n2 = fb.bin(rec, BinOp::Sub, n.into(), Operand::imm(2));
    let r1 = fb.vreg();
    fb.push(
        rec,
        Inst::Call {
            func: cwsp_ir::FuncId(0),
            args: vec![n1.into()],
            ret: Some(r1),
            save_regs: vec![n2],
        },
    );
    let r2 = fb.vreg();
    fb.push(
        rec,
        Inst::Call {
            func: cwsp_ir::FuncId(0),
            args: vec![n2.into()],
            ret: Some(r2),
            save_regs: vec![r1],
        },
    );
    let s = fb.bin(rec, BinOp::Add, r1.into(), r2.into());
    fb.push(
        rec,
        Inst::Ret {
            val: Some(s.into()),
        },
    );
    m.add_function(fb.build());

    let mut mb = FunctionBuilder::new("main", 0);
    let e = mb.entry();
    let r = mb.vreg();
    mb.push(
        e,
        Inst::Call {
            func: cwsp_ir::FuncId(0),
            args: vec![Operand::imm(12)],
            ret: Some(r),
            save_regs: vec![],
        },
    );
    mb.push(
        e,
        Inst::Ret {
            val: Some(r.into()),
        },
    );
    let main = m.add_function(mb.build());
    m.set_entry(main);
    lockstep(&m, 1_000_000);
}

#[test]
fn atomics_and_fences_match() {
    let m = module_with_main(|m, b| {
        let g = m.add_global("g", 1);
        let e = b.entry();
        let a = MemRef::global(g, 0);
        for (op, src, exp) in [
            (AtomicOp::FetchAdd, 5, 0),
            (AtomicOp::Cas, 100, 5),
            (AtomicOp::Cas, 999, 5),
            (AtomicOp::Swap, 1, 0),
        ] {
            let dst = b.vreg();
            b.push(
                e,
                Inst::AtomicRmw {
                    op,
                    dst,
                    addr: a,
                    src: Operand::imm(src),
                    expected: Operand::imm(exp),
                },
            );
            b.push(e, Inst::Fence);
        }
        let v = b.load(e, a);
        b.push(
            e,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
    });
    lockstep(&m, 1_000);
}

#[test]
fn boundaries_and_ckpt_match() {
    let m = module_with_main(|m, b| {
        let g = m.add_global("g", 1);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(17));
        b.push(e, Inst::Ckpt { reg: r });
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.store(e, r.into(), MemRef::global(g, 0));
        b.push(e, Inst::Boundary { id: RegionId(1) });
        let v = b.load(e, MemRef::global(g, 0));
        b.push(e, Inst::Out { val: v.into() });
        b.push(e, Inst::Halt);
    });
    let resumes = lockstep(&m, 1_000);
    assert_eq!(resumes.len(), 2, "both explicit boundaries reported");
}

#[test]
fn traps_match_exactly() {
    // Unaligned access: both cores must produce the identical trap.
    let m = module_with_main(|_, b| {
        let e = b.entry();
        let _ = b.load(e, MemRef::abs(12345));
        b.push(e, Inst::Halt);
    });
    lockstep(&m, 100);

    // Step-after-halt: identical trap too.
    let m2 = module_with_main(|_, b| {
        let e = b.entry();
        b.push(e, Inst::Halt);
    });
    let mut mem_d = Memory::new();
    let mut mem_r = Memory::new();
    let mut dec = Interp::new(&m2, 0, &mut mem_d).unwrap();
    let mut refi = RefInterp::new(&m2, 0, &mut mem_r).unwrap();
    assert_eq!(dec.step(&mut mem_d), refi.step(&mut mem_r));
    assert_eq!(dec.step(&mut mem_d), refi.step(&mut mem_r));
}

#[test]
fn crash_and_resume_match_at_every_boundary() {
    // A program whose state is entirely memory-resident at each boundary, so
    // resuming from the boundary with no recovery slice is semantically
    // complete — both interpreters must rebuild identical frames and finish
    // identically from every boundary the run produced.
    let mut m = Module::new("diff");
    let g = m.add_global("g", 2);

    let mut fb = FunctionBuilder::new("bump", 1);
    let fe = fb.entry();
    fb.push(fe, Inst::Boundary { id: RegionId(7) });
    let old = fb.load(fe, MemRef::global(g, 0));
    let new = fb.bin(fe, BinOp::Add, old.into(), Operand::imm(1));
    fb.store(fe, new.into(), MemRef::global(g, 0));
    fb.push(
        fe,
        Inst::Ret {
            val: Some(new.into()),
        },
    );
    let bump = m.add_function(fb.build());

    let mut b = FunctionBuilder::new("main", 0);
    let e = b.entry();
    let r1 = b.vreg();
    b.push(
        e,
        Inst::Call {
            func: bump,
            args: vec![Operand::imm(0)],
            ret: Some(r1),
            save_regs: vec![],
        },
    );
    let r2 = b.vreg();
    b.push(
        e,
        Inst::Call {
            func: bump,
            args: vec![Operand::imm(0)],
            ret: Some(r2),
            save_regs: vec![r1],
        },
    );
    let s = b.bin(e, BinOp::Add, r1.into(), r2.into());
    b.store(e, s.into(), MemRef::global(g, 1));
    b.push(
        e,
        Inst::Ret {
            val: Some(s.into()),
        },
    );
    let main = m.add_function(b.build());
    m.set_entry(main);

    // First pass: record (resume point, memory snapshot) at every boundary.
    let mut mem = Memory::new();
    let mut i = Interp::new(&m, 0, &mut mem).unwrap();
    let mut snapshots = Vec::new();
    while !i.is_halted() {
        let eff = i.step(&mut mem).unwrap();
        if let Some(bd) = eff.boundary {
            snapshots.push((bd.resume, mem.clone()));
        }
    }
    assert!(snapshots.len() >= 4, "calls + rets + explicit boundaries");

    // Crash at each boundary: resume both interpreters from the snapshot and
    // run them in lockstep to completion.
    for (k, (rp, snap)) in snapshots.into_iter().enumerate() {
        let mut mem_d = snap.clone();
        let mut mem_r = snap;
        let mut dec = Interp::resume(&m, 0, &mem_d, rp)
            .unwrap_or_else(|e| panic!("boundary {k}: decoded resume: {e}"));
        let mut refi = RefInterp::resume(&m, 0, &mem_r, rp)
            .unwrap_or_else(|e| panic!("boundary {k}: reference resume: {e}"));
        let mut guard = 0;
        while !dec.is_halted() && !refi.is_halted() {
            let ed = dec.step(&mut mem_d);
            let er = refi.step(&mut mem_r);
            assert_eq!(ed, er, "boundary {k}: post-resume step diverges");
            if ed.is_err() {
                break;
            }
            guard += 1;
            assert!(guard < 10_000, "boundary {k}: runaway");
        }
        assert_eq!(dec.is_halted(), refi.is_halted(), "boundary {k}");
        assert_eq!(dec.return_value(), refi.return_value(), "boundary {k}");
        assert_eq!(mem_d, mem_r, "boundary {k}: post-resume memories differ");
    }
}

#[test]
fn step_into_stream_equals_step_stream() {
    // The allocation-free entry point must produce the same effects as the
    // allocating wrapper (and therefore as the reference).
    let m = module_with_main(|m, b| {
        let g = m.add_global("g", 1);
        let e = b.entry();
        let (_, exit) = build_counted_loop(b, e, Operand::imm(50), |b, bb, i| {
            b.store(bb, i.into(), MemRef::global(g, 0));
        });
        b.push(exit, Inst::Halt);
    });
    let mut mem_a = Memory::new();
    let mut mem_b = Memory::new();
    let mut a = Interp::new(&m, 0, &mut mem_a).unwrap();
    let mut b = Interp::new(&m, 0, &mut mem_b).unwrap();
    let mut scratch = StepEffect::default();
    while !a.is_halted() {
        let ea = a.step(&mut mem_a).unwrap();
        b.step_into(&mut mem_b, &mut scratch).unwrap();
        assert_eq!(ea, scratch);
    }
    assert!(b.is_halted());
    assert_eq!(mem_a, mem_b);
}

#[test]
fn outputs_and_oracle_runs_match() {
    let m = module_with_main(|m, b| {
        let g = m.add_global_init("g", 3, vec![2, 4, 6]);
        let e = b.entry();
        let (_, exit) = build_counted_loop(b, e, Operand::imm(3), |b, bb, i| {
            let shifted = b.bin(bb, BinOp::Shl, i.into(), Operand::imm(1));
            b.push(
                bb,
                Inst::Out {
                    val: shifted.into(),
                },
            );
            let _ = b.load(bb, MemRef::global(g, 0));
        });
        b.push(exit, Inst::Halt);
    });
    let dec = cwsp_ir::interp::run(&m, 10_000).unwrap();
    let refr = cwsp_ir::reference::run_ref(&m, 10_000).unwrap();
    assert_eq!(dec.output, refr.output);
    assert_eq!(dec.return_value, refr.return_value);
    assert_eq!(dec.steps, refr.steps);
    assert_eq!(dec.memory, refr.memory);
}
