//! The parallel, memoizing experiment engine.
//!
//! Every figure binary used to re-run the same (workload, options, config,
//! scheme) simulations serially: each figure recompiled every workload and
//! re-measured every baseline from scratch. This module centralizes that
//! work:
//!
//! * **Work-stealing pool** — [`par_map`] fans jobs out over
//!   `std::thread::scope` workers (count from `CWSP_JOBS`, default the
//!   machine's available parallelism) while preserving input order in the
//!   returned results, so figure output stays byte-identical to the serial
//!   harness.
//! * **In-process memo** — simulation results are memoized by content
//!   fingerprint (module text + machine config + scheme; see
//!   [`crate::fingerprint`]), sharded to keep lock contention off the hot
//!   path. Baselines and compiled modules are computed once per process no
//!   matter how many figures ask for them.
//! * **On-disk store** — results persist under `results/cache/` (override
//!   with `CWSP_CACHE_DIR`, disable with `CWSP_CACHE=0`). The default
//!   backend is the **LSM result spine** ([`cwsp_store::spine`]): results
//!   commit as immutable sorted batches with a manifest, merged levels, and
//!   time-travel lookups; `CWSP_STORE=flat` selects the legacy per-key JSON
//!   files. Existing flat entries are migrated into the spine once, as
//!   history. Keys include [`crate::fingerprint::CACHE_VERSION`]; bump it
//!   when simulator semantics change.
//! * **Harness report** — [`harness_main`] wraps a figure binary's body,
//!   timing it and merging a per-figure entry (wall-clock, jobs, hit rate)
//!   into `results/BENCH_harness.json` — and, on the spine backend, also
//!   committing the entry to the spine so the whole perf trajectory stays
//!   queryable as of any run.

use crate::fingerprint::{machine_fp, module_fp, options_fp};
use crate::json::{self, Value};
use cwsp_compiler::pipeline::{CompileOptions, Compiled, CwspCompiler};
use cwsp_ir::module::Module;
use cwsp_sim::config::SimConfig;
use cwsp_sim::hash::FxHasher;
use cwsp_sim::scheme::Scheme;
use cwsp_sim::stats::SimStats;
use cwsp_store::spine::{Key, Spine};
use std::collections::HashMap;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

const SHARDS: usize = 16;

type StatsSlot = Arc<OnceLock<SimStats>>;
type CompileSlot = Arc<OnceLock<Arc<Compiled>>>;

/// Monotonic counters describing engine traffic (see [`Engine::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Simulation results requested.
    pub jobs: u64,
    /// Requests served from the in-process memo.
    pub memo_hits: u64,
    /// Requests served from the on-disk cache.
    pub disk_hits: u64,
    /// Dynamic instructions actually simulated (cache hits contribute 0).
    pub sim_insts: u64,
    /// Per-opcode dynamic instruction mix over the simulated instructions,
    /// indexed like [`cwsp_ir::decoded::OPCODE_NAMES`].
    pub sim_op_mix: [u64; cwsp_ir::decoded::OPCODE_COUNT],
}

impl Counters {
    /// Fraction of requests that did not run a simulation.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            (self.memo_hits + self.disk_hits) as f64 / self.jobs as f64
        }
    }
}

/// Persistent result storage behind the in-process memo.
enum DiskBackend {
    /// Legacy per-key JSON files (`CWSP_STORE=flat`).
    Flat(PathBuf),
    /// LSM result spine: immutable sorted batches + manifest + merging.
    Spine(Mutex<Spine>),
}

/// Stable hash for spine figure keys (FxHash over the name bytes; process-
/// independent like the fingerprints).
fn name_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// The memoizing engine; one global instance serves all figure binaries
/// (see [`engine`]), and tests can build private instances.
pub struct Engine {
    stats_memo: Vec<Mutex<HashMap<(u64, u64), StatsSlot>>>,
    compile_memo: Vec<Mutex<HashMap<(u64, u64), CompileSlot>>>,
    disk: Option<DiskBackend>,
    jobs: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    sim_insts: AtomicU64,
    sim_op_mix: [AtomicU64; cwsp_ir::decoded::OPCODE_COUNT],
    // Wall-clock ns of every stats() request, in completion order — memo
    // hits included, since the figure binaries' "queue latency" is request
    // to result regardless of which path served it.
    job_latencies_ns: Mutex<Vec<u64>>,
}

impl Engine {
    /// An engine with an explicit **flat** disk-cache directory (`None` =
    /// memory only). The flat backend is also reachable process-wide via
    /// `CWSP_STORE=flat`.
    pub fn new(disk: Option<PathBuf>) -> Self {
        Engine::with_backend(disk.map(DiskBackend::Flat))
    }

    /// An engine persisting results to the LSM spine at `dir`. Migrates any
    /// legacy flat JSON entries in `dir` into the spine once (as history).
    /// Falls back to memory-only if the spine directory cannot be opened.
    pub fn with_spine(dir: PathBuf) -> Self {
        let backend = Spine::open(&dir).ok().map(|mut spine| {
            migrate_flat_cache(&dir, &mut spine);
            DiskBackend::Spine(Mutex::new(spine))
        });
        Engine::with_backend(backend)
    }

    fn with_backend(disk: Option<DiskBackend>) -> Self {
        Engine {
            stats_memo: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            compile_memo: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            disk,
            jobs: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            sim_insts: AtomicU64::new(0),
            sim_op_mix: std::array::from_fn(|_| AtomicU64::new(0)),
            job_latencies_ns: Mutex::new(Vec::new()),
        }
    }

    /// Whether results persist to the LSM spine (vs. flat files or nothing).
    pub fn uses_spine(&self) -> bool {
        matches!(self.disk, Some(DiskBackend::Spine(_)))
    }

    /// Commit a figure's harness entry to the spine (no-op on other
    /// backends), keyed by figure name — the queryable perf trajectory.
    pub fn commit_figure_entry(&self, figure: &str, entry: &Value) {
        if let Some(DiskBackend::Spine(spine)) = &self.disk {
            let mut spine = spine.lock().unwrap();
            let _ = spine.commit(vec![(
                Key::figure(name_hash(figure)),
                entry.to_pretty().into_bytes(),
            )]);
        }
    }

    /// Commit a telemetry snapshot for `source` into the spine's telemetry
    /// keyspace (kind 2); no-op on other backends. Repeated commits under
    /// one source key accumulate a time-travel-queryable timeline.
    pub fn commit_telemetry(&self, source: &str, snapshot: &Value) {
        if let Some(DiskBackend::Spine(spine)) = &self.disk {
            let mut spine = spine.lock().unwrap();
            let _ = spine.commit(vec![(
                Key::telemetry(name_hash(source)),
                snapshot.to_pretty().into_bytes(),
            )]);
        }
    }

    /// Run `f` with the spine locked (`None` on other backends) — the
    /// cursor/time-travel query surface for tools and tests.
    pub fn with_spine_handle<R>(&self, f: impl FnOnce(&mut Spine) -> R) -> Option<R> {
        match &self.disk {
            Some(DiskBackend::Spine(spine)) => Some(f(&mut spine.lock().unwrap())),
            _ => None,
        }
    }

    /// Number of per-job latency samples recorded so far (a cursor for
    /// [`Engine::job_latencies_since`]).
    pub fn job_latency_count(&self) -> usize {
        self.job_latencies_ns.lock().unwrap().len()
    }

    /// Latency samples (ns) recorded after cursor `start`.
    pub fn job_latencies_since(&self, start: usize) -> Vec<u64> {
        let all = self.job_latencies_ns.lock().unwrap();
        all.get(start..).unwrap_or(&[]).to_vec()
    }

    /// Snapshot the traffic counters.
    pub fn counters(&self) -> Counters {
        Counters {
            jobs: self.jobs.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            sim_insts: self.sim_insts.load(Ordering::Relaxed),
            sim_op_mix: std::array::from_fn(|i| self.sim_op_mix[i].load(Ordering::Relaxed)),
        }
    }

    /// Compile `module` under `opts`, memoized by content.
    pub fn compiled(&self, module: &Module, opts: CompileOptions) -> Arc<Compiled> {
        let key = (module_fp(module), options_fp(opts));
        let slot = {
            let mut shard = self.compile_memo[key.0 as usize % SHARDS].lock().unwrap();
            shard.entry(key).or_default().clone()
        };
        slot.get_or_init(|| Arc::new(CwspCompiler::new(opts).compile(module)))
            .clone()
    }

    /// Run `module` on the `cfg`/`scheme` machine, memoized by content and
    /// backed by the disk cache. `name` labels cache files and panics only.
    ///
    /// # Panics
    /// Panics if the simulation traps (same contract as the serial harness).
    pub fn stats(&self, name: &str, module: &Module, cfg: &SimConfig, scheme: Scheme) -> SimStats {
        let t_req = Instant::now();
        let key = (module_fp(module), machine_fp(cfg, scheme));
        self.jobs.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut shard = self.stats_memo[key.0 as usize % SHARDS].lock().unwrap();
            shard.entry(key).or_default().clone()
        };
        if let Some(s) = slot.get() {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            self.record_latency(t_req);
            return s.clone();
        }
        // Which path satisfied this request: our closure simulated, our
        // closure loaded from disk, or another thread got there first (the
        // closure never ran and `get_or_init` just waited).
        enum Outcome {
            Waited,
            Disk,
            Ran,
        }
        let mut outcome = Outcome::Waited;
        let s = slot.get_or_init(|| {
            if let Some(s) = self.disk_load(key) {
                outcome = Outcome::Disk;
                return s;
            }
            outcome = Outcome::Ran;
            let s = crate::run_to_completion(module, cfg, scheme)
                .unwrap_or_else(|e| panic!("{name} {}: {e}", scheme.name()));
            self.disk_store(key, name, &s);
            s
        });
        match outcome {
            Outcome::Waited => {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Disk => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Ran => {
                self.sim_insts.fetch_add(s.insts, Ordering::Relaxed);
                for (slot, &c) in self.sim_op_mix.iter().zip(&s.op_mix) {
                    slot.fetch_add(c, Ordering::Relaxed);
                }
            }
        }
        self.record_latency(t_req);
        s.clone()
    }

    fn record_latency(&self, t_req: Instant) {
        let ns = t_req.elapsed().as_nanos() as u64;
        self.job_latencies_ns.lock().unwrap().push(ns);
    }

    /// Publish the engine's traffic counters into a metrics registry
    /// (`engine.*` namespace).
    pub fn publish(&self, r: &mut cwsp_obs::Registry) {
        let c = self.counters();
        let id = r.counter("engine.jobs");
        r.add(id, c.jobs);
        let id = r.counter("engine.memo_hits");
        r.add(id, c.memo_hits);
        let id = r.counter("engine.disk_hits");
        r.add(id, c.disk_hits);
        let id = r.counter("engine.sim_insts");
        r.add(id, c.sim_insts);
        let id = r.gauge("engine.hit_rate");
        r.set(id, c.hit_rate());
        let lats = self.job_latencies_since(0);
        let id = r.gauge("engine.queue_latency_us.p50");
        r.set(id, percentile_ns(&lats, 50.0) as f64 / 1000.0);
        let id = r.gauge("engine.queue_latency_us.p99");
        r.set(id, percentile_ns(&lats, 99.0) as f64 / 1000.0);
        // Memory-tier paging traffic (faults, evictions, resident gauges).
        cwsp_obs::tier::publish(r);
        if let Some(DiskBackend::Spine(spine)) = &self.disk {
            let spine = spine.lock().unwrap();
            for (name, v) in [
                ("engine.spine.batches", spine.batches().len() as f64),
                ("engine.spine.entries", spine.entry_count() as f64),
                ("engine.spine.last_seq", spine.last_seq() as f64),
                ("engine.spine.compactions", spine.compactions() as f64),
            ] {
                let id = r.gauge(name);
                r.set(id, v);
            }
        }
    }

    fn flat_path(dir: &Path, key: (u64, u64)) -> PathBuf {
        dir.join(format!("{:016x}{:016x}.json", key.0, key.1))
    }

    fn disk_load(&self, key: (u64, u64)) -> Option<SimStats> {
        match self.disk.as_ref()? {
            DiskBackend::Flat(dir) => {
                let text = std::fs::read_to_string(Self::flat_path(dir, key)).ok()?;
                let v = json::parse(&text).ok()?;
                stats_from_json(v.get("stats")?)
            }
            DiskBackend::Spine(spine) => {
                let spine = spine.lock().unwrap();
                let bytes = spine.get(Key::sim(key.0, key.1))?;
                let v = json::parse(std::str::from_utf8(bytes).ok()?).ok()?;
                stats_from_json(v.get("stats")?)
            }
        }
    }

    fn disk_store(&self, key: (u64, u64), name: &str, s: &SimStats) {
        let Some(backend) = self.disk.as_ref() else {
            return;
        };
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str(name.to_string())),
            ("stats".into(), stats_to_json(s)),
        ]);
        match backend {
            DiskBackend::Flat(dir) => {
                if std::fs::create_dir_all(dir).is_err() {
                    return;
                }
                let path = Self::flat_path(dir, key);
                // Write-then-rename so concurrent figure binaries never
                // observe a torn file.
                let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
                if std::fs::write(&tmp, doc.to_pretty()).is_ok() {
                    let _ = std::fs::rename(&tmp, &path);
                }
            }
            DiskBackend::Spine(spine) => {
                let mut spine = spine.lock().unwrap();
                let _ = spine.commit(vec![(Key::sim(key.0, key.1), doc.to_pretty().into_bytes())]);
            }
        }
    }
}

/// One-shot migration of legacy flat per-key JSON files into the spine:
/// every parseable `<keyhex>.json` in `dir` is committed as one batch, then
/// the spine's `migrated` manifest flag stops this from ever running again.
/// The flat files are left in place (they are harmless, and `CWSP_STORE=flat`
/// can still read them); migrated entries keep their old-version keys, so
/// they are reachable as history rather than as fresh-lookup hits.
fn migrate_flat_cache(dir: &Path, spine: &mut Spine) {
    if spine.migrated() {
        return;
    }
    let mut items: Vec<(Key, Vec<u8>)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.len() == 32 + 5 && n.ends_with(".json"))
            .collect();
        names.sort();
        for name in names {
            let (Ok(a), Ok(b)) = (
                u64::from_str_radix(&name[..16], 16),
                u64::from_str_radix(&name[16..32], 16),
            ) else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(dir.join(&name)) else {
                continue;
            };
            // Only well-formed entries migrate; junk stays behind.
            if json::parse(&text)
                .ok()
                .and_then(|v| v.get("stats").cloned())
                .is_some()
            {
                items.push((Key::sim(a, b), text.into_bytes()));
            }
        }
    }
    let _ = spine.commit(items);
    spine.set_migrated();
}

/// The process-global engine (disk store configured from the environment:
/// `CWSP_CACHE`/`CWSP_CACHE_DIR` pick the directory, `CWSP_STORE` picks the
/// backend — `spine` by default, `flat` for the legacy per-key files).
pub fn engine() -> &'static Engine {
    static GLOBAL: OnceLock<Engine> = OnceLock::new();
    GLOBAL.get_or_init(|| match disk_dir_from_env() {
        None => Engine::new(None),
        Some(dir) => {
            if matches!(std::env::var("CWSP_STORE").as_deref(), Ok("flat")) {
                Engine::new(Some(dir))
            } else {
                Engine::with_spine(dir)
            }
        }
    })
}

fn disk_dir_from_env() -> Option<PathBuf> {
    if matches!(
        std::env::var("CWSP_CACHE").as_deref(),
        Ok("0") | Ok("off") | Ok("false") | Ok("no")
    ) {
        return None;
    }
    Some(match std::env::var("CWSP_CACHE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => repo_results_dir().join("cache"),
    })
}

/// `results/` resolved relative to the repository, not the current working
/// directory (tests run with per-crate cwd).
pub fn repo_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Resolved path of the harness report (`CWSP_HARNESS_JSON` overrides the
/// default `results/BENCH_harness.json`).
pub fn harness_json_path() -> PathBuf {
    match std::env::var("CWSP_HARNESS_JSON") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => repo_results_dir().join("BENCH_harness.json"),
    }
}

/// Merge `entry` into the harness report as a **top-level** section (a
/// sibling of `figures`) — for non-figure tools like `cwsp-lint`, whose
/// entries do not follow the per-figure schema.
///
/// Objects merge *recursively*: fields present in `entry` overwrite or
/// extend the stored section, fields absent from `entry` survive. This is
/// what lets independent tools share a section — `cwsp-lint` owns
/// `analyzer.lint`, the fuzz farm owns `analyzer.fuzz`, the flight recorder
/// owns `flight.*` — without each write clobbering the siblings.
pub fn merge_harness_section(section: &str, entry: Value) {
    merge_harness_section_at(&harness_json_path(), section, entry);
}

fn merge_harness_section_at(path: &Path, section: &str, entry: Value) {
    let mut doc = read_harness_doc(path);
    match doc.get(section) {
        Some(existing) => {
            let mut merged = existing.clone();
            deep_merge(&mut merged, entry);
            doc.set(section, merged);
        }
        None => doc.set(section, entry),
    }
    write_harness_doc(path, &doc);
}

/// Recursively fold `incoming` into `base`: object fields merge key-by-key,
/// everything else (scalars, arrays, type mismatches) is replaced by the
/// incoming value.
fn deep_merge(base: &mut Value, incoming: Value) {
    match (base, incoming) {
        (Value::Obj(base_fields), Value::Obj(incoming_fields)) => {
            for (key, val) in incoming_fields {
                match base_fields.iter_mut().find(|(k, _)| *k == key) {
                    Some(slot) => deep_merge(&mut slot.1, val),
                    None => base_fields.push((key, val)),
                }
            }
        }
        (slot, incoming) => *slot = incoming,
    }
}

fn read_harness_doc(path: &Path) -> Value {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|t| json::parse(&t).ok())
        .filter(|v| matches!(v, Value::Obj(_)))
        .unwrap_or_else(|| {
            Value::Obj(vec![
                ("version".into(), Value::Int(1)),
                ("figures".into(), Value::Obj(vec![])),
            ])
        })
}

fn write_harness_doc(path: &Path, doc: &Value) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Write-then-rename so concurrent tools never observe a torn file.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, doc.to_pretty()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Worker count: `CWSP_JOBS` if set (≥ 1), else available parallelism.
pub fn worker_count() -> usize {
    match std::env::var("CWSP_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

// Pool utilization accounting: per-item busy ns vs. workers × wall ns of
// each par_map call, accumulated process-wide so harness_main can report a
// utilization delta per figure.
static POOL_BUSY_NS: AtomicU64 = AtomicU64::new(0);
static POOL_CAPACITY_NS: AtomicU64 = AtomicU64::new(0);
// Widest pool any par_map in this process actually spawned — the *achieved*
// worker count, as opposed to the configured one (`worker_count()` can be 8
// while every call had one item and ran serial).
static POOL_PEAK_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Widest worker pool actually used so far; 1 when nothing fanned out.
pub fn pool_peak_workers() -> usize {
    POOL_PEAK_WORKERS.load(Ordering::Relaxed).max(1)
}

/// Cumulative `(busy_ns, capacity_ns)` across all [`par_map`] calls so far.
pub fn pool_usage() -> (u64, u64) {
    (
        POOL_BUSY_NS.load(Ordering::Relaxed),
        POOL_CAPACITY_NS.load(Ordering::Relaxed),
    )
}

/// Apply `f` to every item on a scoped worker pool; results come back in
/// input order. Workers pull items off a shared atomic cursor, so long jobs
/// don't serialize behind short ones.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count().min(n.max(1));
    POOL_PEAK_WORKERS.fetch_max(workers, Ordering::Relaxed);
    let t_pool = Instant::now();
    if workers <= 1 {
        let out: Vec<R> = items.iter().map(&f).collect();
        let wall = t_pool.elapsed().as_nanos() as u64;
        POOL_BUSY_NS.fetch_add(wall, Ordering::Relaxed);
        POOL_CAPACITY_NS.fetch_add(wall, Ordering::Relaxed);
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t_item = Instant::now();
                        let r = f(&items[i]);
                        POOL_BUSY_NS
                            .fetch_add(t_item.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        local.push((i, r));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("engine worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    let wall = t_pool.elapsed().as_nanos() as u64;
    POOL_CAPACITY_NS.fetch_add(wall * workers as u64, Ordering::Relaxed);
    out.into_iter()
        .map(|r| r.expect("worker covered every index"))
        .collect()
}

/// `p`-th percentile (nearest-rank) of unsorted ns samples; 0 when empty.
pub fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Wrap a figure binary's body: run it, time it, and merge a per-figure
/// entry into `results/BENCH_harness.json`. With `CWSP_OBS` set (any value
/// but `0`/`off`), also dumps the full metrics registry as JSON to stderr —
/// or to the file `CWSP_OBS` names, when its value contains a path
/// separator.
pub fn harness_main(figure: &str, body: impl FnOnce()) {
    let e = engine();
    let before = e.counters();
    let lat_cursor = e.job_latency_count();
    let pool_before = pool_usage();
    let t0 = Instant::now();
    body();
    let wall = t0.elapsed();
    let after = e.counters();
    let delta = Counters {
        jobs: after.jobs - before.jobs,
        memo_hits: after.memo_hits - before.memo_hits,
        disk_hits: after.disk_hits - before.disk_hits,
        sim_insts: after.sim_insts - before.sim_insts,
        sim_op_mix: std::array::from_fn(|i| after.sim_op_mix[i] - before.sim_op_mix[i]),
    };
    let latencies = e.job_latencies_since(lat_cursor);
    let pool_after = pool_usage();
    let busy = pool_after.0 - pool_before.0;
    let capacity = pool_after.1 - pool_before.1;
    let utilization = if capacity > 0 {
        busy as f64 / capacity as f64
    } else {
        0.0
    };
    let entry = build_harness_entry(&delta, wall, &latencies, utilization);
    // On the spine backend the entry also commits as an immutable version,
    // so the figure's perf trajectory is queryable as of any past run; the
    // telemetry keyspace additionally accumulates the compact snapshot.
    e.commit_figure_entry(figure, &entry);
    e.commit_telemetry(figure, &telemetry_snapshot(&entry));
    merge_harness_entry(&harness_json_path(), figure, entry);
    dump_tier_snapshot();
    eprintln!(
        "[harness] {figure}: {:.2}s wall, {} jobs, {} memo + {} disk hits ({}% cached), {} workers",
        wall.as_secs_f64(),
        delta.jobs,
        delta.memo_hits,
        delta.disk_hits,
        (delta.hit_rate() * 100.0).round(),
        worker_count(),
    );
    dump_obs_registry(e);
}

/// When `CWSP_TIER_JSON` names a file, write the process-wide tier
/// telemetry snapshot there (the storage-smoke CI job asserts the resident
/// peak against `CWSP_MEM_BUDGET` from this artifact).
fn dump_tier_snapshot() {
    let Ok(dest) = std::env::var("CWSP_TIER_JSON") else {
        return;
    };
    if dest.is_empty() {
        return;
    }
    if let Some(dir) = Path::new(&dest).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(err) = std::fs::write(&dest, cwsp_obs::tier::snapshot_json()) {
        eprintln!("[tier] failed to write {dest}: {err}");
    }
}

/// When `CWSP_OBS` is on, publish the engine's metrics into a registry and
/// dump it (stderr, or the named file when the value looks like a path).
fn dump_obs_registry(e: &Engine) {
    let dest = match std::env::var("CWSP_OBS") {
        Ok(v) if !v.is_empty() && !matches!(v.as_str(), "0" | "off" | "false" | "no") => v,
        _ => return,
    };
    let mut reg = cwsp_obs::Registry::new();
    e.publish(&mut reg);
    let json = reg.to_json();
    if dest.contains('/') {
        if let Some(dir) = Path::new(&dest).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(err) = std::fs::write(&dest, &json) {
            eprintln!("[obs] failed to write {dest}: {err}");
        }
    } else {
        eprintln!("[obs] {json}");
    }
}

/// Build one figure's telemetry entry for `results/BENCH_harness.json`.
/// Kept separate from [`harness_main`] so the schema is unit-testable; the
/// shape is validated by [`validate_harness_entry`].
fn build_harness_entry(
    delta: &Counters,
    wall: std::time::Duration,
    latencies_ns: &[u64],
    utilization: f64,
) -> Value {
    let secs = wall.as_secs_f64();
    let steps_per_sec = if secs > 0.0 {
        delta.sim_insts as f64 / secs
    } else {
        0.0
    };
    let op_mix = Value::Obj(
        cwsp_ir::decoded::OPCODE_NAMES
            .iter()
            .zip(delta.sim_op_mix)
            .map(|(name, n)| ((*name).to_string(), Value::Int(n)))
            .collect(),
    );
    let lat_us = |p: f64| Value::Float((percentile_ns(latencies_ns, p) as f64 / 1000.0).round());
    let queue_latency = Value::Obj(vec![
        ("p50".into(), lat_us(50.0)),
        ("p90".into(), lat_us(90.0)),
        ("p99".into(), lat_us(99.0)),
    ]);
    Value::Obj(vec![
        ("wall_ms".into(), Value::Int(wall.as_millis() as u64)),
        ("jobs".into(), Value::Int(delta.jobs)),
        ("memo_hits".into(), Value::Int(delta.memo_hits)),
        ("disk_hits".into(), Value::Int(delta.disk_hits)),
        (
            "hit_rate".into(),
            Value::Float((delta.hit_rate() * 1e4).round() / 1e4),
        ),
        ("workers".into(), Value::Int(worker_count() as u64)),
        (
            "workers_achieved".into(),
            Value::Int(pool_peak_workers() as u64),
        ),
        ("sim_insts".into(), Value::Int(delta.sim_insts)),
        (
            "steps_per_sec".into(),
            Value::Float((steps_per_sec * 10.0).round() / 10.0),
        ),
        ("queue_latency_us".into(), queue_latency),
        (
            "worker_utilization".into(),
            Value::Float((utilization * 1e4).round() / 1e4),
        ),
        ("op_mix".into(), op_mix),
        ("flight".into(), flight_to_json()),
    ])
}

/// Process-wide flight-recorder counters as a harness sub-object.
fn flight_to_json() -> Value {
    let fl = cwsp_obs::flight::snapshot();
    Value::Obj(vec![
        ("enabled".into(), Value::Bool(fl.enabled)),
        ("journals".into(), Value::Int(fl.journals)),
        ("records".into(), Value::Int(fl.records)),
        ("pages".into(), Value::Int(fl.pages)),
        ("bytes".into(), Value::Int(fl.bytes)),
        ("dropped".into(), Value::Int(fl.dropped)),
    ])
}

/// The telemetry snapshot committed to the spine's telemetry keyspace on
/// every harness run: the run's headline numbers plus the flight-recorder
/// counters. Repeated runs accumulate a per-figure, time-travel-queryable
/// history — the fleet telemetry spine.
fn telemetry_snapshot(entry: &Value) -> Value {
    let mut fields = vec![("schema".into(), Value::Str("cwsp-telemetry-v1".into()))];
    for k in ["wall_ms", "jobs", "sim_insts", "steps_per_sec", "flight"] {
        if let Some(v) = entry.get(k) {
            fields.push((k.to_string(), v.clone()));
        }
    }
    Value::Obj(fields)
}

/// Validate one figure entry against the harness schema: every required
/// field present with the right JSON type. Returns the first problem found.
///
/// # Errors
/// A human-readable description of the missing or mistyped field.
pub fn validate_harness_entry(entry: &Value) -> Result<(), String> {
    let need_int = |k: &str| -> Result<(), String> {
        entry
            .get(k)
            .ok_or_else(|| format!("missing field `{k}`"))?
            .as_u64()
            .map(|_| ())
            .ok_or_else(|| format!("field `{k}` is not an integer"))
    };
    let need_num = |k: &str| -> Result<(), String> {
        match entry.get(k) {
            Some(Value::Float(_) | Value::Int(_)) => Ok(()),
            Some(_) => Err(format!("field `{k}` is not a number")),
            None => Err(format!("missing field `{k}`")),
        }
    };
    for k in [
        "wall_ms",
        "jobs",
        "memo_hits",
        "disk_hits",
        "workers",
        "sim_insts",
    ] {
        need_int(k)?;
    }
    for k in ["hit_rate", "steps_per_sec", "worker_utilization"] {
        need_num(k)?;
    }
    let q = entry
        .get("queue_latency_us")
        .ok_or("missing field `queue_latency_us`")?;
    for p in ["p50", "p90", "p99"] {
        match q.get(p) {
            Some(Value::Float(_) | Value::Int(_)) => {}
            Some(_) => return Err(format!("queue_latency_us.{p} is not a number")),
            None => return Err(format!("missing queue_latency_us.{p}")),
        }
    }
    let mix = entry.get("op_mix").ok_or("missing field `op_mix`")?;
    match mix {
        Value::Obj(fields) if fields.len() == cwsp_ir::decoded::OPCODE_COUNT => {}
        Value::Obj(fields) => {
            return Err(format!(
                "op_mix has {} opcodes, expected {}",
                fields.len(),
                cwsp_ir::decoded::OPCODE_COUNT
            ))
        }
        _ => return Err("op_mix is not an object".into()),
    }
    let fl = entry.get("flight").ok_or("missing field `flight`")?;
    match fl.get("enabled") {
        Some(Value::Bool(_)) => {}
        Some(_) => return Err("flight.enabled is not a bool".into()),
        None => return Err("missing flight.enabled".into()),
    }
    for k in ["journals", "records", "pages", "bytes", "dropped"] {
        match fl.get(k) {
            Some(Value::Int(_)) => {}
            Some(_) => return Err(format!("flight.{k} is not an integer")),
            None => return Err(format!("missing flight.{k}")),
        }
    }
    Ok(())
}

fn merge_harness_entry(path: &Path, figure: &str, mut entry: Value) {
    let mut doc = read_harness_doc(path);
    if doc.get("figures").is_none() {
        doc.set("figures", Value::Obj(vec![]));
    }
    if let Value::Obj(fields) = &mut doc {
        if let Some((_, figures)) = fields.iter_mut().find(|(k, _)| k == "figures") {
            // Relative throughput change vs. the entry being replaced, so a
            // refresh records how much the run sped up or regressed. Only
            // meaningful when both runs simulated fresh instructions (a
            // fully-cached run reports ~0 steps/sec and says nothing).
            let prior = figures
                .get(figure)
                .and_then(|e| e.get("steps_per_sec"))
                .and_then(Value::as_f64);
            let fresh = entry.get("steps_per_sec").and_then(Value::as_f64);
            if let (Some(old), Some(new)) = (prior, fresh) {
                if old > 0.0 && new > 0.0 {
                    let delta = (new - old) / old;
                    entry.set(
                        "steps_per_sec_delta",
                        Value::Float((delta * 1e4).round() / 1e4),
                    );
                }
            }
            // A figure served entirely spine-warm simulates nothing fresh,
            // so no throughput delta exists; say so explicitly instead of
            // silently omitting `steps_per_sec_delta`.
            if entry.get("sim_insts").and_then(Value::as_u64) == Some(0) {
                entry.set("cache_hit", Value::Bool(true));
            }
            figures.set(figure, entry);
        }
    }
    write_harness_doc(path, &doc);
}

fn pair_to_json(p: (u64, u64)) -> Value {
    Value::Arr(vec![Value::Int(p.0), Value::Int(p.1)])
}

fn pair_from_json(v: &Value) -> Option<(u64, u64)> {
    let a = v.as_arr()?;
    Some((a.first()?.as_u64()?, a.get(1)?.as_u64()?))
}

/// Serialize stats for the disk cache (every field; see `stats_from_json`).
fn stats_to_json(s: &SimStats) -> Value {
    Value::Obj(vec![
        ("cycles".into(), Value::Int(s.cycles)),
        ("insts".into(), Value::Int(s.insts)),
        ("loads".into(), Value::Int(s.loads)),
        ("stores".into(), Value::Int(s.stores)),
        ("ckpt_stores".into(), Value::Int(s.ckpt_stores)),
        ("frame_stores".into(), Value::Int(s.frame_stores)),
        ("syncs".into(), Value::Int(s.syncs)),
        ("regions".into(), Value::Int(s.regions)),
        ("region_insts".into(), Value::Int(s.region_insts)),
        ("wpq_hits".into(), Value::Int(s.wpq_hits)),
        ("wb_delays".into(), Value::Int(s.wb_delays)),
        ("wb_occupancy_sum".into(), Value::Int(s.wb_occupancy_sum)),
        ("pb_occupancy_sum".into(), Value::Int(s.pb_occupancy_sum)),
        ("stall_pb".into(), Value::Int(s.stall_pb)),
        ("stall_rbt".into(), Value::Int(s.stall_rbt)),
        ("stall_wb".into(), Value::Int(s.stall_wb)),
        ("stall_sync".into(), Value::Int(s.stall_sync)),
        ("stall_wpq".into(), Value::Int(s.stall_wpq)),
        ("stall_scheme".into(), Value::Int(s.stall_scheme)),
        ("l1".into(), pair_to_json(s.l1)),
        ("llc_sram".into(), pair_to_json(s.llc_sram)),
        ("dram_cache".into(), pair_to_json(s.dram_cache)),
        ("nvm_reads".into(), Value::Int(s.nvm_reads)),
        ("nvm_writes".into(), Value::Int(s.nvm_writes)),
        ("log_appends".into(), Value::Int(s.log_appends)),
        ("peak_live_logs".into(), Value::Int(s.peak_live_logs as u64)),
        (
            "region_size_hist".into(),
            Value::Arr(s.region_size_hist.iter().map(|&n| Value::Int(n)).collect()),
        ),
        (
            "op_mix".into(),
            Value::Arr(s.op_mix.iter().map(|&n| Value::Int(n)).collect()),
        ),
    ])
}

/// Deserialize stats; `None` on any missing/mistyped field (treated as a
/// cache miss, so schema drift degrades to recomputation, never corruption).
fn stats_from_json(v: &Value) -> Option<SimStats> {
    let hist_v = v.get("region_size_hist")?.as_arr()?;
    if hist_v.len() != 7 {
        return None;
    }
    let mut region_size_hist = [0u64; 7];
    for (slot, item) in region_size_hist.iter_mut().zip(hist_v) {
        *slot = item.as_u64()?;
    }
    let mix_v = v.get("op_mix")?.as_arr()?;
    if mix_v.len() != cwsp_ir::decoded::OPCODE_COUNT {
        return None;
    }
    let mut op_mix = [0u64; cwsp_ir::decoded::OPCODE_COUNT];
    for (slot, item) in op_mix.iter_mut().zip(mix_v) {
        *slot = item.as_u64()?;
    }
    Some(SimStats {
        cycles: v.get("cycles")?.as_u64()?,
        insts: v.get("insts")?.as_u64()?,
        loads: v.get("loads")?.as_u64()?,
        stores: v.get("stores")?.as_u64()?,
        ckpt_stores: v.get("ckpt_stores")?.as_u64()?,
        frame_stores: v.get("frame_stores")?.as_u64()?,
        syncs: v.get("syncs")?.as_u64()?,
        regions: v.get("regions")?.as_u64()?,
        region_insts: v.get("region_insts")?.as_u64()?,
        wpq_hits: v.get("wpq_hits")?.as_u64()?,
        wb_delays: v.get("wb_delays")?.as_u64()?,
        wb_occupancy_sum: v.get("wb_occupancy_sum")?.as_u64()?,
        pb_occupancy_sum: v.get("pb_occupancy_sum")?.as_u64()?,
        stall_pb: v.get("stall_pb")?.as_u64()?,
        stall_rbt: v.get("stall_rbt")?.as_u64()?,
        stall_wb: v.get("stall_wb")?.as_u64()?,
        stall_sync: v.get("stall_sync")?.as_u64()?,
        stall_wpq: v.get("stall_wpq")?.as_u64()?,
        stall_scheme: v.get("stall_scheme")?.as_u64()?,
        l1: pair_from_json(v.get("l1")?)?,
        llc_sram: pair_from_json(v.get("llc_sram")?)?,
        dram_cache: pair_from_json(v.get("dram_cache")?)?,
        nvm_reads: v.get("nvm_reads")?.as_u64()?,
        nvm_writes: v.get("nvm_writes")?.as_u64()?,
        log_appends: v.get("log_appends")?.as_u64()?,
        peak_live_logs: v.get("peak_live_logs")?.as_u64()? as usize,
        region_size_hist,
        op_mix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_core::genprog::generate_default;

    fn tiny_module() -> Module {
        generate_default(11)
    }

    #[test]
    fn stats_json_round_trips_every_field() {
        let mut s = SimStats::default();
        // Give every field a distinct value so a swapped mapping is caught.
        for (n, f) in [
            &mut s.cycles,
            &mut s.insts,
            &mut s.loads,
            &mut s.stores,
            &mut s.ckpt_stores,
            &mut s.frame_stores,
            &mut s.syncs,
            &mut s.regions,
            &mut s.region_insts,
            &mut s.wpq_hits,
            &mut s.wb_delays,
            &mut s.wb_occupancy_sum,
            &mut s.pb_occupancy_sum,
            &mut s.stall_pb,
            &mut s.stall_rbt,
            &mut s.stall_wb,
            &mut s.stall_sync,
            &mut s.stall_wpq,
            &mut s.stall_scheme,
            &mut s.nvm_reads,
            &mut s.nvm_writes,
            &mut s.log_appends,
        ]
        .into_iter()
        .enumerate()
        {
            *f = n as u64 + 1;
        }
        s.l1 = (100, 101);
        s.llc_sram = (102, 103);
        s.dram_cache = (104, 105);
        s.peak_live_logs = 99;
        s.region_size_hist = [1, 2, 3, 4, 5, 6, 7];
        s.op_mix = std::array::from_fn(|i| 200 + i as u64);
        let text = stats_to_json(&s).to_pretty();
        let back = stats_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn memo_runs_each_key_once() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let a = e.stats("t", &m, &cfg, Scheme::Baseline);
        let b = e.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(a, b);
        let c = e.counters();
        assert_eq!(c.jobs, 2);
        assert_eq!(c.memo_hits, 1);
        assert_eq!(c.disk_hits, 0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compile_memo_shares_one_compilation() {
        let e = Engine::new(None);
        let m = tiny_module();
        let a = e.compiled(&m, CompileOptions::default());
        let b = e.compiled(&m, CompileOptions::default());
        assert!(Arc::ptr_eq(&a, &b), "same Arc, compiled once");
        let c = e.compiled(
            &m,
            CompileOptions {
                pruning: false,
                ..Default::default()
            },
        );
        assert!(!Arc::ptr_eq(&a, &c), "different options compile separately");
    }

    #[test]
    fn disk_cache_round_trips_and_survives_a_fresh_engine() {
        let dir = std::env::temp_dir().join(format!("cwsp-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let warm = Engine::new(Some(dir.clone()));
        let a = warm.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(warm.counters().disk_hits, 0);
        // A fresh engine (fresh process, conceptually) hits the disk.
        let cold = Engine::new(Some(dir.clone()));
        let b = cold.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(a, b);
        assert_eq!(cold.counters().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spine_backend_round_trips_and_survives_a_fresh_engine() {
        let dir = std::env::temp_dir().join(format!("cwsp-spine-engine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let warm = Engine::with_spine(dir.clone());
        assert!(warm.uses_spine());
        let a = warm.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(warm.counters().disk_hits, 0);
        // A fresh engine (fresh process, conceptually) hits the spine.
        let cold = Engine::with_spine(dir.clone());
        let b = cold.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(a, b);
        assert_eq!(cold.counters().disk_hits, 1);
        // The spine wrote batches + a manifest.
        let manifest = std::fs::read_to_string(dir.join("MANIFEST.json")).unwrap();
        assert!(manifest.contains(".batch"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_cache_migrates_into_spine_once() {
        let dir = std::env::temp_dir().join(format!("cwsp-migrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = tiny_module();
        let cfg = SimConfig::default();
        // Seed a legacy flat cache.
        let flat = Engine::new(Some(dir.clone()));
        let a = flat.stats("t", &m, &cfg, Scheme::Baseline);
        // Opening the spine on the same directory migrates the flat entry.
        let spined = Engine::with_spine(dir.clone());
        let key = (module_fp(&m), machine_fp(&cfg, Scheme::Baseline));
        let migrated = spined
            .with_spine_handle(|s| {
                assert!(s.migrated(), "migration flag set");
                s.get(Key::sim(key.0, key.1)).map(|b| b.to_vec())
            })
            .unwrap()
            .expect("flat entry is reachable through the spine");
        let v = json::parse(std::str::from_utf8(&migrated).unwrap()).unwrap();
        assert_eq!(stats_from_json(v.get("stats").unwrap()).unwrap(), a);
        // And a spine load serves it as a disk hit.
        let b = spined.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(a, b);
        assert_eq!(spined.counters().disk_hits, 1);
        // Re-opening does not duplicate history (migration is one-shot).
        let again = Engine::with_spine(dir.clone());
        let versions = again
            .with_spine_handle(|s| s.history(Key::sim(key.0, key.1)).len())
            .unwrap();
        assert_eq!(versions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn figure_entries_commit_with_time_travel() {
        let dir = std::env::temp_dir().join(format!("cwsp-figspine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::with_spine(dir.clone());
        let entry = |ms| Value::Obj(vec![("wall_ms".into(), Value::Int(ms))]);
        e.commit_figure_entry("fig13_overhead", &entry(10));
        e.commit_figure_entry("fig13_overhead", &entry(30));
        let key = Key::figure(name_hash("fig13_overhead"));
        let (s1, latest, past) = e
            .with_spine_handle(|s| {
                let hist = s.history(key);
                assert_eq!(hist.len(), 2, "both runs retained");
                let s1 = hist[0].0;
                let latest = s.get(key).unwrap().to_vec();
                let past = s.get_as_of(key, s1).unwrap().to_vec();
                (s1, latest, past)
            })
            .unwrap();
        assert!(s1 >= 1);
        let wall = |b: &[u8]| {
            json::parse(std::str::from_utf8(b).unwrap())
                .unwrap()
                .get("wall_ms")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        assert_eq!(wall(&latest), 30);
        assert_eq!(wall(&past), 10, "time travel sees the first run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_stats_agree_with_each_other() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let runs: Vec<SimStats> = par_map(&[(); 8], |_| e.stats("t", &m, &cfg, Scheme::Baseline));
        for r in &runs[1..] {
            assert_eq!(*r, runs[0]);
        }
        assert_eq!(e.counters().jobs, 8);
    }

    #[test]
    fn harness_entry_schema_validates_and_catches_drift() {
        let delta = Counters {
            jobs: 10,
            memo_hits: 4,
            sim_insts: 1000,
            ..Default::default()
        };
        let entry = build_harness_entry(
            &delta,
            std::time::Duration::from_millis(12),
            &[1_000, 2_000, 50_000],
            0.83,
        );
        validate_harness_entry(&entry).expect("fresh entry validates");
        // Round-trip through the JSON text form (what lands on disk).
        let back = json::parse(&entry.to_pretty()).unwrap();
        validate_harness_entry(&back).expect("parsed entry validates");
        // Drift is caught: drop a required field.
        let mut broken = entry.clone();
        if let Value::Obj(fields) = &mut broken {
            fields.retain(|(k, _)| k != "queue_latency_us");
        }
        assert!(validate_harness_entry(&broken).is_err());
    }

    #[test]
    fn job_latencies_and_percentiles() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        assert_eq!(e.job_latency_count(), 0);
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let lats = e.job_latencies_since(0);
        assert_eq!(lats.len(), 2, "every request records a latency");
        assert!(lats[0] > 0);
        // Nearest-rank percentiles on a known distribution.
        let s = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile_ns(&s, 50.0), 50);
        assert_eq!(percentile_ns(&s, 90.0), 90);
        assert_eq!(percentile_ns(&s, 99.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }

    #[test]
    fn pool_usage_accumulates_across_par_map() {
        let before = pool_usage();
        let items: Vec<u64> = (0..32).collect();
        let _ = par_map(&items, |&x| x + 1);
        let after = pool_usage();
        assert!(after.1 > before.1, "capacity advanced");
        assert!(after.0 >= before.0, "busy time is monotonic");
    }

    #[test]
    fn engine_publishes_metrics_registry() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let mut reg = cwsp_obs::Registry::new();
        e.publish(&mut reg);
        assert_eq!(reg.counter_value("engine.jobs"), 2);
        assert_eq!(reg.counter_value("engine.memo_hits"), 1);
        assert!((reg.gauge_value("engine.hit_rate") - 0.5).abs() < 1e-12);
        assert!(json::parse(&reg.to_json()).is_ok(), "registry JSON parses");
    }

    #[test]
    fn harness_section_merges_as_top_level_key() {
        let dir = std::env::temp_dir().join(format!("cwsp-section-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_harness.json");
        merge_harness_entry(
            &path,
            "fig13_overhead",
            Value::Obj(vec![("wall_ms".into(), Value::Int(10))]),
        );
        merge_harness_section_at(
            &path,
            "analyzer",
            Value::Obj(vec![("modules".into(), Value::Int(38))]),
        );
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // The section is a sibling of `figures`, not inside it.
        assert_eq!(
            doc.get("analyzer")
                .unwrap()
                .get("modules")
                .unwrap()
                .as_u64(),
            Some(38)
        );
        assert!(doc.get("figures").unwrap().get("analyzer").is_none());
        assert!(doc.get("figures").unwrap().get("fig13_overhead").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harness_section_deep_merges_nested_objects() {
        let dir = std::env::temp_dir().join(format!("cwsp-deepmerge-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_harness.json");
        // cwsp-lint writes analyzer.lint...
        merge_harness_section_at(
            &path,
            "analyzer",
            Value::Obj(vec![(
                "lint".into(),
                Value::Obj(vec![
                    ("modules".into(), Value::Int(38)),
                    ("errors".into(), Value::Int(0)),
                ]),
            )]),
        );
        // ...then the fuzz farm writes analyzer.fuzz — lint must survive,
        // and the overlapping lint.modules update must not drop lint.errors.
        merge_harness_section_at(
            &path,
            "analyzer",
            Value::Obj(vec![
                (
                    "fuzz".into(),
                    Value::Obj(vec![("corpus".into(), Value::Int(60))]),
                ),
                (
                    "lint".into(),
                    Value::Obj(vec![("modules".into(), Value::Int(40))]),
                ),
            ]),
        );
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let analyzer = doc.get("analyzer").unwrap();
        let lint = analyzer.get("lint").unwrap();
        assert_eq!(lint.get("modules").unwrap().as_u64(), Some(40));
        assert_eq!(
            lint.get("errors").unwrap().as_u64(),
            Some(0),
            "sibling leaf survives the partial update"
        );
        assert_eq!(
            analyzer
                .get("fuzz")
                .unwrap()
                .get("corpus")
                .unwrap()
                .as_u64(),
            Some(60),
            "sibling subsection survives"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harness_entry_merges_into_existing_document() {
        let dir = std::env::temp_dir().join(format!("cwsp-harness-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_harness.json");
        let entry = |ms| {
            Value::Obj(vec![
                ("wall_ms".into(), Value::Int(ms)),
                ("jobs".into(), Value::Int(4)),
            ])
        };
        merge_harness_entry(&path, "fig13_overhead", entry(10));
        merge_harness_entry(&path, "fig14_wsp_comparison", entry(20));
        merge_harness_entry(&path, "fig13_overhead", entry(30)); // overwrite
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let figs = doc.get("figures").unwrap();
        assert_eq!(
            figs.get("fig13_overhead")
                .unwrap()
                .get("wall_ms")
                .unwrap()
                .as_u64(),
            Some(30)
        );
        assert_eq!(
            figs.get("fig14_wsp_comparison")
                .unwrap()
                .get("wall_ms")
                .unwrap()
                .as_u64(),
            Some(20)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spine_warm_refresh_is_marked_cache_hit_not_silent() {
        let dir = std::env::temp_dir().join(format!("cwsp-cachehit-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_harness.json");
        let entry = |insts: u64, sps: f64| {
            Value::Obj(vec![
                ("sim_insts".into(), Value::Int(insts)),
                ("steps_per_sec".into(), Value::Float(sps)),
            ])
        };
        // Fresh run, then a refresh served entirely spine-warm: zero fresh
        // instructions, ~0 steps/sec. No delta — but an explicit marker.
        merge_harness_entry(&path, "fig08_wpq_hits", entry(5_000, 120.0));
        merge_harness_entry(&path, "fig08_wpq_hits", entry(0, 0.0));
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let fig = doc.get("figures").unwrap().get("fig08_wpq_hits").unwrap();
        assert_eq!(fig.get("cache_hit"), Some(&Value::Bool(true)));
        assert!(fig.get("steps_per_sec_delta").is_none());
        // A genuinely fresh refresh gets the delta and no marker.
        merge_harness_entry(&path, "fig08_wpq_hits", entry(5_000, 240.0));
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let fig = doc.get("figures").unwrap().get("fig08_wpq_hits").unwrap();
        assert!(fig.get("cache_hit").is_none());
        // vs. the spine-warm entry (0.0): delta suppressed — but against the
        // *stored* prior, which was the warm one, so still none. One more
        // fresh run pins the delta path.
        merge_harness_entry(&path, "fig08_wpq_hits", entry(5_000, 360.0));
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let fig = doc.get("figures").unwrap().get("fig08_wpq_hits").unwrap();
        assert_eq!(fig.get("steps_per_sec_delta").unwrap().as_f64(), Some(0.5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harness_entry_carries_flight_counters_and_schema_enforces_them() {
        let entry = build_harness_entry(
            &Counters::default(),
            std::time::Duration::from_millis(1),
            &[],
            0.0,
        );
        let fl = entry.get("flight").expect("flight sub-object present");
        for k in ["journals", "records", "pages", "bytes", "dropped"] {
            assert!(fl.get(k).unwrap().as_u64().is_some(), "flight.{k}");
        }
        let mut broken = entry.clone();
        if let Value::Obj(fields) = &mut broken {
            fields.retain(|(k, _)| k != "flight");
        }
        assert_eq!(
            validate_harness_entry(&broken),
            Err("missing field `flight`".into())
        );
    }

    #[test]
    fn telemetry_commits_accumulate_a_spine_timeline() {
        let dir = std::env::temp_dir().join(format!("cwsp-telem-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let e = Engine::with_spine(dir.clone());
        assert!(e.uses_spine());
        let snap = |n: u64| Value::Obj(vec![("records".into(), Value::Int(n))]);
        e.commit_telemetry("fig08_wpq_hits", &snap(1));
        e.commit_telemetry("fig08_wpq_hits", &snap(2));
        let (len, latest) = e
            .with_spine_handle(|s| {
                let key = Key::telemetry(name_hash("fig08_wpq_hits"));
                (s.history(key).len(), s.get(key).map(<[u8]>::to_vec))
            })
            .unwrap();
        assert_eq!(len, 2, "each run is one immutable version");
        let latest = json::parse(std::str::from_utf8(&latest.unwrap()).unwrap()).unwrap();
        assert_eq!(latest.get("records").unwrap().as_u64(), Some(2));
        // The telemetry keyspace never collides with figure entries.
        let figs = e
            .with_spine_handle(|s| s.history(Key::figure(name_hash("fig08_wpq_hits"))).len())
            .unwrap();
        assert_eq!(figs, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
