//! Figure 20: cWSP slowdown with an added L3 (3-level SRAM + DRAM cache)
//! (paper: 8% average).

use cwsp_bench::{measure_all, print_results, slowdown};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig20_l3_hierarchy", run);
}

fn run() {
    let cfg = SimConfig::default().with_l3();
    let apps = cwsp_workloads::all();
    let results = measure_all(&apps, |w| {
        slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
    });
    print_results(
        "Fig 20: cWSP slowdown with added L3 (paper: 1.08 gmean)",
        "x",
        &results,
    );
}
