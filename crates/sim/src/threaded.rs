//! Quantum-synchronized threaded multi-core execution.
//!
//! Simulating `n` cores on `n` host threads is only useful if the result does
//! not depend on the host scheduler. This module runs each simulated core on
//! a real thread under a *quantum-synchronized* protocol that is bit-exact
//! regardless of how the OS interleaves the workers:
//!
//! 1. **Parallel phase.** Every core executes up to `quantum` instructions
//!    against a *private* copy of memory, recording each store in a write
//!    log. A core stops early when it halts or when its next instruction is
//!    a synchronization operation (`AtomicRmw` / `Fence`) — sync ops never
//!    execute against private memory.
//! 2. **Barrier + merge.** After all workers join, the write logs are applied
//!    to the canonical memory *in core order* (core 0's log first, then core
//!    1's, …), and the same combined sequence is applied to every private
//!    memory. Same-address conflicts therefore resolve identically on every
//!    run: last writer in core order wins.
//! 3. **Serial sync phase.** Each core that stopped before a sync op executes
//!    exactly one instruction against the canonical memory, in core order;
//!    its writes propagate to every private memory immediately.
//!
//! The host scheduler only decides *when* workers run, never *what* they
//! observe: private memories are isolated during the parallel phase and every
//! cross-core communication point (log merge, sync ops) is ordered by core
//! index. Running with 1 host thread or 16 produces byte-identical memory,
//! outputs, and step counts — the determinism tests below assert exactly
//! that.
//!
//! ## Memory model
//!
//! The protocol implements a release/acquire discipline at quantum
//! granularity: a core's plain writes become globally visible at the barrier
//! *before* its next sync op executes, so lock-protected critical sections
//! and atomic hand-offs order exactly as they would under any legal
//! interleaving. Data-race-free programs (the only ones the compiler's
//! static race analysis admits, cross-checked by [`crate::race`]) observe a
//! schedule that is equivalent to some sequentially-consistent interleaving;
//! racy programs get *a* deterministic answer rather than the host's
//! coin-flip.
//!
//! Host thread count defaults to `CWSP_MC_THREADS` (else available
//! parallelism) and never affects results — only wall-clock time.

use cwsp_ir::decoded::DecodedModule;
use cwsp_ir::interp::{Interp, InterpError, StepEffect};
use cwsp_ir::memory::Memory;
use cwsp_ir::module::Module;
use cwsp_ir::types::Word;
use std::sync::Arc;

/// Opcode indices that synchronize (see `DecodedInst::opcode`).
const OP_ATOMIC: usize = 8;
const OP_FENCE: usize = 9;

/// Host thread count: `CWSP_MC_THREADS` if set (≥ 1), else available
/// parallelism. Read per call so tests can vary the variable.
pub fn default_threads() -> usize {
    match std::env::var("CWSP_MC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Configuration for one threaded run.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Simulated cores; each runs the entry with its core index as the first
    /// argument (the machine's convention).
    pub cores: usize,
    /// Host threads; 0 means [`default_threads`]. Never affects results.
    pub threads: usize,
    /// Instructions per core per quantum (clamped to ≥ 1). Smaller quanta
    /// synchronize more often; larger quanta amortize the barrier.
    pub quantum: u64,
    /// Total step budget across all cores, checked at quantum granularity
    /// (a run may overshoot by at most `cores × quantum`).
    pub max_steps: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            cores: 2,
            threads: 0,
            quantum: 4096,
            max_steps: 50_000_000,
        }
    }
}

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOutcome {
    /// Total dynamic instructions across all cores.
    pub steps: u64,
    /// Per-core dynamic instruction counts.
    pub per_core_steps: Vec<u64>,
    /// Quanta executed (barrier crossings).
    pub quanta: u64,
    /// Whether every core ran to halt within the budget.
    pub completed: bool,
    /// Host threads actually used.
    pub threads: usize,
    /// Per-core output words (`Out` instructions), in program order.
    pub outputs: Vec<Vec<Word>>,
}

/// Per-core execution state; owned by exactly one worker during a parallel
/// phase, by the coordinator otherwise.
struct CoreState<'m> {
    interp: Interp<'m>,
    /// Private memory image; re-converges with canonical at every barrier.
    mem: Memory,
    /// `(addr, value)` stores of the current parallel phase, program order.
    log: Vec<(Word, Word)>,
    out: Vec<Word>,
    steps: u64,
    /// Trap raised during the parallel phase, surfaced after the barrier in
    /// core order (so which-trap-wins is schedule-independent).
    err: Option<InterpError>,
    eff: StepEffect,
}

/// True when the core's next instruction must execute against canonical
/// memory.
fn at_sync(interp: &Interp<'_>) -> bool {
    matches!(interp.next_opcode(), Some(OP_ATOMIC) | Some(OP_FENCE))
}

/// Run one core's parallel phase: up to `quantum` instructions against its
/// private memory, stopping at halt or before a sync op. Traps park in
/// `state.err` instead of propagating (the coordinator picks the winner
/// deterministically).
fn run_parallel_phase(state: &mut CoreState<'_>, quantum: u64) {
    for _ in 0..quantum {
        if state.interp.is_halted() || at_sync(&state.interp) {
            break;
        }
        if let Err(e) = state.interp.step_into(&mut state.mem, &mut state.eff) {
            state.err = Some(e);
            break;
        }
        state.steps += 1;
        state.log.extend_from_slice(&state.eff.writes);
        if let Some(w) = state.eff.out {
            state.out.push(w);
        }
    }
}

/// Execute `module` on `cfg.cores` simulated cores across host threads and
/// return the outcome plus the final canonical memory.
///
/// # Errors
/// Propagates interpreter traps ([`InterpError::NoEntry`] if the module has
/// no entry). When several cores trap in one quantum, the lowest-indexed
/// core's trap wins — deterministically.
pub fn run_threaded(
    module: &Module,
    cfg: &ThreadedConfig,
) -> Result<(ThreadedOutcome, Memory), InterpError> {
    let cores = cfg.cores.max(1);
    let threads = if cfg.threads == 0 {
        default_threads()
    } else {
        cfg.threads
    }
    .min(cores);
    let quantum = cfg.quantum.max(1);

    let dec = Arc::new(DecodedModule::new(module));
    let mut canonical = Memory::new();
    // `with_args*` constructors are image-preserving (recovery re-enters an
    // existing NVM image); a fresh run wants the global initializers applied.
    for g in module.globals() {
        for (i, &v) in g.init.iter().enumerate() {
            canonical.store(g.addr + i as Word * 8, v);
        }
    }
    // Build every interpreter against canonical first (entry frame records
    // land in the shared image), then snapshot privates — per-core stacks are
    // disjoint, so each private starts as an exact canonical copy.
    let mut interps = Vec::with_capacity(cores);
    for core in 0..cores {
        let args = [core as Word];
        interps.push(Interp::with_args_shared(
            module,
            Arc::clone(&dec),
            core,
            &mut canonical,
            &args,
        )?);
    }
    let mut states: Vec<CoreState<'_>> = interps
        .into_iter()
        .map(|interp| CoreState {
            interp,
            mem: canonical.clone(),
            log: Vec::new(),
            out: Vec::new(),
            steps: 0,
            err: None,
            eff: StepEffect::default(),
        })
        .collect();

    let mut quanta = 0u64;
    let mut combined: Vec<(Word, Word)> = Vec::new();
    loop {
        let total: u64 = states.iter().map(|s| s.steps).sum();
        if states.iter().all(|s| s.interp.is_halted()) || total >= cfg.max_steps {
            break;
        }
        quanta += 1;

        // 1. Parallel phase: private memories, write logs.
        if threads <= 1 {
            for s in states.iter_mut() {
                run_parallel_phase(s, quantum);
            }
        } else {
            let chunk = states.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for slice in states.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for s in slice.iter_mut() {
                            run_parallel_phase(s, quantum);
                        }
                    });
                }
            });
        }
        for s in states.iter_mut() {
            if let Some(e) = s.err.take() {
                return Err(e);
            }
        }

        // 2. Barrier merge, core order: canonical and every private converge
        //    on the same last-writer-in-core-order value per address.
        combined.clear();
        for s in states.iter_mut() {
            combined.extend_from_slice(&s.log);
            s.log.clear();
        }
        if !combined.is_empty() {
            for &(a, v) in &combined {
                canonical.store(a, v);
            }
            for s in states.iter_mut() {
                for &(a, v) in &combined {
                    s.mem.store(a, v);
                }
            }
        }

        // 3. Serial sync phase, core order: one sync op each against
        //    canonical, writes visible to all cores immediately.
        for i in 0..states.len() {
            if states[i].interp.is_halted() || !at_sync(&states[i].interp) {
                continue;
            }
            let s = &mut states[i];
            let mut eff = std::mem::take(&mut s.eff);
            s.interp.step_into(&mut canonical, &mut eff)?;
            s.steps += 1;
            if let Some(w) = eff.out {
                s.out.push(w);
            }
            let writes = std::mem::take(&mut eff.writes);
            for s2 in states.iter_mut() {
                for &(a, v) in &writes {
                    s2.mem.store(a, v);
                }
            }
            states[i].eff = eff;
            states[i].eff.writes = writes;
        }
    }

    let completed = states.iter().all(|s| s.interp.is_halted());
    let outcome = ThreadedOutcome {
        steps: states.iter().map(|s| s.steps).sum(),
        per_core_steps: states.iter().map(|s| s.steps).collect(),
        quanta,
        completed,
        threads,
        outputs: states.into_iter().map(|s| s.out).collect(),
    };
    Ok((outcome, canonical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};

    fn run(m: &Module, cores: usize, threads: usize) -> (ThreadedOutcome, Memory) {
        run_threaded(
            m,
            &ThreadedConfig {
                cores,
                threads,
                quantum: 64,
                ..ThreadedConfig::default()
            },
        )
        .expect("threaded run")
    }

    /// Memory equality via non-zero word sets (order-independent).
    fn mem_eq(a: &Memory, b: &Memory) -> bool {
        let mut xs: Vec<_> = a.iter().collect();
        let mut ys: Vec<_> = b.iter().collect();
        xs.sort_unstable();
        ys.sort_unstable();
        xs == ys
    }

    #[test]
    fn single_core_matches_plain_interpreter() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let (_, exit) =
            cwsp_ir::builder::build_counted_loop(&mut b, e, Operand::imm(10), |b, bb, i| {
                let v = b.bin(bb, BinOp::Mul, i.into(), Operand::imm(3));
                b.push(bb, Inst::Out { val: v.into() });
                let off = b.bin(bb, BinOp::Shl, i.into(), Operand::imm(3));
                let addr = b.bin(bb, BinOp::Add, off.into(), Operand::imm(0x10000));
                b.store(bb, v.into(), MemRef::reg(addr, 0));
            });
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);

        let (out, mem) = run(&m, 1, 1);
        assert!(out.completed);

        let oracle = cwsp_ir::interp::run(&m, 1_000_000).expect("oracle");
        assert_eq!(out.outputs[0], oracle.output);
        assert_eq!(out.steps, oracle.steps);
        for i in 0..10u64 {
            assert_eq!(mem.load(0x10000 + i * 8), i * 3);
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let (m, _, sums_addr, _) = cwsp_workloads::multicore::drf_partition_sum(3);
        let (a, am) = run(&m, 3, 1);
        for threads in [2, 3, 8] {
            let (b, bm) = run(&m, 3, threads);
            assert!(b.completed);
            assert_eq!(a.steps, b.steps, "threads={threads}");
            assert_eq!(a.per_core_steps, b.per_core_steps, "threads={threads}");
            assert_eq!(a.quanta, b.quanta, "threads={threads}");
            assert_eq!(a.outputs, b.outputs, "threads={threads}");
            assert!(mem_eq(&am, &bm), "threads={threads}");
        }
        for tid in 0..3u64 {
            assert_eq!(
                am.load(sums_addr + tid * 8),
                cwsp_workloads::multicore::expected_sum(tid)
            );
        }
    }

    #[test]
    fn spinlock_ledger_is_exact_and_deterministic() {
        let (m, balance_addr, ops_addr) = cwsp_workloads::multicore::spinlock_ledger(3);
        let (a, am) = run(&m, 3, 1);
        let (b, bm) = run(&m, 3, 4);
        assert!(a.completed && b.completed);
        assert_eq!(a.steps, b.steps);
        assert!(mem_eq(&am, &bm));
        // Lock-protected read-modify-writes must not lose updates: the
        // release/acquire argument in the module docs, tested.
        assert_eq!(
            am.load(balance_addr),
            cwsp_workloads::multicore::expected_balance(3)
        );
        assert_eq!(am.load(ops_addr), 3 * cwsp_workloads::multicore::DEPOSITS);
    }

    #[test]
    fn repeated_runs_are_bit_stable() {
        let (m, _, _) = cwsp_workloads::multicore::spinlock_ledger(2);
        let (a, am) = run(&m, 2, 2);
        let (b, bm) = run(&m, 2, 2);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.quanta, b.quanta);
        assert_eq!(a.outputs, b.outputs);
        assert!(mem_eq(&am, &bm));
    }

    #[test]
    fn budget_stops_nonterminating_runs() {
        let mut m = Module::new("spin");
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        b.push(e, Inst::Br { target: e });
        let f = m.add_function(b.build());
        m.set_entry(f);
        let (out, _) = run_threaded(
            &m,
            &ThreadedConfig {
                cores: 2,
                threads: 2,
                quantum: 16,
                max_steps: 1_000,
            },
        )
        .expect("run");
        assert!(!out.completed);
        assert!(out.steps >= 1_000);
    }
}
