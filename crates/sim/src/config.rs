//! Simulation configuration: the hardware parameters of §IX and Table I.
//!
//! Defaults reproduce the paper's evaluated machine: 8-core 2 GHz Skylake-like
//! cores, 64 KB L1D with a write buffer, a shared 16 MB L2, a 4 GB
//! direct-mapped DRAM cache (Intel PMEM memory mode), 32 GB NVM behind 2
//! memory controllers with 24-entry battery-backed WPQs, a 16-entry RBT, a
//! 50-entry PB, and a 4 GB/s, 20 ns persist path.

/// Core clock frequency in GHz (cycle = 0.5 ns at the default 2 GHz).
pub const CLOCK_GHZ: f64 = 2.0;

/// One SRAM/DRAM cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
}

impl CacheParams {
    /// Number of sets for 64-byte lines.
    pub fn sets(&self) -> u64 {
        (self.size_bytes / 64 / self.assoc as u64).max(1)
    }
}

/// Main-memory technology latencies (Fig 27 sensitivity; §IX defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmTech {
    /// Intel Optane-like PMEM: 175 ns read / 90 ns write (default).
    Pmem,
    /// STT-MRAM: faster than PMEM on both paths.
    SttMram,
    /// ReRAM: fastest of the three.
    ReRam,
    /// Plain DRAM main memory (the CXL-DRAM baseline of Fig 1).
    Dram,
}

impl NvmTech {
    /// Read latency in cycles.
    pub fn read_cycles(self) -> u64 {
        match self {
            NvmTech::Pmem => ns_to_cycles(175.0),
            NvmTech::SttMram => ns_to_cycles(120.0),
            NvmTech::ReRam => ns_to_cycles(100.0),
            NvmTech::Dram => ns_to_cycles(60.0),
        }
    }

    /// Write latency in cycles (drain cost per WPQ entry).
    pub fn write_cycles(self) -> u64 {
        match self {
            NvmTech::Pmem => ns_to_cycles(90.0),
            NvmTech::SttMram => ns_to_cycles(60.0),
            NvmTech::ReRam => ns_to_cycles(50.0),
            NvmTech::Dram => ns_to_cycles(30.0),
        }
    }
}

/// Convert nanoseconds to cycles at [`CLOCK_GHZ`].
pub fn ns_to_cycles(ns: f64) -> u64 {
    (ns * CLOCK_GHZ).round() as u64
}

/// Convert GB/s of bandwidth to bytes per cycle at [`CLOCK_GHZ`].
pub fn gbps_to_bytes_per_cycle(gbps: f64) -> f64 {
    gbps / CLOCK_GHZ
}

/// A CXL memory device (Table I) — CXL IP flavor, latency, and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxlDevice {
    /// Device name as in Table I.
    pub name: &'static str,
    /// CXL IP flavor column.
    pub ip: &'static str,
    /// Memory technology column.
    pub technology: &'static str,
    /// Maximum bandwidth in GB/s.
    pub max_bandwidth_gbps: f64,
    /// Read latency in ns.
    pub read_ns: f64,
    /// Write latency in ns.
    pub write_ns: f64,
}

/// Table I: the four CXL memory devices evaluated in §IX-C.
pub const CXL_DEVICES: [CxlDevice; 4] = [
    CxlDevice {
        name: "CXL-A (NVDIMM)",
        ip: "Hard IP",
        technology: "DDR5-4800",
        max_bandwidth_gbps: 38.4,
        read_ns: 158.0,
        write_ns: 120.0,
    },
    CxlDevice {
        name: "CXL-B (NVDIMM)",
        ip: "Hard IP",
        technology: "DDR4-2400",
        max_bandwidth_gbps: 19.2,
        read_ns: 223.0,
        write_ns: 139.0,
    },
    CxlDevice {
        name: "CXL-C (NVDIMM)",
        ip: "Soft IP",
        technology: "DDR4-3200",
        max_bandwidth_gbps: 25.6,
        read_ns: 348.0,
        write_ns: 241.0,
    },
    CxlDevice {
        name: "CXL-D (PMEM)",
        ip: "Simulation",
        technology: "Intel Optane",
        max_bandwidth_gbps: 6.6,
        read_ns: 245.0,
        write_ns: 160.0,
    },
];

/// Main-memory timing source: an [`NvmTech`] or an explicit CXL device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MainMemory {
    /// Local NVM DIMMs of the given technology.
    Nvm(NvmTech),
    /// CXL-attached memory with explicit latencies.
    Cxl(CxlDevice),
}

impl MainMemory {
    /// Read latency in cycles.
    pub fn read_cycles(self) -> u64 {
        match self {
            MainMemory::Nvm(t) => t.read_cycles(),
            MainMemory::Cxl(d) => ns_to_cycles(d.read_ns),
        }
    }

    /// Write (drain) latency in cycles.
    pub fn write_cycles(self) -> u64 {
        match self {
            MainMemory::Nvm(t) => t.write_cycles(),
            MainMemory::Cxl(d) => ns_to_cycles(d.write_ns),
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of cores stepping programs.
    pub cores: usize,
    /// SRAM cache levels, nearest first. Level 0 is the private L1D; deeper
    /// levels are shared.
    pub sram_levels: Vec<CacheParams>,
    /// Optional direct-mapped DRAM cache (memory-mode LLC). `None` disables
    /// it (the ideal-PSP configuration of §IX-D).
    pub dram_cache: Option<CacheParams>,
    /// Main memory behind the hierarchy.
    pub main_memory: MainMemory,
    /// Number of memory controllers (address-interleaved at 4 KB).
    pub mem_controllers: usize,
    /// Extra path cycles per controller index (the NUMA skew of §II-B).
    pub mc_numa_skew_cycles: u64,
    /// Battery-backed write-pending-queue entries per MC.
    pub wpq_entries: usize,
    /// Region boundary table entries per core (§V-B).
    pub rbt_entries: usize,
    /// Persist buffer entries per core (repurposed WCB, §V-A).
    pub pb_entries: usize,
    /// L1D write-buffer entries per core.
    pub wb_entries: usize,
    /// Persist-path one-way latency in cycles (default 20 ns round trip → 40
    /// cycles total; we charge it on arrival).
    pub persist_path_cycles: u64,
    /// Persist-path bandwidth in GB/s (shared across cores).
    pub persist_path_gbps: f64,
    /// Persist granularity in bytes: 8 for cWSP, 64 for cacheline schemes.
    pub persist_granularity: u64,
    /// L1D write-buffer drain interval in cycles.
    pub wb_drain_cycles: u64,
    /// Superscalar issue width: register-class instructions and L1-hit
    /// accesses consume one slot; `issue_width` slots complete per cycle.
    pub issue_width: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 1,
            sram_levels: vec![
                CacheParams {
                    size_bytes: 64 << 10,
                    assoc: 8,
                    hit_cycles: 4,
                },
                CacheParams {
                    size_bytes: 16 << 20,
                    assoc: 16,
                    hit_cycles: 44,
                },
            ],
            dram_cache: Some(CacheParams {
                size_bytes: 4 << 30,
                assoc: 1,
                hit_cycles: ns_to_cycles(60.0),
            }),
            main_memory: MainMemory::Nvm(NvmTech::Pmem),
            mem_controllers: 2,
            mc_numa_skew_cycles: 12,
            wpq_entries: 24,
            rbt_entries: 16,
            pb_entries: 50,
            wb_entries: 32,
            persist_path_cycles: 40,
            persist_path_gbps: 4.0,
            persist_granularity: 8,
            wb_drain_cycles: 4,
            issue_width: 4,
        }
    }
}

impl SimConfig {
    /// The paper's added-L3 configuration (Fig 20): private 1 MB L2 plus a
    /// shared 16 MB L3 above the DRAM cache.
    pub fn with_l3(mut self) -> Self {
        self.sram_levels = vec![
            CacheParams {
                size_bytes: 64 << 10,
                assoc: 8,
                hit_cycles: 4,
            },
            CacheParams {
                size_bytes: 1 << 20,
                assoc: 8,
                hit_cycles: 14,
            },
            CacheParams {
                size_bytes: 16 << 20,
                assoc: 16,
                hit_cycles: 44,
            },
        ];
        self
    }

    /// The Fig 1 hierarchy with `levels` cache levels (2..=5): L1+L2, +L3,
    /// +L4 (128 MB, 82 cycles), +4 GB DRAM cache.
    ///
    /// # Panics
    /// Panics unless `2 <= levels <= 5`.
    pub fn hierarchy_depth(mut self, levels: usize) -> Self {
        assert!((2..=5).contains(&levels), "levels must be in 2..=5");
        let mut sram = vec![
            CacheParams {
                size_bytes: 64 << 10,
                assoc: 8,
                hit_cycles: 4,
            },
            CacheParams {
                size_bytes: 1 << 20,
                assoc: 8,
                hit_cycles: 14,
            },
        ];
        if levels >= 3 {
            sram.push(CacheParams {
                size_bytes: 16 << 20,
                assoc: 16,
                hit_cycles: 44,
            });
        }
        if levels >= 4 {
            sram.push(CacheParams {
                size_bytes: 128 << 20,
                assoc: 16,
                hit_cycles: 82,
            });
        }
        self.sram_levels = sram;
        self.dram_cache = (levels >= 5).then_some(CacheParams {
            size_bytes: 4 << 30,
            assoc: 1,
            hit_cycles: ns_to_cycles(60.0),
        });
        self
    }

    /// Scale every cache capacity down by `2^shift` (latencies unchanged).
    ///
    /// Hierarchy-shape experiments (Figs 1, 18) need working sets positioned
    /// between cache levels; scaling the hierarchy instead of the working set
    /// keeps simulation windows tractable (the paper fast-forwards 5 B
    /// instructions to warm its full-size caches — we shrink the caches).
    pub fn scaled(mut self, shift: u32) -> Self {
        for l in &mut self.sram_levels {
            l.size_bytes = (l.size_bytes >> shift).max(1 << 10);
        }
        if let Some(d) = &mut self.dram_cache {
            d.size_bytes = (d.size_bytes >> shift).max(1 << 16);
        }
        self
    }

    /// The memory controller owning `addr` (4 KB interleave).
    #[inline]
    pub fn mc_of(&self, addr: u64) -> usize {
        ((addr >> 12) % self.mem_controllers as u64) as usize
    }

    /// Persist-path bandwidth in bytes per cycle.
    pub fn path_bytes_per_cycle(&self) -> f64 {
        gbps_to_bytes_per_cycle(self.persist_path_gbps)
    }

    /// Storage cost in bytes of the RBT (§IX-N): 11 bytes per entry — the
    /// paper's 16-entry default costs 176 bytes.
    pub fn rbt_storage_bytes(&self) -> usize {
        self.rbt_entries * 11
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.rbt_entries, 16);
        assert_eq!(c.pb_entries, 50);
        assert_eq!(c.wpq_entries, 24);
        assert_eq!(c.mem_controllers, 2);
        assert_eq!(c.persist_granularity, 8);
        assert_eq!(c.rbt_storage_bytes(), 176, "§IX-N: 16 × 11 B = 176 B");
        assert_eq!(NvmTech::Pmem.read_cycles(), 350, "175 ns at 2 GHz");
        assert_eq!(NvmTech::Pmem.write_cycles(), 180, "90 ns at 2 GHz");
    }

    #[test]
    fn cache_sets_computed() {
        let l1 = CacheParams {
            size_bytes: 64 << 10,
            assoc: 8,
            hit_cycles: 4,
        };
        assert_eq!(l1.sets(), 128);
        let dm = CacheParams {
            size_bytes: 4 << 30,
            assoc: 1,
            hit_cycles: 120,
        };
        assert_eq!(dm.sets(), 64 << 20);
    }

    #[test]
    fn hierarchy_depth_variants() {
        let c2 = SimConfig::default().hierarchy_depth(2);
        assert_eq!(c2.sram_levels.len(), 2);
        assert!(c2.dram_cache.is_none());
        let c5 = SimConfig::default().hierarchy_depth(5);
        assert_eq!(c5.sram_levels.len(), 4);
        assert!(c5.dram_cache.is_some());
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn hierarchy_depth_rejects_out_of_range() {
        let _ = SimConfig::default().hierarchy_depth(6);
    }

    #[test]
    fn mc_interleave_covers_all_controllers() {
        let c = SimConfig::default();
        assert_eq!(c.mc_of(0), 0);
        assert_eq!(c.mc_of(4096), 1);
        assert_eq!(c.mc_of(8192), 0);
    }

    #[test]
    fn bandwidth_conversion() {
        assert!((gbps_to_bytes_per_cycle(4.0) - 2.0).abs() < 1e-9);
        assert_eq!(ns_to_cycles(20.0), 40);
    }

    #[test]
    fn cxl_table_matches_paper() {
        assert_eq!(CXL_DEVICES.len(), 4);
        assert_eq!(CXL_DEVICES[0].technology, "DDR5-4800");
        assert!((CXL_DEVICES[3].read_ns - 245.0).abs() < 1e-9);
        let m = MainMemory::Cxl(CXL_DEVICES[1]);
        assert_eq!(m.read_cycles(), ns_to_cycles(223.0));
    }

    #[test]
    fn with_l3_adds_level() {
        let c = SimConfig::default().with_l3();
        assert_eq!(c.sram_levels.len(), 3);
        assert_eq!(c.sram_levels[1].hit_cycles, 14);
    }
}
