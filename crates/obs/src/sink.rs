//! The low-rate instrumentation interface.
//!
//! [`ObsSink`] is what *infrequent* producers — compiler passes, recovery
//! replay, engine jobs — emit into. Every method has a no-op default and
//! [`ObsSink::enabled`] defaults to `false`, so instrumented code can guard
//! expensive payload construction (`if sink.enabled() { ... }`) and the
//! disabled path costs one predictable branch.
//!
//! The simulator's per-event hot path deliberately does **not** use this
//! trait: a `dyn` call per simulated event would be measurable. It keeps
//! its typed ring (`cwsp_sim::trace::Trace`) and converts at export time.
//!
//! Provided sinks:
//! * [`NullSink`] — the disabled default.
//! * [`MemSink`] — records [`SinkEvent`]s for tests.
//! * [`ChromeSink`] — forwards spans/instants onto named tracks of a
//!   [`ChromeTrace`](crate::ChromeTrace).
//! * [`Registry`](crate::Registry) — implements the trait directly: spans
//!   become `<track>.<name>.wall_ns` counters, counts become counters.

use crate::chrome::ChromeTrace;
use crate::metrics::Registry;

/// One recorded event (as captured by [`MemSink`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SinkEvent {
    /// A completed span: `dur_ns` of work named `name` on `track`,
    /// starting at `ts_ns`.
    Span {
        /// Track (e.g. `compiler`, `recovery`).
        track: String,
        /// Span name (e.g. a pass name).
        name: String,
        /// Start timestamp, nanoseconds from an arbitrary per-run origin.
        ts_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point event.
    Instant {
        /// Track the event belongs to.
        track: String,
        /// Event name.
        name: String,
        /// Timestamp, nanoseconds from the same origin as spans.
        ts_ns: u64,
    },
    /// A named quantity increment (IR deltas, replayed steps, ...).
    Count {
        /// Metric name.
        name: String,
        /// Amount added.
        delta: u64,
    },
    /// A named last-write-wins measurement.
    Gauge {
        /// Metric name.
        name: String,
        /// Measured value.
        value: f64,
    },
}

/// Receiver for low-rate instrumentation events.
pub trait ObsSink {
    /// Whether events will be kept. Producers may skip payload construction
    /// when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Record a completed span.
    fn span(&mut self, track: &str, name: &str, ts_ns: u64, dur_ns: u64) {
        let _ = (track, name, ts_ns, dur_ns);
    }

    /// Record a point event.
    fn instant(&mut self, track: &str, name: &str, ts_ns: u64) {
        let _ = (track, name, ts_ns);
    }

    /// Add to a named counter.
    fn count(&mut self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Set a named gauge.
    fn gauge(&mut self, name: &str, value: f64) {
        let _ = (name, value);
    }
}

/// The disabled sink: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// A sink that records every event, for tests and ad-hoc inspection.
#[derive(Debug, Clone, Default)]
pub struct MemSink {
    /// Recorded events in arrival order.
    pub events: Vec<SinkEvent>,
}

impl MemSink {
    /// An empty recorder.
    pub fn new() -> Self {
        MemSink::default()
    }

    /// Recorded spans with the given name, in arrival order.
    pub fn spans_named(&self, name: &str) -> Vec<&SinkEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, SinkEvent::Span { name: n, .. } if n == name))
            .collect()
    }

    /// Sum of all `Count` deltas with the given name.
    pub fn count_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                SinkEvent::Count { name: n, delta } if n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }
}

impl ObsSink for MemSink {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, track: &str, name: &str, ts_ns: u64, dur_ns: u64) {
        self.events.push(SinkEvent::Span {
            track: track.to_string(),
            name: name.to_string(),
            ts_ns,
            dur_ns,
        });
    }

    fn instant(&mut self, track: &str, name: &str, ts_ns: u64) {
        self.events.push(SinkEvent::Instant {
            track: track.to_string(),
            name: name.to_string(),
            ts_ns,
        });
    }

    fn count(&mut self, name: &str, delta: u64) {
        self.events.push(SinkEvent::Count {
            name: name.to_string(),
            delta,
        });
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.events.push(SinkEvent::Gauge {
            name: name.to_string(),
            value,
        });
    }
}

/// A metrics registry accepts sink events directly: spans accumulate into
/// `<track>.<name>.wall_ns` counters (so repeated passes add up), counts
/// and gauges map to their registry namesakes. Instants become
/// `<track>.<name>` counters.
impl ObsSink for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, track: &str, name: &str, _ts_ns: u64, dur_ns: u64) {
        self.add_counter(&format!("{track}.{name}.wall_ns"), dur_ns);
    }

    fn instant(&mut self, track: &str, name: &str, _ts_ns: u64) {
        self.add_counter(&format!("{track}.{name}"), 1);
    }

    fn count(&mut self, name: &str, delta: u64) {
        self.add_counter(name, delta);
    }

    fn gauge(&mut self, name: &str, value: f64) {
        self.set_gauge(name, value);
    }
}

/// Forwards sink events onto a Chrome trace, allocating one track (tid)
/// per distinct `track` name, offset above the simulator's core/MC tids.
#[derive(Debug, Clone, Default)]
pub struct ChromeSink {
    trace: ChromeTrace,
    tracks: Vec<String>,
}

/// First tid handed out by [`ChromeSink`] — clear of the simulator's core
/// (0..) and MC (1000..) tracks.
pub const SINK_TID_BASE: u64 = 2000;

impl ChromeSink {
    /// A sink over an empty trace.
    pub fn new() -> Self {
        ChromeSink::default()
    }

    /// A sink appending to an existing trace (e.g. one the simulator
    /// already exported into).
    pub fn over(trace: ChromeTrace) -> Self {
        ChromeSink {
            trace,
            tracks: Vec::new(),
        }
    }

    fn tid_for(&mut self, track: &str) -> u64 {
        match self.tracks.iter().position(|t| t == track) {
            Some(i) => SINK_TID_BASE + i as u64,
            None => {
                let tid = SINK_TID_BASE + self.tracks.len() as u64;
                self.tracks.push(track.to_string());
                self.trace.thread_name(tid, track);
                tid
            }
        }
    }

    /// Finish and return the trace.
    pub fn into_trace(self) -> ChromeTrace {
        self.trace
    }

    /// Borrow the trace (for assertions mid-run).
    pub fn trace(&self) -> &ChromeTrace {
        &self.trace
    }
}

impl ObsSink for ChromeSink {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, track: &str, name: &str, ts_ns: u64, dur_ns: u64) {
        let tid = self.tid_for(track);
        // Chrome ts/dur are microseconds.
        self.trace.complete(
            tid,
            track,
            name,
            ts_ns / 1000,
            dur_ns.div_ceil(1000),
            vec![],
        );
    }

    fn instant(&mut self, track: &str, name: &str, ts_ns: u64) {
        let tid = self.tid_for(track);
        self.trace.instant(tid, track, name, ts_ns / 1000, vec![]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.span("t", "n", 0, 5);
        s.count("c", 1);
    }

    #[test]
    fn mem_sink_records_everything() {
        let mut s = MemSink::new();
        assert!(s.enabled());
        s.span("compiler", "form_regions", 10, 500);
        s.instant("recovery", "replay", 20);
        s.count("compiler.regions_formed", 3);
        s.count("compiler.regions_formed", 2);
        s.gauge("engine.util", 0.75);
        assert_eq!(s.events.len(), 5);
        assert_eq!(s.spans_named("form_regions").len(), 1);
        assert_eq!(s.count_total("compiler.regions_formed"), 5);
    }

    #[test]
    fn registry_as_sink_accumulates_wall_time_and_counts() {
        let mut r = Registry::new();
        assert!(ObsSink::enabled(&r));
        r.span("compiler", "optimize", 0, 1200);
        r.span("compiler", "optimize", 0, 300);
        r.count("compiler.slices_emitted", 4);
        r.instant("recovery", "power_failure", 9);
        // Registry's inherent `gauge(name)` registers a handle; the sink
        // trait method needs UFCS here.
        ObsSink::gauge(&mut r, "engine.util", 0.5);
        assert_eq!(r.counter_value("compiler.optimize.wall_ns"), 1500);
        assert_eq!(r.counter_value("compiler.slices_emitted"), 4);
        assert_eq!(r.counter_value("recovery.power_failure"), 1);
        assert_eq!(r.gauge_value("engine.util"), 0.5);
    }

    #[test]
    fn chrome_sink_allocates_one_track_per_name() {
        let mut s = ChromeSink::new();
        s.span("compiler", "optimize", 0, 2000);
        s.span("compiler", "form_regions", 2000, 1000);
        s.instant("recovery", "replay", 3000);
        let t = s.into_trace();
        assert_eq!(t.complete_spans_on(SINK_TID_BASE), 2);
        assert_eq!(t.tracks(), vec![SINK_TID_BASE, SINK_TID_BASE + 1]);
    }
}
