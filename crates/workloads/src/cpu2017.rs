//! SPEC CPU2017 stand-ins (7 apps): deepsjeng (dsjeng), imagick, lbm, leela,
//! nab, namd, xz.
//!
//! lbm and namd appear in both SPEC generations with different inputs; the
//! 2017 variants here use larger footprints and longer phases.

use crate::footprint::*;
use crate::kernels::*;
use crate::{app, arena, checksum, Suite, Workload};

fn w(name: &'static str, window: u64, module: cwsp_ir::module::Module) -> Workload {
    Workload {
        name,
        suite: Suite::Cpu2017,
        module,
        window,
    }
}

/// Build all seven CPU2017 workloads.
pub fn all() -> Vec<Workload> {
    vec![
        w(
            "dsjeng",
            120_000,
            app("dsjeng", |m, b, mut bb| {
                let tt = arena(m, "ttable", L2);
                bb = compute_loop(b, bb, tt, 750, 48);
                bb = random_walk(b, bb, tt, L2, 1_500, 0xD5E, 10);
                checksum(b, bb, tt);
                bb
            }),
        ),
        w(
            "imagick",
            130_000,
            app("imagick", |m, b, mut bb| {
                let img = arena(m, "image", DRAM);
                bb = stencil3(b, bb, img, img + (DRAM / 2) * 8, 2_500);
                bb = compute_loop(b, bb, img + 64, 380, 56);
                bb = stencil3(b, bb, img + (DRAM / 2) * 8, img, 1_500);
                checksum(b, bb, img + 16);
                bb
            }),
        ),
        w(
            "lbm",
            150_000,
            app("lbm17", |m, b, mut bb| {
                let grid = arena(m, "grid", DRAM);
                bb = stencil3(b, bb, grid, grid + (DRAM / 2) * 8, 4_000);
                bb = rmw_sweep(b, bb, grid, DRAM, 1, 2_500);
                checksum(b, bb, grid + 8);
                bb
            }),
        ),
        w(
            "leela",
            120_000,
            app("leela", |m, b, mut bb| {
                let tree = arena(m, "tree", L2);
                bb = pointer_chase(b, bb, tree, L2, 2_500, 0x1EE1A);
                bb = compute_loop(b, bb, tree, 450, 40);
                checksum(b, bb, tree);
                bb
            }),
        ),
        w(
            "nab",
            120_000,
            app("nab", |m, b, mut bb| {
                let mol = arena(m, "molecule", L2);
                let out = arena(m, "out", L1);
                bb = reduction(b, bb, mol, L2, 3, 3_500, out);
                bb = compute_loop(b, bb, out + 64, 380, 48);
                checksum(b, bb, out);
                bb
            }),
        ),
        w(
            "namd",
            120_000,
            app("namd17", |m, b, mut bb| {
                let cells = arena(m, "cells", L1);
                bb = compute_loop(b, bb, cells, 1_100, 64);
                checksum(b, bb, cells);
                bb
            }),
        ),
        w(
            "xz",
            130_000,
            app("xz", |m, b, mut bb| {
                let dict = arena(m, "dict", DRAM);
                let hist = arena(m, "hist", L1);
                bb = random_walk(b, bb, dict, DRAM, 2_000, 0x7A, 8);
                bb = rmw_sweep(b, bb, hist, L1, 1, 2_500);
                bb = scatter(b, bb, dict, dict + (DRAM / 2) * 8, L2, 800);
                checksum(b, bb, hist);
                bb
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_apps_exist_and_run() {
        let ws = all();
        assert_eq!(ws.len(), 7);
        for w in &ws {
            let out = cwsp_ir::interp::run(&w.module, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.steps > 5_000, "{}", w.name);
        }
    }
}
