//! # cwsp — Compiler-Directed Whole-System Persistence
//!
//! A from-scratch Rust reproduction of *Compiler-Directed Whole-System
//! Persistence* (Zeng, Zhang, Jung — ISCA 2024). This facade crate re-exports
//! the workspace:
//!
//! * [`ir`] — the compiler IR and reference interpreter.
//! * [`compiler`] — idempotent region formation, live-out register
//!   checkpointing, checkpoint pruning, recovery-slice generation.
//! * [`sim`] — the architecture simulator: persist buffer, region boundary
//!   table, memory-controller speculation with hardware undo logging, caches,
//!   NVM, and the baseline schemes (Capri, ReplayCache, ideal PSP).
//! * [`analyzer`] — the static crash-consistency verifier and lint engine:
//!   proves idempotence, checkpoint coverage, slice well-formedness, and
//!   structural boundary placement on all paths, without executing.
//! * [`obs`] — the observability layer: metrics registry, Chrome trace-event
//!   export, and the flat cycle-attribution profile model.
//! * [`runtime`] — the simulated libc/kernel substrate (whole-system scope).
//! * [`core`] — the end-to-end cWSP system: compile → simulate → crash →
//!   recover → verify.
//! * [`workloads`] — the 38 benchmark programs of the paper's six suites.
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for a first run.
//!
//! ## End-to-end example
//!
//! ```
//! use cwsp::core::system::CwspSystem;
//! use cwsp::ir::prelude::*;
//!
//! // A program with a classic crash hazard: read-modify-write on NVM.
//! let mut m = Module::new("demo");
//! let g = m.add_global("counter", 1);
//! let mut b = FunctionBuilder::new("main", 0);
//! let e = b.entry();
//! for _ in 0..10 {
//!     let v = b.load(e, MemRef::global(g, 0));
//!     let s = b.bin(e, BinOp::Add, v.into(), Operand::imm(1));
//!     b.store(e, s.into(), MemRef::global(g, 0));
//! }
//! b.push(e, Inst::Halt);
//! let f = m.add_function(b.build());
//! m.set_entry(f);
//!
//! // Compile with cWSP, cut power mid-run, recover, verify.
//! let system = CwspSystem::compile(&m);
//! let report = cwsp::core::verify::check_crash_consistency(&system, 120).unwrap();
//! assert!(report.recovered_matches_oracle);
//! ```

pub use cwsp_analyzer as analyzer;
pub use cwsp_compiler as compiler;
pub use cwsp_core as core;
pub use cwsp_ir as ir;
pub use cwsp_obs as obs;
pub use cwsp_runtime as runtime;
pub use cwsp_sim as sim;
pub use cwsp_workloads as workloads;
