//! Translation validation of the autofence pass, statically and
//! dynamically.
//!
//! The contract under test has three legs:
//!
//! 1. **Static (translation validation)** — `compiler::autofence` output
//!    must verify I6-clean under `analyzer::persist` on every built-in
//!    workload and a 200-module genprog corpus. Pass and analyzer share no
//!    code: the pass *places* flushes and fences, the analyzer *re-proves*
//!    the epoch-persistency discipline from scratch over its own lattice.
//! 2. **Mutation sensitivity** — dropping any single flush or fence from
//!    pass output must be caught statically, with a path witness naming the
//!    exact unflushed store (dropped flush) or the exact unfenced commit
//!    (dropped fence).
//! 3. **Dynamic (crash grounding)** — under `Scheme::AutoFence`, killing
//!    the machine at arbitrary cycles must never violate the flush/fence
//!    contract: every word a completed `pfence` guaranteed durable still
//!    holds that value in the post-crash NVM image (the machine's
//!    durability oracle checks word-for-word).

use cwsp::analyzer::persist;
use cwsp::analyzer::Severity;
use cwsp::compiler::autofence;
use cwsp::core::genprog::{
    self, inject_dropped_fence, inject_dropped_flush, inject_redundant_flush, ProgramSpec,
};
use cwsp::ir::module::Module;
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::{Machine, RunEnd};
use cwsp::sim::scheme::Scheme;
use cwsp_bench::par_map;

const SPEC: ProgramSpec = ProgramSpec {
    globals: 2,
    global_words: 8,
    segments: 4,
    max_trip: 4,
    calls: true,
};

fn i6_errors(m: &Module) -> Vec<String> {
    persist::check_module(m)
        .0
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| format!("{} {}: {}", d.code, d.location.function, d.message))
        .collect()
}

#[test]
fn autofence_output_verifies_i6_clean_on_every_workload() {
    for w in cwsp::workloads::all() {
        let mut m = w.module.clone();
        let stats = autofence::run(&mut m);
        assert!(
            stats.flushes_inserted > 0,
            "{}: pass inserted nothing",
            w.name
        );
        let errs = i6_errors(&m);
        assert!(
            errs.is_empty(),
            "{}: autofence output has I6 errors:\n{}",
            w.name,
            errs.join("\n")
        );
        assert!(m.validate().is_ok(), "{}: module broken", w.name);
    }
}

#[test]
fn autofence_output_verifies_i6_clean_on_a_200_module_corpus() {
    let seeds: Vec<u64> = (0..200).collect();
    let failures: Vec<String> = par_map(&seeds, |&seed| {
        let mut m = genprog::generate(&SPEC, seed);
        autofence::run(&mut m);
        let errs = i6_errors(&m);
        (!errs.is_empty()).then(|| format!("seed {seed}: {}", errs.join("; ")))
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn autofence_is_idempotent_and_normalizes_redundant_flushes_on_workloads() {
    for w in cwsp::workloads::all().iter().take(8) {
        let mut m = w.module.clone();
        autofence::run(&mut m);
        let once = cwsp::ir::pretty::fmt_module(&m);
        autofence::run(&mut m);
        assert_eq!(
            cwsp::ir::pretty::fmt_module(&m),
            once,
            "{}: not idempotent",
            w.name
        );
        inject_redundant_flush(&mut m).expect("instrumented module has a flush");
        autofence::run(&mut m);
        assert_eq!(
            cwsp::ir::pretty::fmt_module(&m),
            once,
            "{}: redundant flush survived",
            w.name
        );
    }
}

#[test]
fn dropped_flush_is_caught_with_a_witness_at_the_exact_store() {
    for seed in [1u64, 7, 19, 42] {
        let mut m = genprog::generate(&SPEC, seed);
        autofence::run(&mut m);
        let (fid, blk, store_idx) = inject_dropped_flush(&mut m).expect("a flush to drop");
        let fname = m.function(fid).name.clone();
        let (diags, _) = persist::check_module(&m);
        let hit = diags.iter().any(|d| {
            d.code == "I6-unflushed-store"
                && d.severity == Severity::Error
                && d.location.function == fname
                && d.witness.as_ref().is_some_and(|w| {
                    w.steps
                        .first()
                        .is_some_and(|s| s.block == blk && s.idx == store_idx)
                })
        });
        assert!(
            hit,
            "seed {seed}: dropped flush of store {fname} b{blk}:{store_idx} not located; got {diags:#?}"
        );
    }
}

#[test]
fn dropped_fence_is_caught_at_the_exact_guarded_commit() {
    for seed in [1u64, 7, 19, 42] {
        let mut m = genprog::generate(&SPEC, seed);
        autofence::run(&mut m);
        let (fid, blk, commit_idx) = inject_dropped_fence(&mut m).expect("a pfence to drop");
        let fname = m.function(fid).name.clone();
        let (diags, _) = persist::check_module(&m);
        let hit = diags.iter().any(|d| {
            d.code == "I6-unfenced-flush"
                && d.severity == Severity::Error
                && d.location.function == fname
                && d.location.block == blk
                && d.location.inst == Some(commit_idx)
        });
        assert!(
            hit,
            "seed {seed}: dropped pfence before {fname} b{blk}:{commit_idx} not located; got {diags:#?}"
        );
    }
}

/// ≥200 seeded kill-cycle crash injections: the durability oracle must see
/// zero violations at every crash point — wherever power fails, NVM still
/// holds every fence-guaranteed value.
#[test]
fn crash_injection_sweep_finds_no_durability_ordering_violation() {
    let seeds: Vec<u64> = (0..50).collect();
    let crash_counts: Vec<u64> = par_map(&seeds, |&seed| {
        let mut m = genprog::generate(&SPEC, seed);
        autofence::run(&mut m);
        let cfg = SimConfig::default();
        // Learn the run length, then kill at five cycles spread across it.
        let total = {
            let mut machine = Machine::new(&m, &cfg, Scheme::AutoFence);
            let r = machine.run(u64::MAX, None).expect("full run");
            assert_eq!(r.end, RunEnd::Completed, "seed {seed}");
            r.stats.cycles
        };
        let mut crashes = 0;
        for k in 1..=5u64 {
            let cycle = (total * k / 6).max(1);
            let mut machine = Machine::new(&m, &cfg, Scheme::AutoFence);
            machine.enable_durability_oracle();
            let r = machine.run(u64::MAX, Some(cycle)).expect("crash run");
            if r.end != RunEnd::PowerFailure {
                continue; // landed on/after halt; nothing to check
            }
            let bad = machine.durability_violations();
            assert!(
                bad.is_empty(),
                "seed {seed} cycle {cycle}: durability-ordering violation at {bad:#x?}"
            );
            // The crash image must be constructible from the kill point.
            let _img = machine.into_crash_image();
            crashes += 1;
        }
        crashes
    });
    let total: u64 = crash_counts.iter().sum();
    assert!(
        total >= 200,
        "only {total} effective crash injections (need >= 200)"
    );
}

/// Completion grounding: under AutoFence the persist path is the *only*
/// write route to NVM, so at a clean halt the NVM image of every global
/// word must match architectural memory — every store really was flushed.
#[test]
fn autofenced_programs_halt_with_globals_fully_persisted() {
    for seed in 0..10u64 {
        let mut m = genprog::generate(&SPEC, seed);
        autofence::run(&mut m);
        let arch = cwsp::ir::interp::run(&m, 1_000_000).expect("program runs");
        let cfg = SimConfig::default();
        let mut machine = Machine::new(&m, &cfg, Scheme::AutoFence);
        let r = machine.run(u64::MAX, None).expect("sim run");
        assert_eq!(r.end, RunEnd::Completed, "seed {seed}");
        let img = machine.into_crash_image();
        for g in m.globals() {
            for wdx in 0..g.words {
                let a = g.addr + wdx * 8;
                assert_eq!(
                    img.nvm.load(a),
                    arch.memory.load(a),
                    "seed {seed}: global {} word {wdx} not durable at halt",
                    g.name
                );
            }
        }
    }
}

/// Flush/fence instrumentation is architecturally invisible: the autofenced
/// module computes exactly what the original did.
#[test]
fn autofence_preserves_architectural_semantics() {
    for w in cwsp::workloads::all().iter().take(8) {
        let mut m = w.module.clone();
        autofence::run(&mut m);
        let a = cwsp::ir::interp::run(&w.module, 30_000_000).unwrap();
        let b = cwsp::ir::interp::run(&m, 30_000_000).unwrap();
        assert_eq!(a.output, b.output, "{}", w.name);
        assert_eq!(a.return_value, b.return_value, "{}", w.name);
    }
}
