//! Human-readable IR printing (diagnostics, golden tests, and docs).

use crate::function::Function;
use crate::inst::{AtomicOp, BinOp, Inst, MemRef, Operand};
use crate::module::Module;
use std::fmt::Write as _;

fn fmt_operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => {
            if *v > 0xFFFF {
                format!("{v:#x}")
            } else {
                v.to_string()
            }
        }
    }
}

fn fmt_memref(m: &MemRef) -> String {
    if m.offset == 0 {
        format!("[{}]", fmt_operand(&m.base))
    } else {
        format!("[{}{:+}]", fmt_operand(&m.base), m.offset)
    }
}

fn fmt_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::DivU => "divu",
        BinOp::RemU => "remu",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::ShrL => "shrl",
        BinOp::ShrA => "shra",
        BinOp::CmpEq => "cmpeq",
        BinOp::CmpNe => "cmpne",
        BinOp::CmpLtU => "cmpltu",
        BinOp::CmpLtS => "cmplts",
        BinOp::MinU => "minu",
        BinOp::MaxU => "maxu",
    }
}

/// Render a single instruction in assembly-like form.
pub fn fmt_inst(inst: &Inst) -> String {
    match inst {
        Inst::Binary { op, dst, lhs, rhs } => {
            format!(
                "{dst} = {} {}, {}",
                fmt_binop(*op),
                fmt_operand(lhs),
                fmt_operand(rhs)
            )
        }
        Inst::Mov { dst, src } => format!("{dst} = mov {}", fmt_operand(src)),
        Inst::Load { dst, addr } => format!("{dst} = ldr {}", fmt_memref(addr)),
        Inst::Store { src, addr } => format!("str {}, {}", fmt_operand(src), fmt_memref(addr)),
        Inst::Br { target } => format!("br {target}"),
        Inst::CondBr {
            cond,
            if_true,
            if_false,
        } => {
            format!("br {} ? {if_true} : {if_false}", fmt_operand(cond))
        }
        Inst::Call {
            func,
            args,
            ret,
            save_regs,
        } => {
            let args: Vec<_> = args.iter().map(fmt_operand).collect();
            let mut s = String::new();
            if let Some(r) = ret {
                let _ = write!(s, "{r} = ");
            }
            let _ = write!(s, "call {func}({})", args.join(", "));
            if !save_regs.is_empty() {
                let saves: Vec<_> = save_regs.iter().map(|r| r.to_string()).collect();
                let _ = write!(s, " save[{}]", saves.join(","));
            }
            s
        }
        Inst::Ret { val: Some(v) } => format!("ret {}", fmt_operand(v)),
        Inst::Ret { val: None } => "ret".to_string(),
        Inst::AtomicRmw {
            op,
            dst,
            addr,
            src,
            expected,
        } => {
            let name = match op {
                AtomicOp::FetchAdd => "xadd",
                AtomicOp::Swap => "xchg",
                AtomicOp::Cas => "cas",
            };
            if *op == AtomicOp::Cas {
                format!(
                    "{dst} = {name} {}, {} == {} -> {}",
                    fmt_memref(addr),
                    fmt_memref(addr),
                    fmt_operand(expected),
                    fmt_operand(src)
                )
            } else {
                format!("{dst} = {name} {}, {}", fmt_memref(addr), fmt_operand(src))
            }
        }
        Inst::Fence => "fence".to_string(),
        Inst::FlushLine { addr } => format!("flush {}", fmt_memref(addr)),
        Inst::PFence => "pfence".to_string(),
        Inst::Boundary { id } => format!("--- boundary {id} ---"),
        Inst::Ckpt { reg } => format!("ckpt {reg}"),
        Inst::Out { val } => format!("out {}", fmt_operand(val)),
        Inst::Halt => "halt".to_string(),
    }
}

/// Render a whole function.
pub fn fmt_function(f: &Function) -> String {
    let mut s = format!(
        "fn {}(params={}) regs={} {{\n",
        f.name, f.param_count, f.reg_count
    );
    for (bid, block) in f.iter_blocks() {
        let _ = writeln!(s, "{bid}:");
        for inst in &block.insts {
            let _ = writeln!(s, "    {}", fmt_inst(inst));
        }
    }
    s.push('}');
    s
}

/// Render a whole module (globals then functions).
pub fn fmt_module(m: &Module) -> String {
    let mut s = format!("module {}\n", m.name);
    for g in m.globals() {
        let _ = writeln!(s, "global {} : {} words @ {:#x}", g.name, g.words, g.addr);
    }
    for (_, f) in m.iter_functions() {
        s.push_str(&fmt_function(f));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::FuncId;
    use crate::types::{Reg, RegionId};

    #[test]
    fn inst_formats() {
        assert_eq!(
            fmt_inst(&Inst::binary(
                BinOp::Add,
                Reg(2),
                Reg(0).into(),
                Operand::imm(4)
            )),
            "r2 = add r0, 4"
        );
        assert_eq!(
            fmt_inst(&Inst::load(Reg(1), MemRef::reg(Reg(0), 8))),
            "r1 = ldr [r0+8]"
        );
        assert_eq!(
            fmt_inst(&Inst::store(Operand::imm(1), MemRef::abs(64))),
            "str 1, [64]"
        );
        assert_eq!(
            fmt_inst(&Inst::Boundary { id: RegionId(2) }),
            "--- boundary Rg2 ---"
        );
        assert_eq!(fmt_inst(&Inst::Ckpt { reg: Reg(3) }), "ckpt r3");
        assert_eq!(
            fmt_inst(&Inst::FlushLine {
                addr: MemRef::reg(Reg(2), 64)
            }),
            "flush [r2+64]"
        );
        assert_eq!(fmt_inst(&Inst::PFence), "pfence");
        assert!(fmt_inst(&Inst::Call {
            func: FuncId(1),
            args: vec![Operand::imm(2)],
            ret: Some(Reg(5)),
            save_regs: vec![Reg(4)],
        })
        .contains("save[r4]"));
    }

    #[test]
    fn function_format_contains_blocks() {
        let mut b = FunctionBuilder::new("f", 1);
        let e = b.entry();
        b.push(
            e,
            Inst::Ret {
                val: Some(b.param(0).into()),
            },
        );
        let s = fmt_function(&b.build());
        assert!(s.contains("fn f(params=1)"));
        assert!(s.contains("bb0:"));
        assert!(s.contains("ret r0"));
    }

    #[test]
    fn module_format_lists_globals() {
        let mut m = Module::new("m");
        m.add_global("g", 4);
        let s = fmt_module(&m);
        assert!(s.contains("module m"));
        assert!(s.contains("global g : 4 words"));
    }
}
