//! Stable fingerprints for memo/cache keys.
//!
//! The engine memoizes simulation results by *content*, not by label:
//! workload names collide across workload sets (`hierarchy_probes()` reuses
//! the figure names of `all()` with different modules), and sweep figures
//! mutate one `SimConfig` field at a time. Fingerprinting the pretty-printed
//! module text plus every semantic field of the configuration, scheme, and
//! compile options makes the key collision-free in practice (64-bit FxHash
//! over a few thousand keys) and — unlike `DefaultHasher` — stable across
//! processes, which the on-disk cache requires.

use cwsp_compiler::pipeline::CompileOptions;
use cwsp_ir::module::Module;
use cwsp_sim::config::{CacheParams, MainMemory, SimConfig};
use cwsp_sim::hash::FxHasher;
use cwsp_sim::scheme::Scheme;
use std::hash::Hasher;

/// Bump when simulator or compiler semantics change in a way that should
/// invalidate previously cached results (folded into every disk-cache key).
/// Version 2: `SimStats` grew the per-opcode `op_mix` field.
/// Version 3: observability layer — trace/profiler instrumentation reworked
/// the core issue loop and the harness telemetry schema grew queue-latency
/// and utilization fields.
/// Version 4: results moved from flat per-key JSON files to the LSM result
/// spine (`cwsp_store::spine`); v3 flat entries are migrated into the spine
/// as history (time-travel reachable) but fresh v4 keys recompute.
pub const CACHE_VERSION: u64 = 4;

/// Incrementally hashes heterogeneous fields into one stable u64.
#[derive(Debug, Default)]
pub struct Fingerprint {
    h: FxHasher,
}

impl Fingerprint {
    /// Start a fingerprint seeded with the cache version.
    pub fn new() -> Self {
        let mut f = Fingerprint {
            h: FxHasher::default(),
        };
        f.u64(CACHE_VERSION);
        f
    }

    /// Finish and return the 64-bit digest.
    pub fn digest(self) -> u64 {
        self.h.finish()
    }

    fn u64(&mut self, v: u64) {
        self.h.write_u64(v);
    }

    fn f64(&mut self, v: f64) {
        self.h.write_u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.h.write_u8(v as u8);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.h.write(s.as_bytes());
    }

    fn cache_params(&mut self, p: &CacheParams) {
        self.u64(p.size_bytes);
        self.u64(p.assoc as u64);
        self.u64(p.hit_cycles);
    }

    /// Fold in a module by content (pretty-printed text).
    pub fn module(&mut self, m: &Module) -> &mut Self {
        self.str(&cwsp_ir::pretty::fmt_module(m));
        self
    }

    /// Fold in every semantic field of a [`SimConfig`].
    pub fn config(&mut self, c: &SimConfig) -> &mut Self {
        self.u64(c.cores as u64);
        self.u64(c.sram_levels.len() as u64);
        for l in &c.sram_levels {
            self.cache_params(l);
        }
        match &c.dram_cache {
            None => self.u64(0),
            Some(p) => {
                self.u64(1);
                self.cache_params(p);
            }
        }
        match c.main_memory {
            MainMemory::Nvm(t) => {
                self.u64(2);
                // Latencies, not the variant index: a new enum variant with
                // identical timing is the same machine.
                self.u64(t.read_cycles());
                self.u64(t.write_cycles());
            }
            MainMemory::Cxl(d) => {
                self.u64(3);
                self.str(d.name);
                self.f64(d.max_bandwidth_gbps);
                self.f64(d.read_ns);
                self.f64(d.write_ns);
            }
        }
        self.u64(c.mem_controllers as u64);
        self.u64(c.mc_numa_skew_cycles);
        self.u64(c.wpq_entries as u64);
        self.u64(c.rbt_entries as u64);
        self.u64(c.pb_entries as u64);
        self.u64(c.wb_entries as u64);
        self.u64(c.persist_path_cycles);
        self.f64(c.persist_path_gbps);
        self.u64(c.persist_granularity);
        self.u64(c.wb_drain_cycles);
        self.u64(c.issue_width as u64);
        self
    }

    /// Fold in a [`Scheme`] including its feature toggles.
    pub fn scheme(&mut self, s: Scheme) -> &mut Self {
        match s {
            Scheme::Baseline => self.u64(10),
            Scheme::Cwsp(f) => {
                self.u64(11);
                self.bool(f.persist_path);
                self.bool(f.mc_speculation);
                self.bool(f.wb_delay);
                self.bool(f.wpq_delay);
            }
            Scheme::Capri => self.u64(12),
            Scheme::ReplayCache => self.u64(13),
            Scheme::IdealPsp => self.u64(14),
            Scheme::AutoFence => self.u64(15),
        }
        self
    }

    /// Fold in [`CompileOptions`].
    pub fn options(&mut self, o: CompileOptions) -> &mut Self {
        self.bool(o.pruning);
        self.bool(o.expr_remat);
        self.bool(o.optimize);
        self
    }
}

/// Fingerprint of one module (content hash).
pub fn module_fp(m: &Module) -> u64 {
    let mut f = Fingerprint::new();
    f.module(m);
    f.digest()
}

/// Fingerprint of a (config, scheme) machine instance.
pub fn machine_fp(c: &SimConfig, s: Scheme) -> u64 {
    let mut f = Fingerprint::new();
    f.config(c).scheme(s);
    f.digest()
}

/// Fingerprint of compile options.
pub fn options_fp(o: CompileOptions) -> u64 {
    let mut f = Fingerprint::new();
    f.options(o);
    f.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_sim::config::NvmTech;
    use cwsp_sim::scheme::CwspFeatures;

    #[test]
    fn config_fields_all_contribute() {
        let base = SimConfig::default();
        let fp0 = machine_fp(&base, Scheme::Baseline);
        // Every mutation below must move the fingerprint.
        type ConfigMutation = Box<dyn Fn(&mut SimConfig)>;
        let mutations: Vec<ConfigMutation> = vec![
            Box::new(|c| c.cores = 4),
            Box::new(|c| c.sram_levels[0].size_bytes *= 2),
            Box::new(|c| c.sram_levels[1].hit_cycles += 1),
            Box::new(|c| c.dram_cache = None),
            Box::new(|c| c.main_memory = MainMemory::Nvm(NvmTech::ReRam)),
            Box::new(|c| c.mem_controllers = 4),
            Box::new(|c| c.mc_numa_skew_cycles += 1),
            Box::new(|c| c.wpq_entries += 1),
            Box::new(|c| c.rbt_entries += 1),
            Box::new(|c| c.pb_entries += 1),
            Box::new(|c| c.wb_entries += 1),
            Box::new(|c| c.persist_path_cycles += 1),
            Box::new(|c| c.persist_path_gbps *= 2.0),
            Box::new(|c| c.persist_granularity = 64),
            Box::new(|c| c.wb_drain_cycles += 1),
            Box::new(|c| c.issue_width += 1),
        ];
        for (i, m) in mutations.iter().enumerate() {
            let mut c = base.clone();
            m(&mut c);
            assert_ne!(
                machine_fp(&c, Scheme::Baseline),
                fp0,
                "mutation {i} ignored"
            );
        }
    }

    #[test]
    fn schemes_and_features_distinguished() {
        let c = SimConfig::default();
        let mut fps: Vec<u64> = [
            Scheme::Baseline,
            Scheme::cwsp(),
            Scheme::Capri,
            Scheme::ReplayCache,
            Scheme::IdealPsp,
            Scheme::AutoFence,
            Scheme::Cwsp(CwspFeatures {
                mc_speculation: false,
                ..Default::default()
            }),
        ]
        .iter()
        .map(|s| machine_fp(&c, *s))
        .collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 7);
    }

    #[test]
    fn options_distinguished() {
        let d = CompileOptions::default();
        let fp = options_fp(d);
        assert_ne!(
            fp,
            options_fp(CompileOptions {
                pruning: false,
                ..d
            })
        );
        assert_ne!(
            fp,
            options_fp(CompileOptions {
                expr_remat: false,
                ..d
            })
        );
        assert_ne!(
            fp,
            options_fp(CompileOptions {
                optimize: false,
                ..d
            })
        );
    }

    #[test]
    fn module_content_not_name_decides() {
        use cwsp_core::genprog::generate_default;
        let a = generate_default(1);
        let b = generate_default(2);
        assert_ne!(module_fp(&a), module_fp(&b));
        assert_eq!(
            module_fp(&a),
            module_fp(&generate_default(1)),
            "stable across calls"
        );
    }
}
