//! Property tests: crash consistency must hold for *arbitrary* structured
//! programs and *arbitrary* crash cycles, pruned or not. This is the
//! repository's strongest evidence that the compiler + hardware + recovery
//! protocol compose soundly.

use cwsp::compiler::pipeline::CompileOptions;
use cwsp::core::genprog::{generate, ProgramSpec};
use cwsp::core::system::CwspSystem;
use cwsp::core::verify::check_crash_consistency;
use cwsp::sim::config::SimConfig;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
    (1usize..4, 4u64..32, 4usize..14, 2u64..10, any::<bool>()).prop_map(
        |(globals, words, segments, trip, calls)| ProgramSpec {
            globals,
            global_words: words,
            segments,
            max_trip: trip,
            calls,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn random_programs_survive_random_crashes(
        spec in spec_strategy(),
        seed in 0u64..10_000,
        crash_cycle in 0u64..20_000,
        pruning in any::<bool>(),
    ) {
        let module = generate(&spec, seed);
        let system = CwspSystem::compile_with(
            &module,
            CompileOptions { pruning, ..Default::default() },
            SimConfig::default(),
        );
        let report = check_crash_consistency(&system, crash_cycle)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
        prop_assert!(
            report.recovered_matches_oracle,
            "seed {seed} crash@{crash_cycle} pruning={pruning}: {:?}",
            report.divergence
        );
    }

    #[test]
    fn random_programs_survive_crashes_on_tiny_hardware(
        seed in 0u64..10_000,
        crash_cycle in 0u64..8_000,
    ) {
        // Tiny queues force every stall path (PB full, RBT full, WPQ full).
        let mut cfg = SimConfig::default();
        cfg.rbt_entries = 2;
        cfg.pb_entries = 3;
        cfg.wpq_entries = 2;
        cfg.persist_path_gbps = 0.5;
        let module = generate(&ProgramSpec::default(), seed);
        let system =
            CwspSystem::compile_with(&module, CompileOptions::default(), cfg);
        let report = check_crash_consistency(&system, crash_cycle)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
        prop_assert!(
            report.recovered_matches_oracle,
            "seed {seed} crash@{crash_cycle}: {:?}",
            report.divergence
        );
    }

    #[test]
    fn compiled_random_programs_keep_oracle_semantics(
        spec in spec_strategy(),
        seed in 0u64..50_000,
    ) {
        let module = generate(&spec, seed);
        let oracle = cwsp::ir::interp::run(&module, 3_000_000)
            .map_err(|e| TestCaseError::fail(format!("oracle: {e}")))?;
        for pruning in [true, false] {
            let c = cwsp::compiler::pipeline::CwspCompiler::new(
                CompileOptions { pruning, ..Default::default() },
            )
            .compile(&module);
            let out = cwsp::ir::interp::run(&c.module, 6_000_000)
                .map_err(|e| TestCaseError::fail(format!("compiled: {e}")))?;
            prop_assert_eq!(out.return_value, oracle.return_value);
            prop_assert_eq!(&out.output, &oracle.output);
        }
    }

    #[test]
    fn dynamic_invariants_hold_for_random_programs(
        seed in 0u64..50_000,
    ) {
        let module = generate(&ProgramSpec::default(), seed);
        let c = cwsp::compiler::pipeline::CwspCompiler::new(CompileOptions::default())
            .compile(&module);
        cwsp::compiler::verify::check_antidependence(&c.module, 3_000_000)
            .map_err(TestCaseError::fail)?;
        cwsp::compiler::verify::check_slices(&c.module, &c.slices, 3_000_000)
            .map_err(TestCaseError::fail)?;
    }
}
