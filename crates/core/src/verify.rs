//! End-to-end crash-consistency verification.
//!
//! The strongest claim cWSP makes is that *any* power failure is survivable:
//! after recovery, the program's observable behaviour — output, return value,
//! and final program data — is indistinguishable from a failure-free run.
//! [`check_crash_consistency`] tests exactly that for one crash cycle;
//! [`sweep`] covers a schedule of crash cycles. The paper's own evaluation
//! stops short of this (§VIII admits no recovery testing was done); here it is
//! the backbone of the test suite.

use crate::recovery::RecoveryError;
use crate::system::CwspSystem;
use cwsp_ir::layout;

/// The outcome of one crash/recover/compare experiment.
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// Cycle at which power was cut.
    pub crash_cycle: u64,
    /// Whether recovery reproduced the oracle exactly.
    pub recovered_matches_oracle: bool,
    /// Instructions executed after resumption.
    pub replayed_steps: u64,
    /// Undo-log records reverted before resumption.
    pub reverted_records: usize,
    /// Human-readable description of the first divergence, if any.
    pub divergence: Option<String>,
}

/// Crash `system` at `crash_cycle`, recover, and compare with the failure-free
/// oracle.
///
/// # Errors
/// Propagates simulation traps and recovery failures; a *divergence* is not
/// an error — it is reported in the returned [`ConsistencyReport`].
pub fn check_crash_consistency(
    system: &CwspSystem,
    crash_cycle: u64,
) -> Result<ConsistencyReport, RecoveryError> {
    let oracle = system
        .oracle(50_000_000)
        .map_err(|e| RecoveryError::Trap(format!("oracle: {e}")))?;
    let rec = system.run_with_crash(crash_cycle, 50_000_000)?;

    let mut divergence = None;
    if rec.return_value != oracle.return_value {
        divergence = Some(format!(
            "return value: recovered {:?} vs oracle {:?}",
            rec.return_value, oracle.return_value
        ));
    } else if rec.output != oracle.output {
        divergence = Some(format!(
            "output: recovered {} words vs oracle {} words (first diff at {:?})",
            rec.output.len(),
            oracle.output.len(),
            rec.output
                .iter()
                .zip(&oracle.output)
                .position(|(a, b)| a != b)
        ));
    } else {
        let diffs = rec
            .memory
            .diff_where(&oracle.memory, layout::is_program_data, 4);
        if !diffs.is_empty() {
            divergence = Some(format!("program data diverged: {diffs:x?}"));
        }
    }
    Ok(ConsistencyReport {
        crash_cycle,
        recovered_matches_oracle: divergence.is_none(),
        replayed_steps: rec.replayed_steps,
        reverted_records: rec.reverted_records,
        divergence,
    })
}

/// Run [`check_crash_consistency`] over a schedule of crash cycles, failing
/// fast on the first divergence.
///
/// # Errors
/// The first divergence (as an error message) or any recovery failure.
pub fn sweep(system: &CwspSystem, crash_cycles: &[u64]) -> Result<Vec<ConsistencyReport>, String> {
    let mut reports = Vec::new();
    for &c in crash_cycles {
        let r = check_crash_consistency(system, c).map_err(|e| format!("crash@{c}: {e}"))?;
        if !r.recovered_matches_oracle {
            return Err(format!(
                "crash@{c}: {}",
                r.divergence.as_deref().unwrap_or("diverged")
            ));
        }
        reports.push(r);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::{generate, ProgramSpec};

    #[test]
    fn generated_programs_survive_crashes_at_many_points() {
        for seed in 0..6 {
            let module = generate(&ProgramSpec::default(), seed);
            let system = CwspSystem::compile(&module);
            let cycles = [1, 17, 60, 150, 400, 900, 2000, 4500, 9000];
            sweep(&system, &cycles).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn call_heavy_programs_survive_crashes() {
        let spec = ProgramSpec {
            segments: 16,
            calls: true,
            ..Default::default()
        };
        for seed in 100..103 {
            let module = generate(&spec, seed);
            let system = CwspSystem::compile(&module);
            sweep(&system, &[5, 33, 77, 210, 777, 3100])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn unpruned_compilation_also_survives_crashes() {
        use cwsp_compiler::pipeline::CompileOptions;
        use cwsp_sim::config::SimConfig;
        let module = generate(&ProgramSpec::default(), 7);
        let system = CwspSystem::compile_with(
            &module,
            CompileOptions {
                pruning: false,
                ..Default::default()
            },
            SimConfig::default(),
        );
        sweep(&system, &[10, 100, 1000, 5000]).unwrap();
    }

    #[test]
    fn tiny_rbt_and_wpq_still_recover() {
        use cwsp_sim::config::SimConfig;
        let module = generate(&ProgramSpec::default(), 3);
        let cfg = SimConfig {
            rbt_entries: 2,
            wpq_entries: 2,
            pb_entries: 4,
            ..SimConfig::default()
        };
        let system = CwspSystem::compile_with(
            &module,
            cwsp_compiler::pipeline::CompileOptions::default(),
            cfg,
        );
        sweep(&system, &[25, 250, 2500]).unwrap();
    }

    #[test]
    fn report_carries_replay_metrics() {
        let module = generate(&ProgramSpec::default(), 11);
        let system = CwspSystem::compile(&module);
        let r = check_crash_consistency(&system, 300).unwrap();
        assert!(r.recovered_matches_oracle, "{:?}", r.divergence);
        assert_eq!(r.crash_cycle, 300);
    }
}
