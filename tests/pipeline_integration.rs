//! Cross-crate integration: every paper workload must compile through the
//! full cWSP pipeline with semantics preserved and the dynamic invariants
//! (no intra-region WAR, exact recovery slices) holding.

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::compiler::verify;

const STEP_BUDGET: u64 = 30_000_000;

#[test]
fn all_38_workloads_compile_and_preserve_semantics() {
    for w in cwsp::workloads::all() {
        let oracle = cwsp::ir::interp::run(&w.module, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("{}: oracle: {e}", w.name));
        let c = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
        let out = cwsp::ir::interp::run(&c.module, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("{}: compiled: {e}", w.name));
        assert_eq!(out.return_value, oracle.return_value, "{}", w.name);
        assert_eq!(out.output, oracle.output, "{}", w.name);
        let diffs = out
            .memory
            .diff_where(&oracle.memory, cwsp::ir::layout::is_program_data, 4);
        assert!(diffs.is_empty(), "{}: data diverged {diffs:x?}", w.name);
    }
}

#[test]
fn workload_sample_passes_dynamic_invariants() {
    // The dynamic checkers replay step-by-step; run them on a representative
    // subset (one app per suite) to keep CI time sane.
    for name in ["lbm", "xz", "lulesh", "radix", "tpcc", "kmeans"] {
        let w = cwsp::workloads::by_name(name).unwrap();
        let c = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
        verify::check_antidependence(&c.module, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        verify::check_slices(&c.module, &c.slices, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn unpruned_compilation_also_preserves_semantics() {
    for name in ["fft", "vacation", "sps"] {
        let w = cwsp::workloads::by_name(name).unwrap();
        let oracle = cwsp::ir::interp::run(&w.module, STEP_BUDGET).unwrap();
        let c = CwspCompiler::new(CompileOptions {
            pruning: false,
            ..Default::default()
        })
        .compile(&w.module);
        let out = cwsp::ir::interp::run(&c.module, STEP_BUDGET).unwrap();
        assert_eq!(out.output, oracle.output, "{name}");
        verify::check_slices(&c.module, &c.slices, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn compilation_statistics_are_sane() {
    for w in cwsp::workloads::all() {
        let c = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
        let s = &c.stats;
        assert!(s.boundaries_inserted > 0, "{}: no regions", w.name);
        assert!(s.insts_after >= s.insts_before, "{}", w.name);
        assert!(
            s.insts_after as f64 <= s.insts_before as f64 * 1.6,
            "{}: static bloat {} -> {}",
            w.name,
            s.insts_before,
            s.insts_after
        );
        // Every explicit boundary got a recovery slice.
        assert_eq!(c.slices.len(), s.boundaries_inserted, "{}", w.name);
    }
}

#[test]
fn runtime_library_composes_with_workload_style_code() {
    // malloc/free/syscall interleaved with kernel-style loops.
    use cwsp::ir::builder::build_counted_loop;
    use cwsp::ir::prelude::*;
    use cwsp::runtime::{Runtime, SYS_WRITE};

    let mut m = Module::new("compose");
    let rt = Runtime::install(&mut m);
    let mut b = FunctionBuilder::new("main", 0);
    let e = b.entry();
    let buf = b.call(e, rt.malloc, vec![Operand::imm(16)], true).unwrap();
    let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(16), |b, bb, i| {
        let off = b.bin(bb, BinOp::Shl, i.into(), Operand::imm(3));
        let a = b.bin(bb, BinOp::Add, buf.into(), off.into());
        b.store(bb, i.into(), MemRef::reg(a, 0));
    });
    let v = b.load(exit, MemRef::reg(buf, 120));
    b.call(
        exit,
        rt.syscall,
        vec![Operand::imm(SYS_WRITE), v.into(), Operand::imm(0)],
        false,
    );
    b.call(exit, rt.free, vec![buf.into()], false);
    b.push(
        exit,
        Inst::Ret {
            val: Some(v.into()),
        },
    );
    let f = m.add_function(b.build());
    m.set_entry(f);

    let oracle = cwsp::ir::interp::run(&m, 100_000).unwrap();
    assert_eq!(oracle.return_value, Some(15));
    assert_eq!(oracle.output, vec![15]);
    let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
    verify::check_all(&m, &c.module, &c.slices, 200_000).unwrap();
}
